//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! A hand-rolled token parser (the build is hermetic — no `syn`/`quote`)
//! that supports exactly the shapes this workspace derives on: plain
//! structs with named fields and enums with unit, tuple, and struct
//! variants. No generics, no `#[serde(...)]` attributes. The generated
//! impls produce serde's externally-tagged JSON layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a `#[derive]` input turned out to be.
enum Shape {
    /// A struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// An enum; each variant is `(name, kind)`.
    Enum {
        name: String,
        variants: Vec<(String, VariantKind)>,
    },
}

enum VariantKind {
    Unit,
    /// Tuple variant with `arity` fields.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (the in-tree stand-in trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => emit(gen_serialize(&shape)),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (the in-tree stand-in trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => emit(gen_deserialize(&shape)),
        Err(msg) => compile_error(&msg),
    }
}

fn emit(code: String) -> TokenStream {
    match code.parse() {
        Ok(ts) => ts,
        Err(_) => compile_error("serde_derive generated unparsable code (internal bug)"),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    match format!("compile_error!({msg:?});").parse() {
        Ok(ts) => ts,
        Err(_) => TokenStream::new(),
    }
}

// ── token parsing ────────────────────────────────────────────────────────

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    // The bracketed attribute body.
                    if matches!(self.peek(), Some(TokenTree::Group(_))) {
                        self.pos += 1;
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    self.pos += 1;
                    if matches!(
                        self.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs_and_vis();
    let kind = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stand-in: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                _ => {
                    return Err(format!(
                        "serde_derive stand-in: `{name}` must be a struct with named fields"
                    ))
                }
            };
            Ok(Shape::Struct {
                name,
                fields: parse_named_fields(body.stream())?,
            })
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                _ => return Err(format!("serde_derive stand-in: malformed enum `{name}`")),
            };
            Ok(Shape::Enum {
                name,
                variants: parse_variants(body.stream())?,
            })
        }
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        skip_type(&mut cur);
        fields.push(name);
    }
    Ok(fields)
}

/// Consumes type tokens up to (and including) the next top-level `,`.
fn skip_type(cur: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(t) = cur.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let mut cur = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push((name, kind));
        // The separating comma (absent after the last variant).
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.pos += 1;
        }
    }
    Ok(variants)
}

/// Number of comma-separated types in a tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut cur = Cursor::new(body);
    let mut count = 0;
    loop {
        cur.skip_attrs_and_vis();
        if cur.peek().is_none() {
            break;
        }
        skip_type(&mut cur);
        count += 1;
    }
    count
}

// ── code generation ──────────────────────────────────────────────────────

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, kind) in variants {
                match kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __f_{f}")).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({f:?}.to_string(), ::serde::Serialize::to_value(__f_{f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let entries = value.as_object_for({name:?})?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, kind) in variants {
                match kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{v:?} => Ok({name}::{v}),\n"))
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{v:?} => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => \
                                     Ok({name}::{v}({})),\n\
                                 _ => Err(::serde::Error::new(\
                                     concat!(\"expected \", {arity}, \"-element array for {name}::{v}\"))),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{v:?} => {{\n\
                                 let entries = inner.as_object_for(\"{name}::{v}\")?;\n\
                                 Ok({name}::{v} {{ {} }})\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::String(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::unknown_variant({name:?}, other)),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\
                                     other => Err(::serde::unknown_variant({name:?}, other)),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::new(format!(\
                                 \"expected {name} tag, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
