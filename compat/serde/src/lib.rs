//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal serialization framework under the same crate name: the
//! [`Serialize`] / [`Deserialize`] traits convert through the JSON-shaped
//! [`Value`] model, and `#[derive(Serialize, Deserialize)]` (re-exported
//! from the sibling `serde_derive` proc-macro crate) generates
//! externally-tagged impls with the same JSON layout real serde produces
//! for plain structs and enums. Only the surface this workspace uses is
//! implemented — no `#[serde(...)]` attributes, no generics, no zero-copy
//! deserialization.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::time::Duration;

/// An arbitrary-precision-free JSON number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A 32-bit float (kept separate so shortest-f32 formatting survives).
    F32(f32),
    /// A 64-bit float.
    F64(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::F32(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::UInt(v) => Some(v),
            Number::Int(v) => u64::try_from(v).ok(),
            Number::F32(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::F32(v) if v.fract() == 0.0 => Some(v as i64),
            Number::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }
}

/// The JSON-shaped data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, or a typed error naming `ty`.
    pub fn as_object_for(&self, ty: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::new(format!(
                "expected object for {ty}, got {}",
                other.kind()
            ))),
        }
    }

    /// A short name of the value's JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `value`.
    ///
    /// # Errors
    /// Returns [`Error`] when `value` has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up field `name` in `entries` and deserializes it — the helper the
/// derive macro calls for every struct field.
///
/// # Errors
/// Returns [`Error`] if the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::new(format!("field `{name}`: {e}"))),
        None => Err(Error::new(format!("missing field `{name}`"))),
    }
}

/// The error the derive macro emits for an unknown enum tag.
pub fn unknown_variant(ty: &str, tag: &str) -> Error {
    Error::new(format!("unknown {ty} variant `{tag}`"))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::new(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::UInt(v as u64))
                } else {
                    Value::Number(Number::Int(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::new(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F32(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64() as f32),
            other => Err(Error::new(format!("expected f32, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::new(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => {
                s.chars().next().ok_or_else(|| Error::new("empty char"))
            }
            other => Err(Error::new(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected {N}-element array, got {got}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected {}-tuple array, got {}", ARITY, other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's layout for std::time::Duration.
        Value::Object(vec![
            (
                "secs".to_string(),
                Value::Number(Number::UInt(self.as_secs())),
            ),
            (
                "nanos".to_string(),
                Value::Number(Number::UInt(u64::from(self.subsec_nanos()))),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_object_for("Duration")?;
        let secs: u64 = field(entries, "secs")?;
        let nanos: u32 = field(entries, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(f32::from_value(&0.1f32.to_value()), Ok(0.1f32));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<u8>> = Some(vec![1, 2, 3]);
        assert_eq!(Option::<Vec<u8>>::from_value(&v.to_value()), Ok(v));
        let none: Option<u8> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn tuple_and_duration_round_trip() {
        let t = (3usize, "x".to_string());
        assert_eq!(<(usize, String)>::from_value(&t.to_value()), Ok(t));
        let d = Duration::new(5, 42);
        assert_eq!(Duration::from_value(&d.to_value()), Ok(d));
    }

    #[test]
    fn range_errors_are_typed() {
        let big = Value::Number(Number::UInt(300));
        assert!(u8::from_value(&big).is_err());
        assert!(bool::from_value(&big).is_err());
        assert!(field::<u8>(&[], "missing").is_err());
    }
}
