//! In-tree stand-in for `serde_json`: renders the vendored [`serde`]
//! [`Value`] model to JSON text and parses it back. Implements exactly the
//! API surface this workspace calls — [`to_string`], [`to_string_pretty`],
//! and [`from_str`] — over a strict recursive-descent parser.

pub use serde::Error;
use serde::{Deserialize, Number, Serialize, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
/// Infallible for this in-tree model; the `Result` keeps the real
/// `serde_json` signature so call sites are source-compatible.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
/// Infallible, as for [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value)
}

/// Parses JSON text into the raw [`Value`] model.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ── writer ───────────────────────────────────────────────────────────────

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::F32(v) => write_float(f64::from(v), v.fract() == 0.0, v.is_finite(), out),
        Number::F64(v) => write_float(v, v.fract() == 0.0, v.is_finite(), out),
    }
}

fn write_float(v: f64, integral: bool, finite: bool, out: &mut String) {
    if !finite {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // the writer total while staying parseable.
        out.push_str("null");
    } else if integral {
        // Keep a float marker so the value re-parses as a float.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&v.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parser ───────────────────────────────────────────────────────────────

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| Error::new("bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                match std::str::from_utf8(&bytes[start..*pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(Error::new("invalid UTF-8 in string")),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error::new(format!("invalid float `{text}`")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u64>()
            .ok()
            .and_then(|v| i64::try_from(v).ok().map(|v| -v))
            .map(|v| Value::Number(Number::Int(v)))
            .ok_or_else(|| Error::new(format!("integer out of range `{text}`")))
    } else {
        match text.parse::<u64>() {
            Ok(v) => Ok(Value::Number(Number::UInt(v))),
            // Overflowing integers degrade to float, like serde_json's
            // arbitrary-precision fallback would.
            Err(_) => text
                .parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| Error::new(format!("invalid number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()), Ok(42));
        assert_eq!(from_str::<i32>(&to_string(&-9i32).unwrap()), Ok(-9));
        assert_eq!(from_str::<f32>(&to_string(&0.25f32).unwrap()), Ok(0.25));
        assert_eq!(from_str::<bool>("true"), Ok(true));
        assert_eq!(from_str::<Option<u8>>("null"), Ok(None));
    }

    #[test]
    fn float_precision_survives() {
        for v in [0.1f32, 1.0 / 3.0, -7.75, 1e-8, 3.4e38] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f32>(&text), Ok(v), "via {text}");
        }
        for v in [0.1f64, std::f64::consts::PI, -1e300] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text), Ok(v), "via {text}");
        }
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let text = to_string(&2.0f32).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<f32>(&text), Ok(2.0));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        for v in [0u64, u64::MAX, 0x9A55_0000_1234_5678] {
            assert_eq!(from_str::<u64>(&to_string(&v).unwrap()), Ok(v));
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"slash\\tab\tunicode é 中".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()), Ok(s));
        assert_eq!(from_str::<String>(r#""A""#), Ok("A".to_string()));
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<(String, Vec<u32>)> = vec![("a".into(), vec![1, 2]), ("b".into(), vec![])];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, Vec<u32>)>>(&text), Ok(v));
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&text), Ok(v));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<u32>("{\"k\": }").is_err());
    }
}
