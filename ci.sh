#!/usr/bin/env sh
# The local CI gate: the same fail-fast sequence the GitHub workflow runs.
# Everything is offline — the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> mqa-xtask lint"
cargo run -q --offline -p mqa-xtask -- lint

echo "==> mqa-xtask conc (static concurrency analysis)"
cargo run -q --offline -p mqa-xtask -- conc

echo "==> mqa-xtask flow (panic-freedom reachability)"
cargo run -q --offline -p mqa-xtask -- flow

echo "==> mqa-xtask alloc (allocation-freedom reachability)"
cargo run -q --offline -p mqa-xtask -- alloc

echo "==> mqa-xtask audit"
cargo run -q --offline -p mqa-xtask -- audit

echo "==> mqa-xtask obs (observability smoke)"
cargo run -q --offline -p mqa-xtask -- obs --out results/obs

echo "==> mqa-xtask engine (concurrency smoke)"
cargo run -q --release --offline -p mqa-xtask -- engine --out results/engine

echo "==> mqa-xtask trace (per-query tracing gate)"
cargo run -q --release --offline -p mqa-xtask -- trace --out results/trace

echo "==> mqa-xtask mutate (online-mutation gate)"
cargo run -q --release --offline -p mqa-xtask -- mutate --out results/mutate

echo "==> mqa-xtask sched (deadline-scheduler overload gate)"
cargo run -q --release --offline -p mqa-xtask -- sched --out results/sched

echo "==> introspection endpoint (feature build)"
cargo build -q --offline -p mqa-obs --features serve --examples

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> exp_cache snapshot (E13, quick)"
cargo run -q --release --offline -p mqa-bench --bin exp_cache -- --quick

echo "ci: all gates passed"
