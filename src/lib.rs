//! # mqa
//!
//! Facade crate for the MQA workspace: a from-scratch Rust reproduction of
//! *An Interactive Multi-modal Query Answering System with
//! Retrieval-Augmented Large Language Models* (PVLDB'24) together with all
//! of the substrates the system depends on — the MUST multi-modal retrieval
//! framework, a pluggable navigation-graph index family (HNSW, NSG, Vamana,
//! Starling-style disk layout), contrastive vector weight learning, a
//! CGraph-equivalent DAG pipeline engine, synthetic embedding encoders, and
//! a retrieval-augmented answer-generation layer.
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! stable module name, so downstream users can depend on `mqa` alone:
//!
//! ```
//! use mqa::prelude::*;
//!
//! let corpus = DatasetSpec::fashion().objects(300).seed(7).generate();
//! let mut system = MqaSystem::build(Config::default(), corpus).unwrap();
//! let mut session = system.open_session();
//! let reply = session.ask(Turn::text("long-sleeved top for older women")).unwrap();
//! assert!(!reply.results.is_empty());
//! ```

pub use mqa_core as core;
pub use mqa_dag as dag;
pub use mqa_encoders as encoders;
pub use mqa_engine as engine;
pub use mqa_graph as graph;
pub use mqa_kb as kb;
pub use mqa_llm as llm;
pub use mqa_obs as obs;
pub use mqa_retrieval as retrieval;
pub use mqa_vector as vector;
pub use mqa_weights as weights;

/// One-stop imports for the common workflow: generate/ingest a corpus,
/// build the system, open a dialogue session, ask multi-modal questions.
pub mod prelude {
    pub use mqa_core::{Config, DialogueSession, MqaSystem, Reply, Turn};
    pub use mqa_kb::{DatasetSpec, KnowledgeBase, ObjectId};
    pub use mqa_retrieval::{FrameworkKind, MultiModalQuery};
    pub use mqa_vector::{Metric, MultiVector, Schema, Weights};
}
