//! `serve` — the interactive serving front-end: a line-protocol REPL that
//! drives a [`DialogueSession`] through the deadline-aware scheduler.
//!
//! Unlike `examples/repl.rs` (which searches on the calling thread), this
//! binary routes every turn through [`QueryEngine`]'s micro-batch
//! scheduler with admission control enabled, so overload surfaces as
//! *typed* shed outcomes at the prompt instead of unbounded queueing.
//!
//! Line protocol:
//!
//! * plain text — ask that question as the next dialogue turn;
//! * `@<us> <text>` — ask with a one-turn deadline override of `<us>`
//!   microseconds (e.g. `@20000 foggy mountain road`);
//! * `:deadline <us>` — set the per-turn latency budget for all
//!   subsequent turns (`:deadline off` clears it; off by default);
//! * `:pick N [text]` — select result `N` of the previous reply, its
//!   image augments the next query (optionally refine in one turn);
//! * `:stats` — print the scheduler instruments (batches formed, shed
//!   counts, pending depth);
//! * `:status` — print the system status panel;
//! * `:quit` — exit.
//!
//! ```bash
//! cargo run --release --bin serve
//! ```

use mqa::core::MqaError;
use mqa::engine::{EngineOptions, SchedOptions, TicketError};
use mqa::prelude::*;
use std::io::{BufRead, Write};

/// Workers behind the scheduler; small on purpose so a burst of turns
/// with tight budgets actually exercises admission control.
const WORKERS: usize = 2;

fn print_sched_stats() {
    let batches = mqa::obs::counter("engine.sched.batches").get();
    let rejected = mqa::obs::counter("engine.sched.shed_rejected").get();
    let expired = mqa::obs::counter("engine.sched.shed_expired").get();
    let depth = mqa::obs::gauge("engine.sched.pending_depth").get();
    println!("scheduler ▸ batches={batches} shed_rejected={rejected} shed_expired={expired} pending_depth={depth}");
}

fn shed_notice(err: TicketError) -> &'static str {
    match err {
        TicketError::Rejected => {
            "shed (rejected): the scheduler is over its admission watermark — retry, raise the budget, or drop the deadline"
        }
        TicketError::Expired => {
            "shed (expired): the latency budget ran out before a worker picked the query up — raise the budget with :deadline"
        }
        TicketError::Canceled => "canceled: the engine shut down while the turn was in flight",
    }
}

fn main() {
    println!("building the MQA system (weather corpus, 5k objects)…");
    let kb = DatasetSpec::weather()
        .objects(5_000)
        .concepts(80)
        .styles(3)
        .seed(9)
        .generate();
    let config = Config {
        k: 5,
        ..Config::default()
    };
    let mut system = MqaSystem::build(config, kb).expect("system builds");
    system.enable_engine(EngineOptions::with_workers(WORKERS).with_sched(SchedOptions::default()));
    println!("{}", mqa::core::panels::render_status_panel(&system));
    println!(
        "serving through the deadline-aware scheduler ({WORKERS} workers). \
         try: \"foggy clouds over the mountain\", or `@20000 <text>` for a 20 ms budget — :quit to exit\n"
    );

    let mut session = system.open_session();
    let mut deadline_us: Option<u64> = None;
    let stdin = std::io::stdin();
    loop {
        print!("you ▸ ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // A `@<us>` prefix is a one-turn deadline flag; it overrides the
        // session-level `:deadline` setting for this turn only.
        let (turn_deadline_us, line) = match line.strip_prefix('@') {
            Some(rest) => {
                let mut parts = rest.splitn(2, ' ');
                match (parts.next().map(str::parse::<u64>), parts.next()) {
                    (Some(Ok(us)), Some(text)) if !text.trim().is_empty() => {
                        (Some(us), text.trim())
                    }
                    _ => {
                        println!("usage: @<budget_us> <text>, e.g. `@20000 foggy mountain`");
                        continue;
                    }
                }
            }
            None => (deadline_us, line),
        };
        let turn = if let Some(rest) = line.strip_prefix(":deadline ") {
            match rest.trim() {
                "off" => {
                    deadline_us = None;
                    println!("deadline cleared: turns now wait as long as they take");
                }
                spec => match spec.parse::<u64>() {
                    Ok(us) if us > 0 => {
                        deadline_us = Some(us);
                        println!("per-turn latency budget set to {us} µs");
                    }
                    _ => println!("usage: :deadline <budget_us> | off"),
                },
            }
            continue;
        } else if let Some(rest) = line.strip_prefix(":pick ") {
            let mut parts = rest.splitn(2, ' ');
            let Some(Ok(rank)) = parts.next().map(str::parse::<usize>) else {
                println!("usage: :pick N [refinement text]");
                continue;
            };
            match parts.next() {
                Some(text) => Turn::select_and_text(rank, text),
                None => Turn {
                    select: Some(rank),
                    ..Turn::default()
                },
            }
        } else {
            match line {
                ":quit" | ":q" => break,
                ":stats" => {
                    print_sched_stats();
                    continue;
                }
                ":status" => {
                    println!("{}", mqa::core::panels::render_status_panel(&system));
                    continue;
                }
                text => Turn::text(text),
            }
        };
        let turn = match turn_deadline_us {
            Some(us) => turn.with_deadline_us(us),
            None => turn,
        };
        match session.ask(turn) {
            Ok(reply) => {
                print!("{}", mqa::core::panels::render_qa_exchange(line, &reply));
            }
            // A shed is a first-class protocol outcome, never a silent
            // retry: say which admission decision was taken and why.
            Err(MqaError::Shed(err)) => println!("mqa ▸ {}", shed_notice(err)),
            Err(e) => println!("mqa ▸ error: {e}"),
        }
    }
    print_sched_stats();
    println!("bye");
}
