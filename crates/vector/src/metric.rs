//! Distance metrics over dense `f32` vectors.
//!
//! All metrics are expressed as *distances* (lower is closer) so that graph
//! search, top-k collection, and fused multi-modal scoring can share a single
//! ordering convention:
//!
//! * [`Metric::L2`] — squared Euclidean distance. This is the default metric
//!   of the MQA pipeline and the only one for which partial sums are
//!   monotone, enabling early-abandon incremental scanning
//!   (see [`crate::scan`]).
//! * [`Metric::InnerProduct`] — negated dot product (maximum inner product
//!   search expressed as a minimization).
//! * [`Metric::Cosine`] — cosine *distance*, `1 - cos(a, b)`.

use crate::ops;
use serde::{Deserialize, Serialize};

/// A distance metric. Lower values mean "more similar" for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance `Σ (a_i - b_i)^2`.
    #[default]
    L2,
    /// Negative inner product `-Σ a_i b_i`.
    InnerProduct,
    /// Cosine distance `1 - (a·b)/(|a||b|)`; zero vectors are assigned the
    /// maximum distance of `1.0` against anything.
    Cosine,
}

impl Metric {
    /// Distance between `a` and `b` under this metric.
    ///
    /// # Panics
    /// Panics in debug builds if `a.len() != b.len()`.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => ops::l2_sq(a, b),
            Metric::InnerProduct => -ops::dot(a, b),
            Metric::Cosine => {
                let na = ops::norm(a);
                let nb = ops::norm(b);
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    // INVARIANT: f32 division with a non-zero divisor
                    // (guarded above); float division cannot panic.
                    1.0 - ops::dot(a, b) / (na * nb)
                }
            }
        }
    }

    /// Whether prefix partial sums of this metric are monotone
    /// non-decreasing, i.e. whether early-abandon scanning is sound.
    ///
    /// Only [`Metric::L2`] qualifies: every term `(a_i - b_i)^2` is
    /// non-negative, so a partial sum already exceeding a bound can never
    /// come back below it.
    #[inline]
    pub fn supports_early_abandon(self) -> bool {
        matches!(self, Metric::L2)
    }

    /// Human-readable metric name, used by status panels.
    pub fn name(self) -> &'static str {
        match self {
            Metric::L2 => "l2",
            Metric::InnerProduct => "inner_product",
            Metric::Cosine => "cosine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(Metric::L2.distance(&a, &b), 25.0);
        assert_eq!(Metric::L2.distance(&a, &a), 0.0);
    }

    #[test]
    fn inner_product_prefers_aligned() {
        let q = [1.0f32, 0.0];
        let aligned = [2.0f32, 0.0];
        let orthogonal = [0.0f32, 2.0];
        assert!(
            Metric::InnerProduct.distance(&q, &aligned)
                < Metric::InnerProduct.distance(&q, &orthogonal)
        );
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [2.0f32, 4.0, 6.0];
        assert!(Metric::Cosine.distance(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_max_distance() {
        let z = [0.0f32; 3];
        let a = [1.0f32, 0.0, 0.0];
        assert_eq!(Metric::Cosine.distance(&z, &a), 1.0);
        assert_eq!(Metric::Cosine.distance(&a, &z), 1.0);
    }

    #[test]
    fn cosine_opposite_is_two() {
        let a = [1.0f32, 0.0];
        let b = [-1.0f32, 0.0];
        assert!((Metric::Cosine.distance(&a, &b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn only_l2_supports_early_abandon() {
        assert!(Metric::L2.supports_early_abandon());
        assert!(!Metric::InnerProduct.supports_early_abandon());
        assert!(!Metric::Cosine.supports_early_abandon());
    }

    #[test]
    fn symmetry_l2_and_cosine() {
        let a = [0.3f32, -1.2, 0.7];
        let b = [1.1f32, 0.4, -0.5];
        assert!((Metric::L2.distance(&a, &b) - Metric::L2.distance(&b, &a)).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&a, &b) - Metric::Cosine.distance(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let s = serde_json::to_string(&m).unwrap();
            let back: Metric = serde_json::from_str(&s).unwrap();
            assert_eq!(m, back);
        }
    }
}
