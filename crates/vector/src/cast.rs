//! Checked numeric conversions for the serving path.
//!
//! The `no-lossy-cast` lint (see `crates/xtask/src/lint.rs`) rejects raw
//! narrowing `as` casts in serving-path crates because they truncate
//! silently. The helpers here centralise the conversions the kernels
//! actually need, with the loss condition either proven impossible
//! (debug-asserted) or explicitly part of the name. The lint exempts this
//! file so the workspace has exactly one place where narrowing happens.

use crate::VecId;

/// Converts a count to `f32` for averaging / scaling arithmetic.
///
/// Exact for `n <= 2^24` (every count the in-memory stores can hold a
/// per-cluster tally of); above that the nearest representable float is
/// returned, which is the right semantics for means and rates.
#[inline]
pub fn count_f32(n: usize) -> f32 {
    n as f32
}

/// Converts a dense store index to a [`VecId`].
///
/// # Panics
/// Panics in debug builds if `n` exceeds `u32::MAX`; release builds wrap,
/// but stores assert the same bound at `push` time so an out-of-range
/// index cannot be minted in the first place.
#[inline]
pub fn vec_id(n: usize) -> VecId {
    debug_assert!(n <= VecId::MAX as usize, "vector id overflow: {n}");
    n as VecId
}

/// Converts a centroid index to a one-byte PQ code.
///
/// # Panics
/// Panics in debug builds if `n > 255`; PQ codebooks are trained with
/// `K <= 256` centroids per subspace, so valid centroid indexes always
/// fit.
#[inline]
pub fn pq_code(n: usize) -> u8 {
    debug_assert!(n <= u8::MAX as usize, "PQ code overflow: {n}");
    n as u8
}

/// Converts a `u64` hash/counter to `usize` without truncation on the
/// 64-bit targets this workspace builds for.
#[inline]
pub fn index(n: u64) -> usize {
    debug_assert!(usize::try_from(n).is_ok(), "index overflow: {n}");
    n as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_f32_exact_in_mantissa_range() {
        assert_eq!(count_f32(0), 0.0);
        assert_eq!(count_f32(1 << 24), 16_777_216.0);
    }

    #[test]
    fn vec_id_round_trips() {
        assert_eq!(vec_id(0), 0);
        assert_eq!(vec_id(u32::MAX as usize), u32::MAX);
    }

    #[test]
    fn pq_code_round_trips() {
        assert_eq!(pq_code(255), 255);
    }

    #[test]
    #[should_panic(expected = "PQ code overflow")]
    #[cfg(debug_assertions)]
    fn pq_code_rejects_wide() {
        pq_code(256);
    }

    #[test]
    #[should_panic(expected = "vector id overflow")]
    #[cfg(debug_assertions)]
    fn vec_id_rejects_wide() {
        vec_id(u32::MAX as usize + 1);
    }
}
