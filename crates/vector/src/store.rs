//! Contiguous vector storage.
//!
//! [`VectorStore`] keeps fixed-dimension vectors in one flat `Vec<f32>`
//! buffer: dense ids, cache-friendly scans, trivial serialization. It is the
//! backing store of every graph index in `mqa-graph`.
//!
//! [`MultiVectorStore`] layers the multi-modal schema on top: each object's
//! modalities are stored *concatenated* (the unified-index layout of the
//! paper), with per-modality views for the MR baseline's per-modality
//! indexes.

use crate::multivec::{MultiVector, Schema};
use crate::{Dim, VecId};
use serde::{Deserialize, Serialize};

/// A growable collection of fixed-dimension `f32` vectors in contiguous
/// memory. Ids are dense and assigned in insertion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorStore {
    dim: Dim,
    data: Vec<f32>,
}

impl VectorStore {
    /// Creates an empty store for vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: Dim) -> Self {
        assert!(dim > 0, "vector store requires non-zero dimension");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty store with capacity for `n` vectors.
    pub fn with_capacity(dim: Dim, n: usize) -> Self {
        assert!(dim > 0, "vector store requires non-zero dimension");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        // INVARIANT: dim >= 1 is enforced at construction.
        self.data.len() / self.dim
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a vector, returning its id.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`, or if the store would exceed `u32::MAX`
    /// vectors.
    pub fn push(&mut self, v: &[f32]) -> VecId {
        assert_eq!(v.len(), self.dim, "push: dimension mismatch");
        let id = self.len();
        assert!(id <= u32::MAX as usize, "vector store overflow");
        self.data.extend_from_slice(v);
        id as VecId
    }

    /// Borrow of vector `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: VecId) -> &[f32] {
        let start = id as usize * self.dim;
        // INVARIANT: ids are handed out by push (id < len()) and data.len()
        // is an exact multiple of dim.
        &self.data[start..start + self.dim]
    }

    /// Mutable borrow of vector `id`.
    pub fn get_mut(&mut self, id: VecId) -> &mut [f32] {
        let start = id as usize * self.dim;
        // INVARIANT: ids are handed out by push (id < len()) and
        // data.len() is an exact multiple of dim.
        &mut self.data[start..start + self.dim]
    }

    /// Iterator over `(id, vector)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VecId, &[f32])> {
        self.data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, v)| (i as VecId, v))
    }

    /// Raw flat buffer (length `len() * dim()`).
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Approximate resident size in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Multi-modal object storage: concatenated layout plus per-modality views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVectorStore {
    schema: Schema,
    /// Concatenated (schema.total_dim) representation per object.
    concat: VectorStore,
    /// Presence mask per object per modality (missing modalities are stored
    /// as zero blocks in `concat`).
    present: Vec<Vec<bool>>,
}

impl MultiVectorStore {
    /// Creates an empty store for objects of the given schema.
    pub fn new(schema: Schema) -> Self {
        let dim = schema.total_dim();
        Self {
            schema,
            concat: VectorStore::new(dim),
            present: Vec::new(),
        }
    }

    /// The schema shared by all stored objects.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.concat.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.concat.is_empty()
    }

    /// Appends an object, returning its id.
    pub fn push(&mut self, mv: &MultiVector) -> VecId {
        assert_eq!(
            mv.arity(),
            self.schema.arity(),
            "push: modality arity mismatch"
        );
        let flat = mv.concat(&self.schema);
        // ALLOC: per-inserted-object presence mask (build/mutation path).
        let mask = (0..mv.arity()).map(|m| mv.part(m).is_some()).collect();
        self.present.push(mask);
        self.concat.push(&flat)
    }

    /// The concatenated vector of object `id` (missing modalities are zero
    /// blocks).
    #[inline]
    pub fn concat_of(&self, id: VecId) -> &[f32] {
        self.concat.get(id)
    }

    /// View of modality `m` of object `id`, or `None` if that modality was
    /// missing at insertion.
    pub fn part_of(&self, id: VecId, m: usize) -> Option<&[f32]> {
        // An unknown id or modality index reads as a missing part rather
        // than panicking mid-retrieval.
        if !*self
            .present
            .get(id as usize)
            .and_then(|mask| mask.get(m))
            .unwrap_or(&false)
        {
            return None;
        }
        let off = self.schema.offset(m);
        // INVARIANT: the presence mask above proves id and m valid, and
        // schema offsets/dims partition each concatenated vector.
        Some(&self.concat.get(id)[off..off + self.schema.dim(m)])
    }

    /// Reconstructs the full [`MultiVector`] of object `id`.
    pub fn multivector_of(&self, id: VecId) -> MultiVector {
        let parts = (0..self.schema.arity())
            // ALLOC: reassembled multivector for diversification, bounded by the modality arity.
            .map(|m| self.part_of(id, m).map(|v| v.to_vec()))
            .collect();
        MultiVector::partial(&self.schema, parts)
    }

    /// Extracts a single-modality [`VectorStore`] (copy) for the MR
    /// baseline's per-modality indexes. Missing modalities contribute their
    /// zero block.
    pub fn modality_store(&self, m: usize) -> VectorStore {
        let d = self.schema.dim(m);
        let off = self.schema.offset(m);
        let mut out = VectorStore::with_capacity(d, self.len());
        for id in 0..self.len() {
            let flat = self.concat.get(crate::cast::vec_id(id));
            // INVARIANT: off + d <= total_dim = flat.len() by the schema.
            out.push(&flat[off..off + d]);
        }
        out
    }

    /// Builds a weighted-concatenation [`VectorStore`]: each modality block
    /// scaled by `sqrt(w_m)` so plain L2 equals the fused weighted distance
    /// (see [`crate::multivec::Weights::scale_concat`]).
    pub fn weighted_store(&self, weights: &crate::multivec::Weights) -> VectorStore {
        let mut out = VectorStore::with_capacity(self.schema.total_dim(), self.len());
        for id in 0..self.len() {
            let mut flat = self.concat.get(id as VecId).to_vec();
            weights.scale_concat(&self.schema, &mut flat);
            out.push(&flat);
        }
        out
    }

    /// Approximate resident size in bytes.
    pub fn bytes(&self) -> usize {
        self.concat.bytes() + self.present.len() * self.schema.arity()
    }

    /// Audits the store's structural invariants and returns every
    /// violation found (empty = sound).
    ///
    /// Checked invariants:
    /// - the flat buffer's dimension equals the schema's total dimension;
    /// - there is exactly one presence mask per object, each with one flag
    ///   per modality;
    /// - every stored component is finite;
    /// - a modality flagged absent is stored as an all-zero block (the
    ///   layout contract `push` establishes and distance kernels rely on).
    pub fn validate(&self) -> Vec<StoreViolation> {
        let mut out = Vec::new();
        if self.concat.dim() != self.schema.total_dim() {
            out.push(StoreViolation::DimensionMismatch {
                expected: self.schema.total_dim(),
                got: self.concat.dim(),
            });
            return out; // block offsets below would be meaningless
        }
        if self.present.len() != self.concat.len() {
            out.push(StoreViolation::MaskCount {
                expected: self.concat.len(),
                got: self.present.len(),
            });
        }
        let arity = self.schema.arity();
        for (id, mask) in self.present.iter().enumerate().take(self.concat.len()) {
            let id = id as VecId;
            if mask.len() != arity {
                out.push(StoreViolation::MaskArity {
                    id,
                    expected: arity,
                    got: mask.len(),
                });
                continue;
            }
            let flat = self.concat.get(id);
            if flat.iter().any(|x| !x.is_finite()) {
                out.push(StoreViolation::NonFinite { id });
            }
            for (m, &present) in mask.iter().enumerate() {
                let off = self.schema.offset(m);
                // INVARIANT: modality blocks partition each concat row.
                let block = &flat[off..off + self.schema.dim(m)];
                if !present && block.iter().any(|&x| x != 0.0) {
                    out.push(StoreViolation::GhostBlock { id, modality: m });
                }
            }
        }
        out
    }
}

/// A structural defect in a [`MultiVectorStore`], reported by
/// [`MultiVectorStore::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreViolation {
    /// The flat buffer's dimension disagrees with the schema.
    DimensionMismatch {
        /// The schema's total dimension.
        expected: usize,
        /// The buffer's dimension.
        got: usize,
    },
    /// Presence-mask count differs from the object count.
    MaskCount {
        /// The object count.
        expected: usize,
        /// The mask count.
        got: usize,
    },
    /// A presence mask with the wrong number of modality flags.
    MaskArity {
        /// The affected object.
        id: VecId,
        /// The schema arity.
        expected: usize,
        /// The mask's flag count.
        got: usize,
    },
    /// A NaN or infinite component in an object's stored data.
    NonFinite {
        /// The affected object.
        id: VecId,
    },
    /// Non-zero data stored in a modality block flagged absent.
    GhostBlock {
        /// The affected object.
        id: VecId,
        /// The modality whose block should be zero.
        modality: usize,
    },
}

impl std::fmt::Display for StoreViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "store dimension {got} != schema total dimension {expected}"
                )
            }
            Self::MaskCount { expected, got } => {
                write!(f, "{got} presence masks for {expected} objects")
            }
            Self::MaskArity { id, expected, got } => {
                write!(
                    f,
                    "object {id}: mask has {got} flags, schema arity is {expected}"
                )
            }
            Self::NonFinite { id } => write!(f, "object {id}: non-finite component"),
            Self::GhostBlock { id, modality } => {
                write!(
                    f,
                    "object {id}: absent modality {modality} has non-zero data"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multivec::Weights;
    use crate::Metric;

    #[test]
    fn push_get_round_trip() {
        let mut s = VectorStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(b), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dim_panics() {
        let mut s = VectorStore::new(3);
        s.push(&[1.0]);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut s = VectorStore::new(1);
        for i in 0..5 {
            s.push(&[i as f32]);
        }
        let ids: Vec<VecId> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn get_mut_modifies_in_place() {
        let mut s = VectorStore::new(2);
        let id = s.push(&[1.0, 1.0]);
        s.get_mut(id)[0] = 9.0;
        assert_eq!(s.get(id), &[9.0, 1.0]);
    }

    #[test]
    fn bytes_tracks_size() {
        let mut s = VectorStore::new(4);
        s.push(&[0.0; 4]);
        assert_eq!(s.bytes(), 16);
    }

    fn mv_store() -> (Schema, MultiVectorStore) {
        let schema = Schema::text_image(2, 3);
        let store = MultiVectorStore::new(schema.clone());
        (schema, store)
    }

    #[test]
    fn multivector_round_trip() {
        let (schema, mut store) = mv_store();
        let mv = MultiVector::complete(&schema, vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]]);
        let id = store.push(&mv);
        assert_eq!(store.multivector_of(id), mv);
        assert_eq!(store.part_of(id, 0).unwrap(), &[1.0, 2.0]);
        assert_eq!(store.part_of(id, 1).unwrap(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn missing_modality_round_trip() {
        let (schema, mut store) = mv_store();
        let mv = MultiVector::partial(&schema, vec![None, Some(vec![1.0, 1.0, 1.0])]);
        let id = store.push(&mv);
        assert!(store.part_of(id, 0).is_none());
        assert_eq!(store.multivector_of(id), mv);
        // concat layout imputes zeros for the missing text block
        assert_eq!(&store.concat_of(id)[..2], &[0.0, 0.0]);
    }

    #[test]
    fn modality_store_extracts_blocks() {
        let (schema, mut store) = mv_store();
        store.push(&MultiVector::complete(
            &schema,
            vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]],
        ));
        store.push(&MultiVector::complete(
            &schema,
            vec![vec![6.0, 7.0], vec![8.0, 9.0, 10.0]],
        ));
        let text = store.modality_store(0);
        assert_eq!(text.dim(), 2);
        assert_eq!(text.get(1), &[6.0, 7.0]);
        let image = store.modality_store(1);
        assert_eq!(image.get(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn weighted_store_reproduces_fused_distance() {
        let (schema, mut store) = mv_store();
        let a = MultiVector::complete(&schema, vec![vec![1.0, 0.0], vec![0.0, 1.0, 0.5]]);
        let b = MultiVector::complete(&schema, vec![vec![0.0, 1.0], vec![1.0, 0.0, -0.5]]);
        store.push(&a);
        store.push(&b);
        let w = Weights::normalized(&[3.0, 1.0]);
        let ws = store.weighted_store(&w);
        let flat_dist = Metric::L2.distance(ws.get(0), ws.get(1));
        let fused = a.fused_distance(&b, &w, Metric::L2);
        assert!((flat_dist - fused).abs() < 1e-5);
    }

    #[test]
    fn serde_round_trip() {
        let (schema, mut store) = mv_store();
        store.push(&MultiVector::complete(
            &schema,
            vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]],
        ));
        let j = serde_json::to_string(&store).unwrap();
        let back: MultiVectorStore = serde_json::from_str(&j).unwrap();
        assert_eq!(store, back);
    }

    #[test]
    fn validate_accepts_sound_store() {
        let (schema, mut store) = mv_store();
        store.push(&MultiVector::complete(
            &schema,
            vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]],
        ));
        store.push(&MultiVector::partial(
            &schema,
            vec![Some(vec![6.0, 7.0]), None],
        ));
        let violations = store.validate();
        assert!(violations.is_empty(), "sound store flagged: {violations:?}");
        assert!(MultiVectorStore::new(schema).validate().is_empty());
    }

    #[test]
    fn validate_detects_corruption() {
        let (schema, mut sound) = mv_store();
        sound.push(&MultiVector::complete(
            &schema,
            vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]],
        ));
        sound.push(&MultiVector::partial(
            &schema,
            vec![Some(vec![6.0, 7.0]), None],
        ));

        // A NaN smuggled into the flat buffer.
        let mut store = sound.clone();
        store.concat.get_mut(0)[1] = f32::NAN;
        assert!(store
            .validate()
            .iter()
            .any(|v| matches!(v, StoreViolation::NonFinite { id: 0 })));

        // Data written into an absent modality's zero block.
        let mut store = sound.clone();
        store.concat.get_mut(1)[2] = 0.5; // modality 1 of object 1 is absent
        assert!(store
            .validate()
            .iter()
            .any(|v| matches!(v, StoreViolation::GhostBlock { id: 1, modality: 1 })));

        // A lost presence mask.
        let mut store = sound.clone();
        store.present.pop();
        assert!(store.validate().iter().any(|v| matches!(
            v,
            StoreViolation::MaskCount {
                expected: 2,
                got: 1
            }
        )));

        // A mask with the wrong arity.
        let mut store = sound;
        store.present[0].push(true);
        let v = store.validate();
        assert!(v
            .iter()
            .any(|x| matches!(x, StoreViolation::MaskArity { id: 0, .. })));
        for x in &v {
            assert!(!x.to_string().is_empty());
        }
    }
}
