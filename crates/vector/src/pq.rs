//! Product quantization (PQ): compressed vector codes for memory-resident
//! routing.
//!
//! DiskANN-family systems (including Starling, reference 9 of the paper)
//! keep *full* vectors on disk and route through **PQ codes held in RAM**:
//! the vector space is split into `M` contiguous subspaces, each clustered
//! into `K = 256` centroids by k-means, and every vector is stored as `M`
//! one-byte centroid ids. Distances against a query are then computed from
//! a per-query lookup table in `O(M)` per candidate — orders of magnitude
//! less memory traffic than the raw floats.
//!
//! This module implements the full pipeline: codebook training
//! ([`PqCodebook::train`]), encoding ([`PqCodebook::encode_store`] →
//! [`PqCodes`]), and asymmetric distance computation
//! ([`PqTable::distance`]). The Starling paged index uses it for two-phase
//! search (route on codes, rerank on page-resident full vectors); E7
//! reports the accuracy/memory trade.

use crate::store::VectorStore;
use crate::{Dim, VecId};
use mqa_rng::StdRng;
use serde::{Deserialize, Serialize};

/// Centroids per subspace (one byte per code).
pub const PQ_K: usize = 256;

/// A trained product quantizer: `m` subspace codebooks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PqCodebook {
    dim: Dim,
    m: usize,
    /// `centroids[s]` is a `(K, sub_dim(s))` row-major matrix.
    centroids: Vec<Vec<f32>>,
    /// Subspace boundaries: subspace `s` covers `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
}

/// Training parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PqParams {
    /// Number of subspaces (code bytes per vector).
    pub m: usize,
    /// k-means iterations per subspace.
    pub iters: usize,
    /// Training sample cap (vectors beyond this are subsampled).
    pub train_sample: usize,
    /// RNG seed for initialization and subsampling.
    pub seed: u64,
}

impl Default for PqParams {
    fn default() -> Self {
        Self {
            m: 16,
            iters: 12,
            train_sample: 20_000,
            seed: 0,
        }
    }
}

impl PqCodebook {
    /// Trains codebooks over the store by per-subspace k-means.
    ///
    /// # Panics
    /// Panics if the store is empty, or `m` is zero or exceeds the
    /// dimensionality.
    pub fn train(store: &VectorStore, params: &PqParams) -> Self {
        assert!(!store.is_empty(), "PQ training requires vectors");
        let dim = store.dim();
        assert!(params.m > 0 && params.m <= dim, "invalid subspace count");
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x90C0DE);

        // Subspace boundaries: distribute remainder dims to the front.
        // INVARIANT: m >= 1 is asserted above, so the divisions are
        // well-defined and bounds grows to exactly m + 1 entries.
        let base = dim / params.m;
        let extra = dim % params.m;
        let mut bounds = Vec::with_capacity(params.m + 1);
        bounds.push(0usize);
        for s in 0..params.m {
            // INVARIANT: bounds[s] was pushed on the previous iteration.
            bounds.push(bounds[s] + base + usize::from(s < extra));
        }

        // Training sample.
        let n = store.len();
        let sample: Vec<VecId> = if n <= params.train_sample {
            (0..n as VecId).collect()
        } else {
            (0..params.train_sample)
                .map(|_| rng.gen_range(0..n) as VecId)
                .collect()
        };

        let mut centroids = Vec::with_capacity(params.m);
        for s in 0..params.m {
            // INVARIANT: bounds holds m + 1 increasing entries ending at
            // dim, so lo..hi is a valid subrange of every store row.
            let lo = bounds[s];
            let hi = bounds[s + 1];
            let sub = hi - lo;
            let k = PQ_K.min(sample.len());
            // Init: distinct random sample rows.
            let mut cents = vec![0.0f32; k * sub];
            for (c, chunk) in cents.chunks_mut(sub).enumerate() {
                // INVARIANT: sample is non-empty (the store is), so the
                // modular probe lands on a valid sample row.
                let id = sample[(c * 7919 + 13) % sample.len()];
                chunk.copy_from_slice(&store.get(id)[lo..hi]);
            }
            let mut assign = vec![0usize; sample.len()];
            for _ in 0..params.iters {
                // Assignment.
                for (i, &id) in sample.iter().enumerate() {
                    // INVARIANT: sample ids index the store; lo..hi is a
                    // subrange of each dim-length row.
                    let v = &store.get(id)[lo..hi];
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for c in 0..k {
                        // INVARIANT: c < k and cents holds k rows of sub.
                        let d = crate::ops::l2_sq(v, &cents[c * sub..(c + 1) * sub]);
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    // INVARIANT: assign has one slot per sample row.
                    assign[i] = best;
                }
                // Update.
                let mut sums = vec![0.0f32; k * sub];
                let mut counts = vec![0usize; k];
                for (i, &id) in sample.iter().enumerate() {
                    // INVARIANT: assignments are cluster ids < k; counts
                    // has k slots and sums k rows; v has sub entries.
                    let v = &store.get(id)[lo..hi];
                    let c = assign[i];
                    counts[c] += 1;
                    for (j, x) in v.iter().enumerate() {
                        // INVARIANT: j < sub and c < k bound the row.
                        sums[c * sub + j] += x;
                    }
                }
                for c in 0..k {
                    // INVARIANT: c < k indexes counts and centroid rows.
                    if counts[c] == 0 {
                        // INVARIANT: re-seed an empty cluster from a random
                        // row of the non-empty sample; c < k stays in bounds.
                        let id = sample[rng.gen_range(0..sample.len())];
                        cents[c * sub..(c + 1) * sub].copy_from_slice(&store.get(id)[lo..hi]);
                    } else {
                        for j in 0..sub {
                            // INVARIANT: counts[c] > 0 in this branch and
                            // c * sub + j < k * sub.
                            cents[c * sub + j] =
                                sums[c * sub + j] / crate::cast::count_f32(counts[c]);
                        }
                    }
                }
            }
            centroids.push(cents);
        }
        Self {
            dim,
            m: params.m,
            centroids,
            bounds,
        }
    }

    /// Dimensionality this codebook encodes.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Code bytes per vector.
    pub fn m(&self) -> usize {
        self.m
    }

    fn sub_dim(&self, s: usize) -> usize {
        // INVARIANT: callers pass s < m and bounds has m + 1 entries.
        self.bounds[s + 1] - self.bounds[s]
    }

    /// Encodes one vector into `m` bytes.
    ///
    /// # Panics
    /// Panics in debug builds on dimension mismatch.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        debug_assert_eq!(v.len(), self.dim, "encode: dimension mismatch");
        (0..self.m)
            .map(|s| {
                // INVARIANT: s < m; bounds has m + 1 entries by construction.
                let lo = self.bounds[s];
                let hi = self.bounds[s + 1];
                let sub = hi - lo;
                // INVARIANT: centroids has m subspace tables and each
                // subspace is non-degenerate (sub >= 1) at construction.
                let cents = &self.centroids[s];
                let k = cents.len() / sub;
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    // INVARIANT: lo..hi <= dim and c < k = cents.len()/sub,
                    // so both subslices are in bounds.
                    let d = crate::ops::l2_sq(&v[lo..hi], &cents[c * sub..(c + 1) * sub]);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                crate::cast::pq_code(best)
            })
            // ALLOC: one code vector per encoded vector, bounded by the subspace count.
            .collect()
    }

    /// Encodes the whole store.
    pub fn encode_store(&self, store: &VectorStore) -> PqCodes {
        assert_eq!(store.dim(), self.dim, "store dimension mismatch");
        let mut codes = Vec::with_capacity(store.len() * self.m);
        for (_, v) in store.iter() {
            codes.extend(self.encode(v));
        }
        PqCodes { m: self.m, codes }
    }

    /// Reconstructs (decodes) a vector from its code — the centroid
    /// concatenation. Used for diagnostics and tests.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "decode: code length mismatch");
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in code.iter().enumerate() {
            let sub = self.sub_dim(s);
            // INVARIANT: centroids has m per-subspace tables, each a
            // multiple of sub floats; the clamp keeps c a valid row.
            let cents = &self.centroids[s];
            let c = (c as usize).min(cents.len() / sub - 1);
            out.extend_from_slice(&cents[c * sub..(c + 1) * sub]);
        }
        out
    }

    /// Builds the per-query asymmetric distance lookup table.
    pub fn table(&self, query: &[f32]) -> PqTable {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut luts = Vec::with_capacity(self.m);
        for s in 0..self.m {
            // INVARIANT: bounds has m + 1 increasing entries and
            // centroids has m tables; sub >= 1 by construction.
            let cents = &self.centroids[s];
            let lo = self.bounds[s];
            let hi = self.bounds[s + 1];
            let sub = hi - lo;
            // INVARIANT: sub >= 1, so the centroid count is well-defined.
            let k = cents.len() / sub;
            let mut lut = Vec::with_capacity(k);
            for c in 0..k {
                // INVARIANT: lo..hi <= dim (asserted above) and c < k.
                lut.push(crate::ops::l2_sq(
                    &query[lo..hi],
                    &cents[c * sub..(c + 1) * sub],
                ));
            }
            luts.push(lut);
        }
        PqTable { luts }
    }
}

/// The compressed codes of a store: `m` bytes per vector, contiguous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PqCodes {
    m: usize,
    codes: Vec<u8>,
}

impl PqCodes {
    /// Code of vector `id`.
    #[inline]
    pub fn code(&self, id: VecId) -> &[u8] {
        let start = id as usize * self.m;
        // INVARIANT: ids come from the encoded store (id < len()), and
        // codes.len() is an exact multiple of m by construction.
        &self.codes[start..start + self.m]
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        // INVARIANT: m >= 1 is enforced when the codebook is trained.
        self.codes.len() / self.m
    }

    /// Whether no vector is encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Resident bytes (the whole point of PQ).
    pub fn bytes(&self) -> usize {
        self.codes.len()
    }
}

/// Per-query lookup table: `distance(query, decode(code)) = Σ lut[s][code[s]]`.
#[derive(Debug, Clone)]
pub struct PqTable {
    luts: Vec<Vec<f32>>,
}

impl PqTable {
    /// Approximate L2 distance from the query to an encoded vector.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.luts.len());
        code.iter()
            .zip(&self.luts)
            // INVARIANT: each LUT holds one entry per centroid (256 slots
            // for u8 codes), so a byte code always lands in bounds.
            .map(|(&c, lut)| lut[c as usize])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    fn clustered_store(n: usize, dim: usize, clusters: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let mut s = VectorStore::new(dim);
        for i in 0..n {
            let c = &centers[i % clusters];
            let v: Vec<f32> = c.iter().map(|x| x + rng.gen_range(-0.2f32..0.2)).collect();
            s.push(&v);
        }
        s
    }

    fn params(m: usize) -> PqParams {
        PqParams {
            m,
            iters: 8,
            train_sample: 10_000,
            seed: 0,
        }
    }

    #[test]
    fn encode_decode_reduces_error_over_random() {
        let store = clustered_store(500, 16, 10, 1);
        let cb = PqCodebook::train(&store, &params(4));
        let mut err = 0.0f32;
        for (_, v) in store.iter() {
            let rec = cb.decode(&cb.encode(v));
            err += Metric::L2.distance(v, &rec);
        }
        let avg_err = err / store.len() as f32;
        // Cluster spread is ±0.2 per dim; reconstruction should land well
        // inside a cluster radius.
        assert!(avg_err < 0.5, "avg reconstruction error {avg_err}");
    }

    #[test]
    fn table_distance_matches_decoded_distance() {
        let store = clustered_store(200, 12, 6, 2);
        let cb = PqCodebook::train(&store, &params(3));
        let codes = cb.encode_store(&store);
        let query = store.get(7).to_vec();
        let table = cb.table(&query);
        for id in (0..200u32).step_by(17) {
            let via_table = table.distance(codes.code(id));
            let via_decode = Metric::L2.distance(&query, &cb.decode(codes.code(id)));
            assert!(
                (via_table - via_decode).abs() < 1e-3 * (1.0 + via_decode),
                "id {id}: {via_table} vs {via_decode}"
            );
        }
    }

    #[test]
    fn pq_ranking_correlates_with_exact_ranking() {
        let store = clustered_store(400, 16, 8, 3);
        let cb = PqCodebook::train(&store, &params(8));
        let codes = cb.encode_store(&store);
        let query = store.get(0).to_vec();
        let table = cb.table(&query);
        // exact top-20
        let mut exact: Vec<(u32, f32)> = store
            .iter()
            .map(|(id, v)| (id, Metric::L2.distance(&query, v)))
            .collect();
        exact.sort_by(|a, b| a.1.total_cmp(&b.1));
        let exact_top: Vec<u32> = exact.iter().take(20).map(|(id, _)| *id).collect();
        // pq top-20
        let mut approx: Vec<(u32, f32)> = (0..400u32)
            .map(|id| (id, table.distance(codes.code(id))))
            .collect();
        approx.sort_by(|a, b| a.1.total_cmp(&b.1));
        let approx_top: Vec<u32> = approx.iter().take(20).map(|(id, _)| *id).collect();
        let overlap = approx_top
            .iter()
            .filter(|id| exact_top.contains(id))
            .count();
        assert!(overlap >= 14, "PQ top-20 overlap {overlap}/20");
    }

    #[test]
    fn codes_are_compact() {
        let store = clustered_store(100, 32, 4, 4);
        let cb = PqCodebook::train(&store, &params(8));
        let codes = cb.encode_store(&store);
        assert_eq!(codes.len(), 100);
        assert_eq!(codes.bytes(), 800); // 8 bytes vs 128 raw bytes per vector
        assert!(codes.bytes() * 16 == store.bytes());
    }

    #[test]
    fn uneven_dims_are_partitioned_fully() {
        let store = clustered_store(50, 13, 3, 5);
        let cb = PqCodebook::train(&store, &params(4)); // 13 = 4+3+3+3
        let code = cb.encode(store.get(0));
        assert_eq!(code.len(), 4);
        assert_eq!(cb.decode(&code).len(), 13);
    }

    #[test]
    fn serde_round_trip() {
        let store = clustered_store(60, 8, 3, 6);
        let cb = PqCodebook::train(&store, &params(2));
        let codes = cb.encode_store(&store);
        let cb2: PqCodebook = serde_json::from_str(&serde_json::to_string(&cb).unwrap()).unwrap();
        let codes2: PqCodes =
            serde_json::from_str(&serde_json::to_string(&codes).unwrap()).unwrap();
        assert_eq!(cb, cb2);
        assert_eq!(codes, codes2);
    }

    #[test]
    #[should_panic(expected = "requires vectors")]
    fn empty_store_panics() {
        PqCodebook::train(&VectorStore::new(4), &params(2));
    }
}
