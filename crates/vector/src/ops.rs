//! Elementwise vector helpers shared by the metric and scan kernels.
//!
//! All functions operate on plain `&[f32]` slices so callers can store
//! vectors contiguously (see [`crate::store`]) without wrapper types.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    // Chunked accumulation: four independent partial sums give the compiler
    // room to vectorize and reduce floating-point dependency chains. The
    // slice patterns always match (`chunks_exact(4)` yields only full
    // chunks), so the kernel compiles without bounds checks.
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (ca, cb) = (a.chunks_exact(4), b.chunks_exact(4));
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (x, y) {
            s0 += x0 * y0;
            s1 += x1 * y1;
            s2 += x2 * y2;
            s3 += x3 * y3;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ta.iter().zip(tb) {
        tail += x * y;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "l2_sq: dimension mismatch");
    // Same bounds-check-free shape as [`dot`].
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (ca, cb) = (a.chunks_exact(4), b.chunks_exact(4));
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (x, y) {
            let (d0, d1, d2, d3) = (x0 - y0, x1 - y1, x2 - y2, x3 - y3);
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        tail += d * d;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalizes `a` in place to unit L2 norm. Zero vectors are left untouched.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for x in a.iter_mut() {
            *x *= inv;
        }
    }
}

/// Returns a freshly allocated unit-normalized copy of `a`.
pub fn normalized(a: &[f32]) -> Vec<f32> {
    let mut v = a.to_vec();
    normalize(&mut v);
    v
}

/// `y += alpha * x` (the BLAS `axpy` primitive).
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `a` in place by `alpha`.
#[inline]
pub fn scale(alpha: f32, a: &mut [f32]) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Elementwise mean of a non-empty set of equal-length vectors.
///
/// Returns `None` for an empty input.
pub fn mean(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut out = vec![0.0f32; first.len()];
    for v in vectors {
        axpy(1.0, v, &mut out);
    }
    scale(1.0 / crate::cast::count_f32(vectors.len()), &mut out);
    Some(out)
}

/// Linear interpolation `(1 - t) * a + t * b`.
pub fn lerp(a: &[f32], b: &[f32], t: f32) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "lerp: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (1.0 - t) * x + t * y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn l2_sq_matches_naive() {
        let a: Vec<f32> = (0..17).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..17).map(|i| (i * i) as f32 * 0.1).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < 1e-2);
    }

    #[test]
    fn l2_sq_identity_is_zero() {
        let a = [1.0f32, -2.0, 3.5];
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut a = vec![3.0f32, 4.0];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-6);
        assert!((a[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut a = vec![0.0f32; 5];
        normalize(&mut a);
        assert!(a.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn mean_of_two() {
        let a = [0.0f32, 2.0];
        let b = [2.0f32, 4.0];
        let m = mean(&[&a, &b]).unwrap();
        assert_eq!(m, vec![1.0, 3.0]);
    }

    #[test]
    fn mean_empty_is_none() {
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0f32, 1.0];
        let b = [4.0f32, 5.0];
        assert_eq!(lerp(&a, &b, 0.0), vec![0.0, 1.0]);
        assert_eq!(lerp(&a, &b, 1.0), vec![4.0, 5.0]);
        assert_eq!(lerp(&a, &b, 0.5), vec![2.0, 3.0]);
    }
}
