//! Multi-vector (multi-modal) object representation.
//!
//! The MQA paper represents every object in the knowledge base — and every
//! query — as *one vector per modality* (text, image, …), rather than a
//! single jointly-encoded vector. The fused similarity between a query and
//! an object is a **weighted sum of per-modality distances**, with the
//! weights produced by the vector weight learning model (`mqa-weights`) or
//! supplied directly by the user through the configuration panel.
//!
//! This module defines:
//!
//! * [`Schema`] — the ordered list of modalities of a knowledge base
//!   (names, kinds, and dimensionalities);
//! * [`MultiVector`] — one vector per modality, with optional (missing)
//!   modalities so that e.g. a text-only query can still be scored;
//! * [`Weights`] — non-negative per-modality weights with the normalization
//!   used by MUST.

use crate::{Dim, Metric};
use serde::{Deserialize, Serialize};

/// The kind of data a modality carries. Purely descriptive — the numeric
/// pipeline treats all modalities identically — but surfaced by the status
/// monitoring panel and used by answer generation to phrase replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModalityKind {
    /// Natural-language text (queries, synopses, captions).
    Text,
    /// Still images (posters, product photos).
    Image,
    /// Audio clips (the paper's voice-input example).
    Audio,
    /// Video/film content.
    Video,
}

impl ModalityKind {
    /// Display name used in panels and prompts.
    pub fn name(self) -> &'static str {
        match self {
            ModalityKind::Text => "text",
            ModalityKind::Image => "image",
            ModalityKind::Audio => "audio",
            ModalityKind::Video => "video",
        }
    }
}

/// A single modality declaration inside a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Modality {
    /// Human-readable modality name (e.g. `"caption"`, `"poster"`).
    pub name: String,
    /// Data kind of the modality.
    pub kind: ModalityKind,
    /// Dimensionality of the modality's embedding space.
    pub dim: Dim,
}

/// Ordered multi-modal schema shared by all objects of a knowledge base.
///
/// Modality indices into this schema are used everywhere (weights, stores,
/// fused scans), so the order is significant and immutable once built.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    modalities: Vec<Modality>,
}

impl Schema {
    /// Builds a schema from a list of modalities.
    ///
    /// # Panics
    /// Panics if `modalities` is empty or any dimension is zero — a
    /// knowledge base without modalities cannot be indexed.
    pub fn new(modalities: Vec<Modality>) -> Self {
        assert!(
            !modalities.is_empty(),
            "schema requires at least one modality"
        );
        assert!(
            modalities.iter().all(|m| m.dim > 0),
            "modalities must have non-zero dimensionality"
        );
        Self { modalities }
    }

    /// Convenience constructor: a text+image schema, the configuration used
    /// in all of the paper's interaction scenarios.
    pub fn text_image(text_dim: Dim, image_dim: Dim) -> Self {
        Self::new(vec![
            Modality {
                name: "text".into(),
                kind: ModalityKind::Text,
                dim: text_dim,
            },
            Modality {
                name: "image".into(),
                kind: ModalityKind::Image,
                dim: image_dim,
            },
        ])
    }

    /// Number of modalities.
    pub fn arity(&self) -> usize {
        self.modalities.len()
    }

    /// The modality declarations, in schema order.
    pub fn modalities(&self) -> &[Modality] {
        &self.modalities
    }

    /// Dimensionality of modality `m`, or 0 for an unknown modality index.
    pub fn dim(&self, m: usize) -> Dim {
        self.modalities.get(m).map_or(0, |x| x.dim)
    }

    /// Total dimensionality of the concatenated representation.
    pub fn total_dim(&self) -> Dim {
        self.modalities.iter().map(|m| m.dim).sum()
    }

    /// Index of the modality with the given name, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.modalities.iter().position(|m| m.name == name)
    }

    /// Offset of modality `m` inside the concatenated representation.
    pub fn offset(&self, m: usize) -> usize {
        // An unknown modality index clamps to the arity, yielding the total
        // dimension rather than a panic.
        let m = m.min(self.modalities.len());
        // INVARIANT: m <= modalities.len() after the clamp above.
        self.modalities[..m].iter().map(|x| x.dim).sum()
    }
}

/// One vector per modality. `None` marks a *missing* modality (e.g. the
/// image slot of a text-only query); fused scoring simply skips missing
/// modalities, which is how MQA supports partial queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVector {
    parts: Vec<Option<Vec<f32>>>,
}

impl MultiVector {
    /// A multi-vector with every modality present.
    ///
    /// # Panics
    /// Panics if `parts` does not match `schema` in arity or dimensions.
    pub fn complete(schema: &Schema, parts: Vec<Vec<f32>>) -> Self {
        assert_eq!(parts.len(), schema.arity(), "modality count mismatch");
        for (m, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), schema.dim(m), "dimension mismatch in modality {m}");
        }
        Self {
            parts: parts.into_iter().map(Some).collect(),
        }
    }

    /// A multi-vector with possibly missing modalities.
    ///
    /// # Panics
    /// Panics on arity/dimension mismatch, or if *all* modalities are
    /// missing (such an object/query is unscorable).
    pub fn partial(schema: &Schema, parts: Vec<Option<Vec<f32>>>) -> Self {
        assert_eq!(parts.len(), schema.arity(), "modality count mismatch");
        assert!(
            parts.iter().any(Option::is_some),
            "at least one modality must be present"
        );
        for (m, p) in parts.iter().enumerate() {
            if let Some(p) = p {
                assert_eq!(p.len(), schema.dim(m), "dimension mismatch in modality {m}");
            }
        }
        Self { parts }
    }

    /// Number of modality slots (present or missing).
    pub fn arity(&self) -> usize {
        self.parts.len()
    }

    /// The vector of modality `m`, or `None` if missing (or `m` is out of
    /// range).
    pub fn part(&self, m: usize) -> Option<&[f32]> {
        self.parts.get(m).and_then(Option::as_deref)
    }

    /// Replaces the vector of modality `m` (used when a dialogue round
    /// grafts a selected image onto the next query). Out-of-range `m`
    /// is ignored.
    pub fn set_part(&mut self, m: usize, v: Option<Vec<f32>>) {
        if let Some(slot) = self.parts.get_mut(m) {
            *slot = v;
        }
    }

    /// Iterator over `(modality, vector)` pairs for the present modalities.
    pub fn present(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.parts
            .iter()
            .enumerate()
            .filter_map(|(m, p)| p.as_deref().map(|v| (m, v)))
    }

    /// Whether every modality is present.
    pub fn is_complete(&self) -> bool {
        self.parts.iter().all(Option::is_some)
    }

    /// Concatenates the modalities into one flat vector, imputing zeros for
    /// missing modalities. This is the representation the JE baseline and
    /// the unified navigation graph store.
    pub fn concat(&self, schema: &Schema) -> Vec<f32> {
        // ALLOC: one fused vector per pushed object (build/mutation path).
        let mut out = Vec::with_capacity(schema.total_dim());
        for (m, p) in self.parts.iter().enumerate() {
            match p {
                Some(v) => out.extend_from_slice(v),
                None => out.extend(std::iter::repeat_n(0.0, schema.dim(m))),
            }
        }
        out
    }

    /// Splits a flat concatenated vector back into a complete multi-vector.
    ///
    /// # Panics
    /// Panics if `flat.len() != schema.total_dim()`.
    pub fn from_concat(schema: &Schema, flat: &[f32]) -> Self {
        assert_eq!(
            flat.len(),
            schema.total_dim(),
            "flat vector length mismatch"
        );
        let mut parts = Vec::with_capacity(schema.arity());
        let mut off = 0;
        for m in 0..schema.arity() {
            // INVARIANT: per-modality dims partition flat.len(), which is
            // asserted equal to total_dim above.
            let d = schema.dim(m);
            parts.push(Some(flat[off..off + d].to_vec()));
            off += d;
        }
        Self { parts }
    }

    /// Fused weighted distance to another multi-vector, skipping modalities
    /// missing on *either* side.
    ///
    /// This is the reference (non-pruned) implementation; the production
    /// search path uses [`crate::scan::FusedScanner`].
    pub fn fused_distance(&self, other: &MultiVector, weights: &Weights, metric: Metric) -> f32 {
        let mut total = 0.0;
        for (m, q) in self.present() {
            if let Some(o) = other.part(m) {
                total += weights.get(m) * metric.distance(q, o);
            }
        }
        total
    }
}

/// Non-negative per-modality weights used in fused distance computation.
///
/// MUST normalizes weights so they sum to the modality count (uniform
/// weights are all `1.0`), which keeps fused distances on a comparable
/// scale across weight configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    w: Vec<f32>,
}

impl Weights {
    /// Uniform weights (`1.0` per modality) — the setting the JE/MR
    /// baselines implicitly use.
    pub fn uniform(arity: usize) -> Self {
        assert!(arity > 0, "weights require at least one modality");
        Self {
            w: vec![1.0; arity],
        }
    }

    /// Builds weights from raw values, clamping negatives to zero and
    /// normalizing so that the sum equals the arity.
    ///
    /// # Panics
    /// Panics if `raw` is empty or sums to zero after clamping (no modality
    /// would contribute to similarity).
    pub fn normalized(raw: &[f32]) -> Self {
        assert!(!raw.is_empty(), "weights require at least one modality");
        // ALLOC: per-query weight normalization, bounded by the modality arity.
        let clamped: Vec<f32> = raw.iter().map(|&x| x.max(0.0)).collect();
        let sum: f32 = clamped.iter().sum();
        assert!(sum > 0.0, "at least one weight must be positive");
        let scale = crate::cast::count_f32(raw.len()) / sum;
        Self {
            // ALLOC: per-query weight normalization, bounded by the modality arity.
            w: clamped.into_iter().map(|x| x * scale).collect(),
        }
    }

    /// Weight of modality `m`, or 0 for an unknown modality index (a zero
    /// weight excludes the modality from fused scoring).
    #[inline]
    pub fn get(&self, m: usize) -> f32 {
        self.w.get(m).copied().unwrap_or(0.0)
    }

    /// All weights, in schema order.
    pub fn as_slice(&self) -> &[f32] {
        &self.w
    }

    /// Number of modalities covered.
    pub fn arity(&self) -> usize {
        self.w.len()
    }

    /// Applies the weights to a concatenated representation: scales each
    /// modality block by `sqrt(w_m)` so that plain L2 distance on the scaled
    /// concatenation equals the fused weighted L2 distance.
    ///
    /// This identity — `Σ_m w_m ‖q_m − o_m‖² = ‖ŝq − ŝo‖²` with
    /// `ŝx_m = sqrt(w_m)·x_m` — is what lets MUST reuse *any* single-vector
    /// navigation graph on weighted multi-modal data.
    pub fn scale_concat(&self, schema: &Schema, flat: &mut [f32]) {
        assert_eq!(
            flat.len(),
            schema.total_dim(),
            "flat vector length mismatch"
        );
        let mut off = 0;
        for m in 0..schema.arity() {
            let d = schema.dim(m);
            // INVARIANT: arity agreement is asserted at construction and
            // the per-modality dims partition flat (asserted above).
            let s = self.w.get(m).copied().unwrap_or(0.0).sqrt();
            for x in &mut flat[off..off + d] {
                *x *= s;
            }
            off += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::text_image(4, 3)
    }

    #[test]
    fn schema_accessors() {
        let s = schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.dim(0), 4);
        assert_eq!(s.dim(1), 3);
        assert_eq!(s.total_dim(), 7);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 4);
        assert_eq!(s.index_of("image"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "at least one modality")]
    fn empty_schema_panics() {
        Schema::new(vec![]);
    }

    #[test]
    fn complete_multivector_round_trips_concat() {
        let s = schema();
        let mv = MultiVector::complete(&s, vec![vec![1.0; 4], vec![2.0; 3]]);
        let flat = mv.concat(&s);
        assert_eq!(flat.len(), 7);
        let back = MultiVector::from_concat(&s, &flat);
        assert_eq!(mv, back);
    }

    #[test]
    fn partial_concat_imputes_zeros() {
        let s = schema();
        let mv = MultiVector::partial(&s, vec![Some(vec![1.0; 4]), None]);
        let flat = mv.concat(&s);
        assert_eq!(&flat[4..], &[0.0, 0.0, 0.0]);
        assert!(!mv.is_complete());
    }

    #[test]
    #[should_panic(expected = "at least one modality must be present")]
    fn all_missing_panics() {
        let s = schema();
        MultiVector::partial(&s, vec![None, None]);
    }

    #[test]
    fn fused_distance_weights_modalities() {
        let s = Schema::text_image(2, 2);
        let q = MultiVector::complete(&s, vec![vec![0.0, 0.0], vec![0.0, 0.0]]);
        let o = MultiVector::complete(&s, vec![vec![1.0, 0.0], vec![0.0, 2.0]]);
        let uniform = Weights::uniform(2);
        assert!((q.fused_distance(&o, &uniform, Metric::L2) - 5.0).abs() < 1e-6);
        let text_only = Weights::normalized(&[1.0, 0.0]);
        // text weight normalized to 2.0, image to 0.0
        assert!((q.fused_distance(&o, &text_only, Metric::L2) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fused_distance_skips_missing() {
        let s = Schema::text_image(2, 2);
        let q = MultiVector::partial(&s, vec![Some(vec![0.0, 0.0]), None]);
        let o = MultiVector::complete(&s, vec![vec![3.0, 4.0], vec![9.0, 9.0]]);
        let w = Weights::uniform(2);
        assert!((q.fused_distance(&o, &w, Metric::L2) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn weights_normalization() {
        let w = Weights::normalized(&[3.0, 1.0]);
        let sum: f32 = w.as_slice().iter().sum();
        assert!((sum - 2.0).abs() < 1e-6);
        assert!((w.get(0) - 1.5).abs() < 1e-6);
        assert!((w.get(1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn weights_clamp_negatives() {
        let w = Weights::normalized(&[-5.0, 1.0]);
        assert_eq!(w.get(0), 0.0);
        assert!((w.get(1) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_panic() {
        Weights::normalized(&[0.0, -1.0]);
    }

    #[test]
    fn scale_concat_reproduces_fused_l2() {
        let s = Schema::text_image(3, 2);
        let q = MultiVector::complete(&s, vec![vec![0.1, 0.2, 0.3], vec![0.9, -0.4]]);
        let o = MultiVector::complete(&s, vec![vec![-0.5, 0.0, 1.0], vec![0.2, 0.7]]);
        let w = Weights::normalized(&[2.0, 0.5]);
        let fused = q.fused_distance(&o, &w, Metric::L2);
        let mut qf = q.concat(&s);
        let mut of = o.concat(&s);
        w.scale_concat(&s, &mut qf);
        w.scale_concat(&s, &mut of);
        let flat = Metric::L2.distance(&qf, &of);
        assert!((fused - flat).abs() < 1e-5, "fused={fused} flat={flat}");
    }

    #[test]
    fn serde_round_trip() {
        let s = schema();
        let mv = MultiVector::partial(&s, vec![Some(vec![1.0; 4]), None]);
        let j = serde_json::to_string(&mv).unwrap();
        let back: MultiVector = serde_json::from_str(&j).unwrap();
        assert_eq!(mv, back);
        let js = serde_json::to_string(&s).unwrap();
        let back_s: Schema = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back_s);
    }
}
