//! Incremental scanning: fused weighted distance with early abandonment.
//!
//! The paper's Query Execution component notes that during graph traversal
//! "distances are calculated via incremental scanning, enhancing efficiency
//! by circumventing unnecessary calculations". Concretely: while walking the
//! navigation graph we always hold a *pruning bound* — the worst distance
//! still admitted to the beam (see [`crate::topk::TopK::bound`]). A fused
//! weighted L2 distance is a sum of non-negative terms, so its prefix
//! partial sums are monotone; the moment a partial sum crosses the bound the
//! candidate provably cannot enter the beam and the remaining terms need not
//! be computed.
//!
//! [`FusedScanner`] implements this for a fixed query. It operates directly
//! on the *concatenated* object representation (how the unified navigation
//! graph stores multi-vectors; see [`crate::multivec::MultiVector::concat`])
//! and skips modality blocks the query is missing. All work is counted in
//! [`ScanStats`], which experiment E8 reads to report the fraction of
//! scalar operations saved by pruning.

use crate::multivec::{MultiVector, Schema, Weights};
use crate::Metric;

/// Granularity (in scalar terms) at which the running partial sum is
/// compared against the pruning bound. Small enough to abandon early, large
/// enough that the comparison doesn't dominate the arithmetic.
const CHUNK: usize = 32;

/// Counters describing the work a [`FusedScanner`] has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Distance evaluations that ran to completion.
    pub full_evals: u64,
    /// Distance evaluations abandoned before completion.
    pub abandoned: u64,
    /// Scalar terms actually computed.
    pub terms: u64,
    /// Scalar terms skipped thanks to early abandonment.
    pub terms_skipped: u64,
}

impl ScanStats {
    /// Fraction of scalar terms avoided, in `[0, 1]`.
    pub fn savings(&self) -> f64 {
        let total = self.terms + self.terms_skipped;
        if total == 0 {
            0.0
        } else {
            self.terms_skipped as f64 / total as f64
        }
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.full_evals += other.full_evals;
        self.abandoned += other.abandoned;
        self.terms += other.terms;
        self.terms_skipped += other.terms_skipped;
    }
}

/// A query block: one present query modality, pre-located inside the
/// concatenated layout.
struct Block {
    offset: usize,
    weight: f32,
    query: Vec<f32>,
}

/// Fused weighted distance evaluator for one query, with optional early
/// abandonment.
///
/// Construct once per query, then call [`FusedScanner::distance`] for every
/// candidate the graph search touches. Missing query modalities contribute
/// nothing (their blocks are skipped entirely), which is how text-only
/// queries search a text+image knowledge base.
///
/// ```
/// use mqa_vector::{FusedScanner, Metric, MultiVector, Schema, Weights};
///
/// let schema = Schema::text_image(4, 4);
/// let query = MultiVector::complete(&schema, vec![vec![0.0; 4], vec![0.0; 4]]);
/// let weights = Weights::normalized(&[1.5, 0.5]);
/// let mut scanner = FusedScanner::new(&schema, &query, &weights, Metric::L2);
///
/// let object = vec![1.0f32; 8]; // concatenated text+image blocks
/// let d = scanner.exact(&object);
/// assert!((d - (1.5 * 4.0 + 0.5 * 4.0)).abs() < 1e-5);
///
/// // With a tight bound the evaluation abandons early — the candidate is
/// // provably outside the beam.
/// assert!(scanner.distance(&object, 1.0).is_none());
/// assert!(scanner.stats().terms_skipped > 0);
/// ```
pub struct FusedScanner {
    blocks: Vec<Block>,
    metric: Metric,
    prunable: bool,
    total_dim: usize,
    stats: ScanStats,
}

impl FusedScanner {
    /// Builds a scanner for `query` under `weights` and `metric`.
    ///
    /// Early abandonment activates only when the metric supports it
    /// ([`Metric::supports_early_abandon`]); for other metrics
    /// [`FusedScanner::distance`] silently computes the full distance.
    pub fn new(schema: &Schema, query: &MultiVector, weights: &Weights, metric: Metric) -> Self {
        assert_eq!(query.arity(), schema.arity(), "query arity mismatch");
        assert_eq!(weights.arity(), schema.arity(), "weights arity mismatch");
        // ALLOC: per-scanner block list and query copy, built once per query.
        let mut blocks = Vec::new();
        for (m, q) in query.present() {
            let w = weights.get(m);
            if w > 0.0 {
                blocks.push(Block {
                    offset: schema.offset(m),
                    weight: w,
                    // ALLOC: the scanner's query copy, one per query.
                    query: q.to_vec(),
                });
            }
        }
        assert!(
            !blocks.is_empty(),
            "query has no scorable modality (all missing or zero-weighted)"
        );
        // Scan the heaviest-weighted modality first: its terms grow the
        // partial sum fastest, so the bound is crossed (and the rest of
        // the evaluation skipped) as early as possible.
        blocks.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        Self {
            blocks,
            metric,
            prunable: metric.supports_early_abandon(),
            total_dim: schema.total_dim(),
            stats: ScanStats::default(),
        }
    }

    /// Total scorable terms per evaluation (for stats bookkeeping).
    fn eval_terms(&self) -> u64 {
        self.blocks.iter().map(|b| b.query.len() as u64).sum()
    }

    /// Fused distance between the query and an object stored as a flat
    /// concatenated vector, abandoning early against `bound`.
    ///
    /// Returns `None` if the evaluation was abandoned — in that case the
    /// true distance is *provably* `>= bound` and the candidate can be
    /// discarded. With `bound = f32::INFINITY` the result is always `Some`.
    ///
    /// # Panics
    /// Panics in debug builds if `flat` does not match the schema's total
    /// dimensionality.
    pub fn distance(&mut self, flat: &[f32], bound: f32) -> Option<f32> {
        debug_assert_eq!(flat.len(), self.total_dim, "object vector length mismatch");
        if !self.prunable || bound.is_infinite() {
            return Some(self.full(flat));
        }
        let mut total = 0.0f32;
        let mut done: u64 = 0;
        for b in &self.blocks {
            // INVARIANT: block offsets/lengths partition 0..total_dim, and
            // flat.len() == total_dim is the scanner's documented contract.
            let obj = &flat[b.offset..b.offset + b.query.len()];
            let mut i = 0;
            while i < b.query.len() {
                let end = (i + CHUNK).min(b.query.len());
                // Reuse the unrolled kernel so the pruned path pays no
                // per-term penalty over a full evaluation.
                // INVARIANT: i <= end <= query.len() == obj.len().
                let part = crate::ops::l2_sq(&b.query[i..end], &obj[i..end]);
                total += b.weight * part;
                done += (end - i) as u64;
                i = end;
                if total >= bound {
                    self.stats.abandoned += 1;
                    self.stats.terms += done;
                    self.stats.terms_skipped += self.eval_terms() - done;
                    return None;
                }
            }
        }
        self.stats.full_evals += 1;
        self.stats.terms += done;
        Some(total)
    }

    /// Fused distance without pruning (always complete).
    pub fn exact(&mut self, flat: &[f32]) -> f32 {
        self.full(flat)
    }

    fn full(&mut self, flat: &[f32]) -> f32 {
        let mut total = 0.0f32;
        for b in &self.blocks {
            // INVARIANT: block offsets/lengths partition 0..total_dim (see
            // `distance`).
            let obj = &flat[b.offset..b.offset + b.query.len()];
            total += b.weight * self.metric.distance(&b.query, obj);
        }
        self.stats.full_evals += 1;
        self.stats.terms += self.eval_terms();
        total
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = ScanStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multivec::{MultiVector, Schema, Weights};
    use mqa_rng::StdRng;

    fn setup(seed: u64) -> (Schema, MultiVector, Weights, Vec<Vec<f32>>) {
        let schema = Schema::text_image(24, 40);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut randv =
            |d: usize| -> Vec<f32> { (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect() };
        let q = MultiVector::complete(&schema, vec![randv(24), randv(40)]);
        let w = Weights::normalized(&[1.7, 0.3]);
        let objs: Vec<Vec<f32>> = (0..50)
            .map(|_| {
                let mv = MultiVector::complete(&schema, vec![randv(24), randv(40)]);
                mv.concat(&schema)
            })
            .collect();
        (schema, q, w, objs)
    }

    #[test]
    fn exact_matches_reference_fused_distance() {
        let (schema, q, w, objs) = setup(1);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        for flat in &objs {
            let mv = MultiVector::from_concat(&schema, flat);
            let reference = q.fused_distance(&mv, &w, Metric::L2);
            let got = scanner.exact(flat);
            assert!((reference - got).abs() < 1e-4, "ref={reference} got={got}");
        }
    }

    #[test]
    fn abandoned_implies_distance_at_least_bound() {
        let (schema, q, w, objs) = setup(2);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        for flat in &objs {
            let exact = {
                let mv = MultiVector::from_concat(&schema, flat);
                q.fused_distance(&mv, &w, Metric::L2)
            };
            for bound in [0.5, 5.0, 20.0] {
                match scanner.distance(flat, bound) {
                    Some(d) => {
                        assert!((d - exact).abs() < 1e-3);
                        assert!(d < bound || (d - bound).abs() < 1e-3);
                    }
                    None => assert!(
                        exact >= bound - 1e-3,
                        "abandoned but exact={exact} < bound={bound}"
                    ),
                }
            }
        }
    }

    #[test]
    fn infinite_bound_never_abandons() {
        let (schema, q, w, objs) = setup(3);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        for flat in &objs {
            assert!(scanner.distance(flat, f32::INFINITY).is_some());
        }
        assert_eq!(scanner.stats().abandoned, 0);
    }

    #[test]
    fn missing_modality_blocks_are_skipped() {
        let schema = Schema::text_image(8, 8);
        let q = MultiVector::partial(&schema, vec![Some(vec![0.0; 8]), None]);
        let w = Weights::uniform(2);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        // object: text part zero (distance 0), image part huge (ignored)
        let mut flat = vec![0.0f32; 16];
        for x in &mut flat[8..] {
            *x = 100.0;
        }
        assert_eq!(scanner.exact(&flat), 0.0);
    }

    #[test]
    fn zero_weight_modality_excluded() {
        let schema = Schema::text_image(4, 4);
        let q = MultiVector::complete(&schema, vec![vec![0.0; 4], vec![0.0; 4]]);
        let w = Weights::normalized(&[1.0, 0.0]);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        let mut flat = vec![0.0f32; 8];
        flat[5] = 50.0; // image-only difference must not count
        assert_eq!(scanner.exact(&flat), 0.0);
    }

    #[test]
    #[should_panic(expected = "no scorable modality")]
    fn query_with_only_zero_weighted_modality_panics() {
        let schema = Schema::text_image(4, 4);
        let q = MultiVector::partial(&schema, vec![Some(vec![0.0; 4]), None]);
        let w = Weights::normalized(&[0.0, 1.0]);
        FusedScanner::new(&schema, &q, &w, Metric::L2);
    }

    #[test]
    fn tight_bound_saves_terms() {
        let (schema, q, w, objs) = setup(4);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        for flat in &objs {
            let _ = scanner.distance(flat, 1e-3);
        }
        let s = scanner.stats();
        assert!(s.abandoned > 0, "expected abandonments with a tiny bound");
        assert!(s.savings() > 0.0);
    }

    #[test]
    fn non_l2_metric_never_abandons() {
        let (schema, q, w, objs) = setup(5);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::Cosine);
        for flat in &objs {
            assert!(scanner.distance(flat, 0.0).is_some());
        }
        assert_eq!(scanner.stats().abandoned, 0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = ScanStats {
            full_evals: 1,
            abandoned: 2,
            terms: 3,
            terms_skipped: 4,
        };
        let mut b = ScanStats {
            full_evals: 10,
            abandoned: 20,
            terms: 30,
            terms_skipped: 40,
        };
        b.merge(&a);
        assert_eq!(
            b,
            ScanStats {
                full_evals: 11,
                abandoned: 22,
                terms: 33,
                terms_skipped: 44
            }
        );
    }

    #[test]
    fn savings_zero_when_untouched() {
        assert_eq!(ScanStats::default().savings(), 0.0);
    }

    #[test]
    fn random_bounds_agree_with_exact_decision() {
        // Property-style check with a seeded RNG: for random bounds, the
        // scanner's keep/abandon decision must match the exact comparison.
        let (schema, q, w, objs) = setup(6);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        let mut rng = StdRng::seed_from_u64(7);
        for flat in &objs {
            let exact = {
                let mv = MultiVector::from_concat(&schema, flat);
                q.fused_distance(&mv, &w, Metric::L2)
            };
            let bound: f32 = rng.gen_range(0.0..40.0);
            match scanner.distance(flat, bound) {
                Some(d) => assert!((d - exact).abs() < 1e-3),
                None => assert!(exact >= bound - 1e-3),
            }
        }
    }
}
