//! # mqa-vector
//!
//! Vector substrate for the MQA system: dense `f32` vectors, distance
//! metrics, multi-vector (multi-modal) objects, weighted fused distances,
//! and the *incremental scanning* (early-abandon) kernel that the paper's
//! Query Execution component uses to skip unnecessary distance computation.
//!
//! Everything above this crate — graph indexes, retrieval frameworks, the
//! coordinator — manipulates vectors exclusively through the types defined
//! here, which keeps the numeric kernels in one place and makes the pruning
//! counters (used by experiment E8) globally consistent.
//!
//! ## Layout
//!
//! * [`metric`] — distance metrics ([`Metric::L2`], [`Metric::InnerProduct`],
//!   [`Metric::Cosine`]) over `&[f32]` slices.
//! * [`ops`] — elementwise vector helpers (norms, axpy, normalization).
//! * [`multivec`] — [`MultiVector`] objects, the modality [`Schema`], and
//!   per-modality [`Weights`].
//! * [`scan`] — [`FusedScanner`]: fused weighted distance with early
//!   abandonment and computation counters.
//! * [`store`] — contiguous [`VectorStore`] / [`MultiVectorStore`].
//! * [`topk`] — bounded top-k collector and the [`Candidate`] ordering used
//!   by every search routine in the workspace.
//! * [`cast`] — checked narrowing conversions (the one file exempt from
//!   the `no-lossy-cast` serving-path lint).

pub mod cast;
pub mod metric;
pub mod multivec;
pub mod ops;
pub mod pq;
pub mod scan;
pub mod store;
pub mod topk;

pub use metric::Metric;
pub use multivec::{Modality, ModalityKind, MultiVector, Schema, Weights};
pub use pq::{PqCodebook, PqCodes, PqParams, PqTable};
pub use scan::{FusedScanner, ScanStats};
pub use store::{MultiVectorStore, StoreViolation, VectorStore};
pub use topk::{Candidate, MinCandidate, TopK};

/// Identifier of an object inside a store / knowledge base / graph index.
///
/// Stores hand out dense ids in insertion order, which lets indexes use
/// `Vec`-backed adjacency instead of hash maps.
pub type VecId = u32;

/// Dimensionality of a vector space.
pub type Dim = usize;
