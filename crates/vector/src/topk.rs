//! Bounded top-k collection and the candidate ordering shared by all search
//! routines in the workspace.
//!
//! Graph search needs two orderings over `(id, distance)` pairs: a min-heap
//! of candidates to expand and a bounded max-heap of current results. Both
//! are built from [`Candidate`], whose `Ord` implementation is *total*
//! (via [`f32::total_cmp`]) so NaN distances cannot poison heap invariants.

use crate::VecId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A search candidate: an object id plus its distance to the query.
///
/// Ordering is by distance (then id, for determinism); `Candidate` is a
/// *max*-first element in `BinaryHeap`, i.e. `heap.pop()` yields the
/// farthest candidate — exactly what a bounded result set needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Object identifier.
    pub id: VecId,
    /// Distance to the query (lower is better).
    pub dist: f32,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(id: VecId, dist: f32) -> Self {
        Self { id, dist }
    }
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-first wrapper: `BinaryHeap<MinCandidate>` pops the *closest*
/// candidate, as needed for the expansion frontier of greedy/beam search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinCandidate(pub Candidate);

impl Ord for MinCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for MinCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collector keeping the `k` nearest candidates seen so far.
///
/// Backed by a max-heap so insertion is `O(log k)` and the current worst
/// retained distance — the *pruning bound* used by incremental scanning —
/// is available in `O(1)` via [`TopK::bound`].
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Candidate>,
}

impl TopK {
    /// Creates a collector for the `k` nearest candidates.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k requires k >= 1");
        Self {
            k,
            // ALLOC: one beam buffer per collector; reusing callers hold a
            // TopK and re-arm it with `reset` instead of constructing.
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Re-arms the collector for a fresh query with bound `k`, keeping the
    /// heap's buffer. A warmed collector (one whose capacity has already
    /// reached `k + 1`) is re-armed without touching the heap.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "top-k requires k >= 1");
        self.k = k;
        self.heap.clear();
        // ALLOC: capacity grows to the largest beam seen, then sticks
        // (reserve is a no-op once warmed).
        self.heap.reserve(k + 1);
    }

    /// Drains the retained candidates into `out`, sorted by ascending
    /// distance (ties broken by id), clearing `out` first. The heap's
    /// buffer is kept, so a warmed `(collector, out)` pair round-trips a
    /// query with zero allocations — this is the steady-state serving
    /// path's result-materialization primitive.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Candidate>) {
        out.clear();
        // ALLOC: out grows to the largest result set seen, then sticks
        // (reserve is a no-op once warmed).
        out.reserve(self.heap.len());
        // Max-heap pops worst-first; reverse yields ascending distance.
        while let Some(c) = self.heap.pop() {
            out.push(c);
        }
        out.reverse();
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the collector holds `k` candidates.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Current pruning bound: the distance of the worst retained candidate
    /// if full, otherwise `f32::INFINITY` (everything is accepted).
    #[inline]
    pub fn bound(&self) -> f32 {
        if self.is_full() {
            self.heap.peek().map(|c| c.dist).unwrap_or(f32::INFINITY)
        } else {
            f32::INFINITY
        }
    }

    /// Offers a candidate; returns `true` if it was retained.
    pub fn offer(&mut self, c: Candidate) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(c);
            return true;
        }
        match self.heap.peek() {
            Some(top) if c < *top => {
                self.heap.pop();
                self.heap.push(c);
                true
            }
            _ => false,
        }
    }

    /// Consumes the collector, returning candidates sorted by ascending
    /// distance (ties broken by id).
    pub fn into_sorted(self) -> Vec<Candidate> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_ordering_by_distance_then_id() {
        let a = Candidate::new(1, 0.5);
        let b = Candidate::new(2, 0.5);
        let c = Candidate::new(0, 0.7);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn nan_distance_does_not_panic() {
        let a = Candidate::new(1, f32::NAN);
        let b = Candidate::new(2, 1.0);
        // total_cmp orders NaN above all normal floats
        assert!(a > b);
    }

    #[test]
    fn topk_keeps_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            t.offer(Candidate::new(id, d));
        }
        let out = t.into_sorted();
        let ids: Vec<_> = out.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f32::INFINITY);
        t.offer(Candidate::new(0, 1.0));
        assert_eq!(t.bound(), f32::INFINITY);
        t.offer(Candidate::new(1, 2.0));
        assert_eq!(t.bound(), 2.0);
        t.offer(Candidate::new(2, 0.5));
        assert_eq!(t.bound(), 1.0);
    }

    #[test]
    fn offer_rejects_worse_when_full() {
        let mut t = TopK::new(1);
        assert!(t.offer(Candidate::new(0, 1.0)));
        assert!(!t.offer(Candidate::new(1, 2.0)));
        assert!(t.offer(Candidate::new(2, 0.1)));
        assert_eq!(t.into_sorted()[0].id, 2);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    #[test]
    fn min_candidate_pops_closest() {
        let mut h = BinaryHeap::new();
        h.push(MinCandidate(Candidate::new(0, 3.0)));
        h.push(MinCandidate(Candidate::new(1, 1.0)));
        h.push(MinCandidate(Candidate::new(2, 2.0)));
        assert_eq!(h.pop().unwrap().0.id, 1);
        assert_eq!(h.pop().unwrap().0.id, 2);
    }
}
