//! # mqa-kb
//!
//! The multi-modal knowledge base of the MQA system (the paper's *Data
//! Preprocessing* component): objects with one content slot per modality,
//! unique dense ids, ingestion, JSON import/export — plus the synthetic
//! corpus generators and ground-truth machinery the experiment harness runs
//! on.
//!
//! ## Substitution note (see DESIGN.md §2)
//!
//! The paper demonstrates on real image+text corpora (fashion products,
//! weather photographs, movies). Those datasets are proprietary/unavailable
//! here, so [`datasets`] provides *latent-concept generators*: every object
//! is sampled from a hidden concept (e.g. "floral long-sleeved top"), its
//! caption built from the concept's keywords (with configurable word noise)
//! and its image descriptor placed near the concept's anchor in raw feature
//! space (with configurable geometric noise and per-concept *style*
//! sub-clusters). Relevance ground truth — which the real datasets provide
//! via human labels — is the hidden concept/style assignment.
//!
//! The generators expose the knobs that drive the paper's comparisons:
//! per-modality informativeness (how noisy captions vs images are) is
//! exactly what vector weight learning must discover, and style sub-clusters
//! are what the second dialogue round ("more like *this* one") must resolve.

pub mod base;
pub mod datasets;
pub mod groundtruth;
pub mod object;
pub mod queries;
pub mod schema;
pub mod stats;

pub use base::{IngestError, KnowledgeBase};
pub use datasets::{ConceptInfo, DatasetDomain, DatasetInfo, DatasetSpec};
pub use groundtruth::{recall_at_k, round2_recall_at_k, GroundTruth};
pub use object::{ObjectId, ObjectRecord};
pub use queries::{QueryCase, QueryWorkload, WorkloadSpec};
pub use schema::{ContentSchema, FieldSpec};
pub use stats::CorpusStats;
