//! Corpus statistics for the Data Preprocessing milestone.
//!
//! The status panel's "relevant details" for preprocessing go beyond raw
//! counts: modality coverage, caption length distribution, and label
//! balance all matter when judging whether a knowledge base is ready for
//! indexing (heavily skewed label balance starves weight-learning triplet
//! sampling; low modality coverage weakens fused retrieval).

use crate::base::KnowledgeBase;
use mqa_encoders::RawContent;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate statistics of one knowledge base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Objects in the base.
    pub objects: usize,
    /// Schema modality count.
    pub modalities: usize,
    /// Per-modality presence counts (`present[m]` = objects carrying
    /// modality `m`).
    pub present: Vec<usize>,
    /// Mean caption length in tokens, over all text/audio fields.
    pub mean_caption_tokens: f64,
    /// Min/max caption token lengths.
    pub caption_token_range: (usize, usize),
    /// Number of distinct concept labels (0 for unlabelled corpora).
    pub concepts: usize,
    /// Size of the smallest and largest concept (0, 0) when unlabelled.
    pub concept_balance: (usize, usize),
}

impl CorpusStats {
    /// Computes the statistics.
    ///
    /// # Panics
    /// Panics on an empty base (preprocessing rejects those earlier).
    pub fn compute(kb: &KnowledgeBase) -> Self {
        assert!(!kb.is_empty(), "statistics of an empty knowledge base");
        let modalities = kb.schema().arity();
        let mut present = vec![0usize; modalities];
        let mut caption_tokens = Vec::new();
        let mut concept_counts: HashMap<u32, usize> = HashMap::new();
        for (_, r) in kb.iter() {
            for (m, slot) in present.iter_mut().enumerate() {
                if r.content(m).is_some() {
                    *slot += 1;
                }
            }
            for slot in &r.contents {
                if let Some(RawContent::Text(t)) | Some(RawContent::Audio(t)) = slot {
                    caption_tokens.push(t.split_whitespace().count());
                }
            }
            if let Some(c) = r.concept {
                *concept_counts.entry(c).or_insert(0) += 1;
            }
        }
        let (mean, range) = if caption_tokens.is_empty() {
            (0.0, (0, 0))
        } else {
            let sum: usize = caption_tokens.iter().sum();
            (
                sum as f64 / caption_tokens.len() as f64,
                (
                    caption_tokens.iter().copied().min().unwrap_or(0),
                    caption_tokens.iter().copied().max().unwrap_or(0),
                ),
            )
        };
        let balance = if concept_counts.is_empty() {
            (0, 0)
        } else {
            (
                concept_counts.values().copied().min().unwrap_or(0),
                concept_counts.values().copied().max().unwrap_or(0),
            )
        };
        Self {
            objects: kb.len(),
            modalities,
            present,
            mean_caption_tokens: mean,
            caption_token_range: range,
            concepts: concept_counts.len(),
            concept_balance: balance,
        }
    }

    /// One-line panel summary.
    pub fn summary(&self) -> String {
        format!(
            "{} objects · {} modalities (coverage {}) · captions {:.1} tokens (min {}, max {}) · {} concepts (sizes {}–{})",
            self.objects,
            self.modalities,
            self.present
                .iter()
                .map(|p| format!("{:.0}%", 100.0 * *p as f64 / self.objects as f64))
                .collect::<Vec<_>>()
                .join("/"),
            self.mean_caption_tokens,
            self.caption_token_range.0,
            self.caption_token_range.1,
            self.concepts,
            self.concept_balance.0,
            self.concept_balance.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::object::ObjectRecord;
    use crate::schema::ContentSchema;

    #[test]
    fn stats_of_generated_corpus() {
        let kb = DatasetSpec::weather()
            .objects(60)
            .concepts(6)
            .seed(1)
            .generate();
        let s = CorpusStats::compute(&kb);
        assert_eq!(s.objects, 60);
        assert_eq!(s.modalities, 2);
        assert_eq!(s.present, vec![60, 60]);
        assert_eq!(s.concepts, 6);
        assert_eq!(s.concept_balance, (10, 10)); // round-robin assignment
        assert!(s.mean_caption_tokens >= 3.0);
        assert!(s.caption_token_range.0 <= s.caption_token_range.1);
    }

    #[test]
    fn stats_of_partial_unlabelled_corpus() {
        let mut kb = KnowledgeBase::new("user", ContentSchema::caption_image(4));
        kb.ingest(ObjectRecord::new(
            "a",
            vec![Some(RawContent::text("two words")), None],
        ))
        .unwrap();
        kb.ingest(ObjectRecord::new(
            "b",
            vec![
                Some(RawContent::text("one two three four")),
                Some(RawContent::Image(mqa_encoders::ImageData::new(vec![
                    0.0;
                    4
                ]))),
            ],
        ))
        .unwrap();
        let s = CorpusStats::compute(&kb);
        assert_eq!(s.present, vec![2, 1]);
        assert_eq!(s.concepts, 0);
        assert_eq!(s.concept_balance, (0, 0));
        assert_eq!(s.caption_token_range, (2, 4));
        assert!((s.mean_caption_tokens - 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_is_informative() {
        let kb = DatasetSpec::fashion()
            .objects(20)
            .concepts(4)
            .seed(2)
            .generate();
        let text = CorpusStats::compute(&kb).summary();
        assert!(text.contains("20 objects"));
        assert!(text.contains("4 concepts"));
        assert!(text.contains("100%/100%"));
    }
}
