//! Content schema: which modalities a knowledge base's objects carry.
//!
//! This is the *raw-content* counterpart of `mqa_vector::Schema` (which
//! describes embedding spaces). Embedding dimensionalities are not known
//! until the Vector Representation component picks encoders, so the two
//! schemas are separate: a [`ContentSchema`] plus per-field encoder choices
//! determine the vector schema.

use mqa_vector::ModalityKind;
use serde::{Deserialize, Serialize};

/// One modality field of a knowledge base (e.g. `"synopsis"`: text).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name shown in panels (e.g. `"caption"`, `"poster"`).
    pub name: String,
    /// Modality kind of the field.
    pub kind: ModalityKind,
}

/// Ordered modality fields shared by every object of a knowledge base.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentSchema {
    fields: Vec<FieldSpec>,
    /// Raw descriptor length of image-kind fields (all image fields of one
    /// knowledge base share a descriptor format).
    raw_image_dim: usize,
}

impl ContentSchema {
    /// Builds a schema.
    ///
    /// # Panics
    /// Panics if `fields` is empty, or if an image field is declared with
    /// `raw_image_dim == 0`.
    pub fn new(fields: Vec<FieldSpec>, raw_image_dim: usize) -> Self {
        assert!(
            !fields.is_empty(),
            "content schema requires at least one field"
        );
        let has_image = fields
            .iter()
            .any(|f| matches!(f.kind, ModalityKind::Image | ModalityKind::Video));
        assert!(
            !has_image || raw_image_dim > 0,
            "image fields require a non-zero raw descriptor dimension"
        );
        Self {
            fields,
            raw_image_dim,
        }
    }

    /// The classic caption+image schema used by the paper's scenarios.
    pub fn caption_image(raw_image_dim: usize) -> Self {
        Self::new(
            vec![
                FieldSpec {
                    name: "caption".into(),
                    kind: ModalityKind::Text,
                },
                FieldSpec {
                    name: "image".into(),
                    kind: ModalityKind::Image,
                },
            ],
            raw_image_dim,
        )
    }

    /// Number of modality fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields in schema order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Raw image descriptor length.
    pub fn raw_image_dim(&self) -> usize {
        self.raw_image_dim
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Index of the first field of `kind`, if any.
    pub fn first_of_kind(&self, kind: ModalityKind) -> Option<usize> {
        self.fields.iter().position(|f| f.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caption_image_layout() {
        let s = ContentSchema::caption_image(64);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("caption"), Some(0));
        assert_eq!(s.first_of_kind(ModalityKind::Image), Some(1));
        assert_eq!(s.raw_image_dim(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_fields_panic() {
        ContentSchema::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "raw descriptor")]
    fn image_without_raw_dim_panics() {
        ContentSchema::new(
            vec![FieldSpec {
                name: "img".into(),
                kind: ModalityKind::Image,
            }],
            0,
        );
    }

    #[test]
    fn text_only_schema_allows_zero_raw_dim() {
        let s = ContentSchema::new(
            vec![FieldSpec {
                name: "body".into(),
                kind: ModalityKind::Text,
            }],
            0,
        );
        assert_eq!(s.arity(), 1);
        assert_eq!(s.first_of_kind(ModalityKind::Image), None);
    }

    #[test]
    fn serde_round_trip() {
        let s = ContentSchema::caption_image(16);
        let j = serde_json::to_string(&s).unwrap();
        let back: ContentSchema = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
