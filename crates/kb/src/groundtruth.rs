//! Relevance ground truth and recall metrics for generated corpora.

use crate::base::KnowledgeBase;
use crate::object::ObjectId;
use std::collections::HashMap;

/// Inverted ground-truth maps: concept → members, (concept, style) →
/// members. Built once per corpus and shared by all experiments.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    by_concept: HashMap<u32, Vec<ObjectId>>,
    by_style: HashMap<(u32, u32), Vec<ObjectId>>,
}

impl GroundTruth {
    /// Builds the maps from a labelled corpus.
    ///
    /// # Panics
    /// Panics if the corpus has no labelled objects (user-ingested bases
    /// have no ground truth to evaluate against).
    pub fn build(kb: &KnowledgeBase) -> Self {
        let mut gt = GroundTruth::default();
        for (id, r) in kb.iter() {
            if let Some(c) = r.concept {
                gt.by_concept.entry(c).or_default().push(id);
                if let Some(s) = r.style {
                    gt.by_style.entry((c, s)).or_default().push(id);
                }
            }
        }
        assert!(
            !gt.by_concept.is_empty(),
            "corpus carries no concept labels; ground truth unavailable"
        );
        gt
    }

    /// Objects belonging to `concept`.
    pub fn members(&self, concept: u32) -> &[ObjectId] {
        self.by_concept
            .get(&concept)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Objects belonging to `(concept, style)`.
    pub fn style_members(&self, concept: u32, style: u32) -> &[ObjectId] {
        self.by_style
            .get(&(concept, style))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `id` belongs to `concept`.
    pub fn is_relevant(&self, id: ObjectId, concept: u32) -> bool {
        self.members(concept).contains(&id)
    }

    /// Whether `id` belongs to `(concept, style)`.
    pub fn is_style_relevant(&self, id: ObjectId, concept: u32, style: u32) -> bool {
        self.style_members(concept, style).contains(&id)
    }

    /// Number of distinct concepts observed.
    pub fn concept_count(&self) -> usize {
        self.by_concept.len()
    }
}

/// Round-1 metric: fraction of the first `k` returned ids that belong to
/// the target concept, normalized by the achievable maximum
/// (`min(k, |members|)`). Returns a value in `[0, 1]`.
pub fn recall_at_k(gt: &GroundTruth, returned: &[ObjectId], concept: u32, k: usize) -> f64 {
    let denom = k.min(gt.members(concept).len());
    if denom == 0 {
        return 0.0;
    }
    let hits = returned
        .iter()
        .take(k)
        .filter(|&&id| gt.is_relevant(id, concept))
        .count();
    hits as f64 / denom as f64
}

/// Round-2 metric: like [`recall_at_k`] but against the (concept, style)
/// sub-cluster the user's selection pinned down, excluding the selected
/// object itself (returning the clicked image back is not a useful answer).
pub fn round2_recall_at_k(
    gt: &GroundTruth,
    returned: &[ObjectId],
    selected: ObjectId,
    concept: u32,
    style: u32,
    k: usize,
) -> f64 {
    let pool = gt
        .style_members(concept, style)
        .iter()
        .filter(|&&m| m != selected)
        .count();
    let denom = k.min(pool);
    if denom == 0 {
        return 0.0;
    }
    let hits = returned
        .iter()
        .take(k)
        .filter(|&&id| id != selected && gt.is_style_relevant(id, concept, style))
        .count();
    hits as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn corpus() -> (KnowledgeBase, GroundTruth) {
        let kb = DatasetSpec::weather()
            .objects(60)
            .concepts(6)
            .styles(2)
            .seed(1)
            .generate();
        let gt = GroundTruth::build(&kb);
        (kb, gt)
    }

    #[test]
    fn members_partition_the_corpus() {
        let (kb, gt) = corpus();
        let total: usize = (0..6).map(|c| gt.members(c).len()).sum();
        assert_eq!(total, kb.len());
        assert_eq!(gt.concept_count(), 6);
    }

    #[test]
    fn style_members_refine_concept_members() {
        let (_, gt) = corpus();
        for c in 0..6u32 {
            let style_total: usize = (0..2).map(|s| gt.style_members(c, s).len()).sum();
            assert_eq!(style_total, gt.members(c).len());
            for s in 0..2u32 {
                for &id in gt.style_members(c, s) {
                    assert!(gt.is_relevant(id, c));
                }
            }
        }
    }

    #[test]
    fn recall_perfect_and_zero() {
        let (_, gt) = corpus();
        let members = gt.members(0).to_vec();
        assert_eq!(recall_at_k(&gt, &members, 0, 5), 1.0);
        let foreign = gt.members(1).to_vec();
        assert_eq!(recall_at_k(&gt, &foreign, 0, 5), 0.0);
    }

    #[test]
    fn recall_counts_only_first_k() {
        let (_, gt) = corpus();
        let mut returned = gt.members(1).to_vec(); // irrelevant to concept 0
        returned.extend_from_slice(gt.members(0)); // relevant, but after k
        assert_eq!(recall_at_k(&gt, &returned[..5], 0, 5), 0.0);
    }

    #[test]
    fn recall_normalizes_by_small_pools() {
        let (_, gt) = corpus();
        // pool of 10 members, k=20 -> denominator is 10
        let members = gt.members(2).to_vec();
        assert_eq!(members.len(), 10);
        assert_eq!(recall_at_k(&gt, &members, 2, 20), 1.0);
    }

    #[test]
    fn round2_excludes_selected() {
        let (_, gt) = corpus();
        let (c, s) = (0u32, 0u32);
        let members = gt.style_members(c, s).to_vec();
        assert!(members.len() >= 2, "need at least two style members");
        let selected = members[0];
        // Returning only the selected object scores zero.
        assert_eq!(round2_recall_at_k(&gt, &[selected], selected, c, s, 1), 0.0);
        // Returning a different style member scores.
        assert_eq!(
            round2_recall_at_k(&gt, &[members[1]], selected, c, s, 1),
            1.0
        );
    }

    #[test]
    fn unknown_concept_is_empty() {
        let (_, gt) = corpus();
        assert!(gt.members(999).is_empty());
        assert_eq!(recall_at_k(&gt, &[0, 1, 2], 999, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "no concept labels")]
    fn unlabelled_corpus_panics() {
        let mut kb = KnowledgeBase::new("user", crate::ContentSchema::caption_image(4));
        kb.ingest(crate::ObjectRecord::new(
            "x",
            vec![Some(mqa_encoders::RawContent::text("hello")), None],
        ))
        .unwrap();
        GroundTruth::build(&kb);
    }
}
