//! The knowledge base: schema + object collection + ingestion.

use crate::object::{ObjectId, ObjectRecord};
use crate::schema::ContentSchema;
use mqa_encoders::RawContent;
use mqa_vector::ModalityKind;
use serde::{Deserialize, Serialize};

/// A named multi-modal object collection with a fixed content schema.
///
/// This is the paper's Data Preprocessing target: "data is stored as an
/// object collection with unique IDs for indexing". Ids are dense and equal
/// to the ids the vector stores and graph indexes use downstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBase {
    name: String,
    schema: ContentSchema,
    records: Vec<ObjectRecord>,
}

/// Ingestion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The record's content slots don't match the schema arity.
    ArityMismatch {
        /// Slots supplied.
        got: usize,
        /// Slots required by the schema.
        want: usize,
    },
    /// A content slot holds the wrong modality kind.
    KindMismatch {
        /// Field index.
        field: usize,
        /// Kind found in the record.
        got: ModalityKind,
        /// Kind the schema requires.
        want: ModalityKind,
    },
    /// An image descriptor has the wrong raw length.
    BadImageDescriptor {
        /// Field index.
        field: usize,
        /// Length found.
        got: usize,
        /// Length required.
        want: usize,
    },
    /// The record has no present modality at all.
    EmptyRecord,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::ArityMismatch { got, want } => {
                write!(f, "record has {got} content slots, schema requires {want}")
            }
            IngestError::KindMismatch { field, got, want } => write!(
                f,
                "field {field} holds {} content but the schema requires {}",
                got.name(),
                want.name()
            ),
            IngestError::BadImageDescriptor { field, got, want } => write!(
                f,
                "field {field} descriptor length {got} does not match schema raw dim {want}"
            ),
            IngestError::EmptyRecord => write!(f, "record has no present modality"),
        }
    }
}

impl std::error::Error for IngestError {}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new(name: impl Into<String>, schema: ContentSchema) -> Self {
        Self {
            name: name.into(),
            schema,
            records: Vec::new(),
        }
    }

    /// Knowledge base name (shown in the configuration panel).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content schema.
    pub fn schema(&self) -> &ContentSchema {
        &self.schema
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the base holds no objects.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Validates and ingests a record, returning its assigned id.
    ///
    /// # Errors
    /// Returns an [`IngestError`] describing the first schema violation.
    pub fn ingest(&mut self, record: ObjectRecord) -> Result<ObjectId, IngestError> {
        if record.contents.len() != self.schema.arity() {
            return Err(IngestError::ArityMismatch {
                got: record.contents.len(),
                want: self.schema.arity(),
            });
        }
        if record.present_count() == 0 {
            return Err(IngestError::EmptyRecord);
        }
        for (i, (slot, field)) in record.contents.iter().zip(self.schema.fields()).enumerate() {
            let Some(content) = slot else { continue };
            // Audio is accepted where text is expected (transcripts), and
            // image descriptors satisfy video fields (frame features) —
            // mirroring how the real system feeds transcoded content to
            // whatever encoder the field is configured with.
            let compatible = match (content.kind(), field.kind) {
                (a, b) if a == b => true,
                (ModalityKind::Audio, ModalityKind::Text) => true,
                (ModalityKind::Image, ModalityKind::Video) => true,
                _ => false,
            };
            if !compatible {
                return Err(IngestError::KindMismatch {
                    field: i,
                    got: content.kind(),
                    want: field.kind,
                });
            }
            if let RawContent::Image(img) = content {
                if img.raw_dim() != self.schema.raw_image_dim() {
                    return Err(IngestError::BadImageDescriptor {
                        field: i,
                        got: img.raw_dim(),
                        want: self.schema.raw_image_dim(),
                    });
                }
            }
        }
        let id = self.records.len() as ObjectId;
        self.records.push(record);
        Ok(id)
    }

    /// Ingests a batch of records, rolling back nothing: records before the
    /// first invalid one are kept (matching incremental frontend uploads),
    /// and the error reports the failing position.
    ///
    /// # Errors
    /// Returns `(index, error)` of the first rejected record.
    pub fn ingest_all<I>(&mut self, records: I) -> Result<Vec<ObjectId>, (usize, IngestError)>
    where
        I: IntoIterator<Item = ObjectRecord>,
    {
        let mut ids = Vec::new();
        for (i, r) in records.into_iter().enumerate() {
            match self.ingest(r) {
                Ok(id) => ids.push(id),
                Err(e) => return Err((i, e)),
            }
        }
        Ok(ids)
    }

    /// The record with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ObjectId) -> &ObjectRecord {
        &self.records[id as usize]
    }

    /// The record with id `id`, if it exists.
    pub fn try_get(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.records.get(id as usize)
    }

    /// Iterator over `(id, record)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectRecord)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (i as ObjectId, r))
    }

    /// Serializes the whole base to JSON (export path of the configuration
    /// panel).
    pub fn to_json(&self) -> String {
        // The in-tree serializer writes to a String and cannot fail.
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Loads a base from JSON produced by [`KnowledgeBase::to_json`].
    ///
    /// # Errors
    /// Returns the underlying serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_encoders::ImageData;

    fn base() -> KnowledgeBase {
        KnowledgeBase::new("test", ContentSchema::caption_image(4))
    }

    fn ok_record() -> ObjectRecord {
        ObjectRecord::new(
            "obj",
            vec![
                Some(RawContent::text("a caption")),
                Some(RawContent::Image(ImageData::new(vec![0.0; 4]))),
            ],
        )
    }

    #[test]
    fn ingest_assigns_dense_ids() {
        let mut kb = base();
        assert_eq!(kb.ingest(ok_record()).unwrap(), 0);
        assert_eq!(kb.ingest(ok_record()).unwrap(), 1);
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.get(1).title, "obj");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut kb = base();
        let r = ObjectRecord::new("x", vec![Some(RawContent::text("only text"))]);
        assert_eq!(
            kb.ingest(r).unwrap_err(),
            IngestError::ArityMismatch { got: 1, want: 2 }
        );
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut kb = base();
        let r = ObjectRecord::new(
            "x",
            vec![
                Some(RawContent::Image(ImageData::new(vec![0.0; 4]))),
                Some(RawContent::Image(ImageData::new(vec![0.0; 4]))),
            ],
        );
        assert!(matches!(
            kb.ingest(r).unwrap_err(),
            IngestError::KindMismatch { field: 0, .. }
        ));
    }

    #[test]
    fn audio_accepted_as_text() {
        let mut kb = base();
        let r = ObjectRecord::new(
            "spoken",
            vec![Some(RawContent::Audio("voice query".into())), None],
        );
        assert!(kb.ingest(r).is_ok());
    }

    #[test]
    fn bad_descriptor_rejected() {
        let mut kb = base();
        let r = ObjectRecord::new(
            "x",
            vec![
                Some(RawContent::text("caption")),
                Some(RawContent::Image(ImageData::new(vec![0.0; 7]))),
            ],
        );
        assert!(matches!(
            kb.ingest(r).unwrap_err(),
            IngestError::BadImageDescriptor {
                got: 7,
                want: 4,
                ..
            }
        ));
    }

    #[test]
    fn empty_record_rejected() {
        let mut kb = base();
        let r = ObjectRecord::new("x", vec![None, None]);
        assert_eq!(kb.ingest(r).unwrap_err(), IngestError::EmptyRecord);
    }

    #[test]
    fn partial_record_accepted() {
        let mut kb = base();
        let r = ObjectRecord::new("x", vec![Some(RawContent::text("caption only")), None]);
        assert!(kb.ingest(r).is_ok());
    }

    #[test]
    fn ingest_all_reports_failing_index() {
        let mut kb = base();
        let records = vec![
            ok_record(),
            ok_record(),
            ObjectRecord::new("bad", vec![None, None]),
            ok_record(),
        ];
        let (idx, err) = kb.ingest_all(records).unwrap_err();
        assert_eq!(idx, 2);
        assert_eq!(err, IngestError::EmptyRecord);
        // records before the failure were kept
        assert_eq!(kb.len(), 2);
    }

    #[test]
    fn ingest_all_success_returns_dense_ids() {
        let mut kb = base();
        let ids = kb
            .ingest_all(vec![ok_record(), ok_record(), ok_record()])
            .unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn json_round_trip() {
        let mut kb = base();
        kb.ingest(ok_record()).unwrap();
        let back = KnowledgeBase::from_json(&kb.to_json()).unwrap();
        assert_eq!(kb, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(KnowledgeBase::from_json("not json").is_err());
    }

    #[test]
    fn try_get_out_of_range() {
        let kb = base();
        assert!(kb.try_get(0).is_none());
    }
}
