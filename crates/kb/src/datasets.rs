//! Synthetic multi-modal corpus generators with latent-concept ground truth.
//!
//! Each generated object is sampled from a hidden **concept** (a tuple of
//! domain attribute words, e.g. *floral · cotton · top*) and, within the
//! concept, from a **style** sub-cluster (the visual variation the paper's
//! second dialogue round refines on — "similar degree of mold", "similar
//! material"). The generator controls, per modality, how much *information*
//! about the concept survives:
//!
//! * captions are built from the concept's keywords, but each keyword is
//!   replaced by an unrelated vocabulary word with probability
//!   [`DatasetSpec::caption_noise`];
//! * image descriptors sit at `anchor(concept) + offset(style)` plus
//!   gaussian noise of magnitude [`DatasetSpec::image_noise`].
//!
//! Asymmetric noise between the modalities is what makes modality
//! *weighting* matter (experiment E6), and the style sub-structure is what
//! separates MUST from the MR/JE baselines on multi-modal rounds (F5).

use crate::base::KnowledgeBase;
use crate::object::ObjectRecord;
use crate::schema::{ContentSchema, FieldSpec};
use mqa_encoders::{ImageData, RawContent};
use mqa_rng::StdRng;
use mqa_vector::ModalityKind;
use serde::{Deserialize, Serialize};

/// Draws a standard normal sample via Box–Muller.
pub(crate) fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws a random unit vector.
pub(crate) fn unit_vector(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| gaussian(rng)).collect();
    mqa_vector::ops::normalize(&mut v);
    v
}

/// The three demonstration domains of the paper's scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetDomain {
    /// Clothing products (Figure 1: "long-sleeved top … floral pattern").
    Fashion,
    /// Weather / nature photographs (Figures 4–5: "foggy clouds",
    /// "moldy cheese" food photography is folded in here as well).
    Weather,
    /// Movies: synopsis + poster + film still — a three-modality schema.
    Movies,
}

impl DatasetDomain {
    /// Attribute axes of the domain; a concept is one word from each axis.
    fn axes(self) -> &'static [&'static [&'static str]] {
        match self {
            DatasetDomain::Fashion => &[
                &[
                    "top", "coat", "dress", "skirt", "sweater", "jacket", "blouse", "cardigan",
                ],
                &[
                    "floral",
                    "striped",
                    "plain",
                    "checked",
                    "dotted",
                    "embroidered",
                ],
                &["cotton", "wool", "silk", "linen", "denim"],
            ],
            DatasetDomain::Weather => &[
                &[
                    "clouds", "fog", "storm", "sunset", "frost", "rainbow", "mist", "snowfall",
                ],
                &["foggy", "golden", "heavy", "thin", "dramatic", "soft"],
                &["mountain", "coast", "valley", "city", "forest"],
            ],
            DatasetDomain::Movies => &[
                &[
                    "thriller",
                    "comedy",
                    "drama",
                    "western",
                    "noir",
                    "musical",
                    "documentary",
                ],
                &[
                    "gritty",
                    "whimsical",
                    "melancholic",
                    "epic",
                    "quiet",
                    "frantic",
                ],
                &["seventies", "eighties", "nineties", "modern", "silent"],
            ],
        }
    }

    /// Generic filler vocabulary mixed into captions.
    fn fillers(self) -> &'static [&'static str] {
        &[
            "photo", "picture", "view", "style", "lovely", "fine", "quality", "classic", "modern",
            "simple", "detail", "scene", "shot", "piece", "look",
        ]
    }

    /// Content schema of the domain.
    pub fn schema(self, raw_image_dim: usize) -> ContentSchema {
        match self {
            DatasetDomain::Fashion | DatasetDomain::Weather => {
                ContentSchema::caption_image(raw_image_dim)
            }
            DatasetDomain::Movies => ContentSchema::new(
                vec![
                    FieldSpec {
                        name: "synopsis".into(),
                        kind: ModalityKind::Text,
                    },
                    FieldSpec {
                        name: "poster".into(),
                        kind: ModalityKind::Image,
                    },
                    FieldSpec {
                        name: "still".into(),
                        kind: ModalityKind::Video,
                    },
                ],
                raw_image_dim,
            ),
        }
    }

    /// Knowledge-base display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetDomain::Fashion => "fashion",
            DatasetDomain::Weather => "weather",
            DatasetDomain::Movies => "movies",
        }
    }
}

/// One latent concept: its keyword tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConceptInfo {
    /// Concept id (the ground-truth label stored on objects).
    pub id: u32,
    /// One keyword per attribute axis.
    pub keywords: Vec<String>,
}

impl ConceptInfo {
    /// Canonical phrase naming the concept (keyword order is axis order).
    pub fn phrase(&self) -> String {
        self.keywords.join(" ")
    }
}

/// Everything the workload generator needs beyond the knowledge base
/// itself: the hidden concept vocabulary and the generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// The concepts objects were drawn from.
    pub concepts: Vec<ConceptInfo>,
    /// Styles per concept.
    pub styles_per_concept: u32,
    /// The generating spec (for provenance in experiment reports).
    pub spec: DatasetSpec,
}

/// Declarative description of a synthetic corpus. Build with the domain
/// constructors, adjust with the chained setters, then call
/// [`DatasetSpec::generate`].
///
/// ```
/// use mqa_kb::{DatasetSpec, GroundTruth};
///
/// let (kb, info) = DatasetSpec::fashion()
///     .objects(120)
///     .concepts(12)
///     .styles(3)
///     .seed(7)
///     .generate_with_info();
/// assert_eq!(kb.len(), 120);
/// assert_eq!(info.concepts.len(), 12);
///
/// // Every object carries its hidden concept/style labels — the relevance
/// // ground truth the experiment harness scores against.
/// let gt = GroundTruth::build(&kb);
/// assert_eq!(gt.members(0).len(), 10); // 120 objects round-robin over 12 concepts
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Domain (vocabulary + schema).
    pub domain: DatasetDomain,
    /// Number of objects to generate.
    pub n_objects: usize,
    /// Number of distinct concepts (capped by the domain's combinatorics).
    pub n_concepts: usize,
    /// Style sub-clusters per concept.
    pub n_styles: u32,
    /// RNG seed; everything is deterministic in it.
    pub rng_seed: u64,
    /// Raw image descriptor length.
    pub raw_image_dim: usize,
    /// Probability that a caption keyword is replaced by a random
    /// vocabulary word (text-modality noise).
    pub caption_noise: f64,
    /// Gaussian noise magnitude added to image descriptors
    /// (image-modality noise, relative to the unit-norm concept anchor).
    pub image_noise: f32,
    /// Magnitude of the style offset relative to the concept anchor.
    pub style_spread: f32,
}

impl DatasetSpec {
    fn with_domain(domain: DatasetDomain) -> Self {
        Self {
            domain,
            n_objects: 10_000,
            n_concepts: 100,
            n_styles: 4,
            rng_seed: 0,
            raw_image_dim: 64,
            caption_noise: 0.15,
            image_noise: 0.25,
            style_spread: 0.6,
        }
    }

    /// Fashion products corpus.
    pub fn fashion() -> Self {
        Self::with_domain(DatasetDomain::Fashion)
    }

    /// Weather / nature photo corpus.
    pub fn weather() -> Self {
        Self::with_domain(DatasetDomain::Weather)
    }

    /// Movies corpus (three modalities).
    pub fn movies() -> Self {
        Self::with_domain(DatasetDomain::Movies)
    }

    /// Sets the object count.
    pub fn objects(mut self, n: usize) -> Self {
        self.n_objects = n;
        self
    }

    /// Sets the concept count.
    pub fn concepts(mut self, n: usize) -> Self {
        self.n_concepts = n;
        self
    }

    /// Sets the styles-per-concept count.
    pub fn styles(mut self, n: u32) -> Self {
        self.n_styles = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.rng_seed = s;
        self
    }

    /// Sets the raw image descriptor length.
    pub fn raw_image_dim(mut self, d: usize) -> Self {
        self.raw_image_dim = d;
        self
    }

    /// Sets the caption keyword corruption probability.
    pub fn caption_noise(mut self, p: f64) -> Self {
        self.caption_noise = p;
        self
    }

    /// Sets the image descriptor noise magnitude.
    pub fn image_noise(mut self, sigma: f32) -> Self {
        self.image_noise = sigma;
        self
    }

    /// Sets the style offset magnitude.
    pub fn style_spread(mut self, s: f32) -> Self {
        self.style_spread = s;
        self
    }

    /// Generates the knowledge base (discarding generator metadata).
    pub fn generate(&self) -> KnowledgeBase {
        self.generate_with_info().0
    }

    /// Generates the knowledge base together with the [`DatasetInfo`] the
    /// query-workload generator needs.
    ///
    /// # Panics
    /// Panics if `n_objects == 0`, `n_concepts == 0` or `n_styles == 0`.
    pub fn generate_with_info(&self) -> (KnowledgeBase, DatasetInfo) {
        assert!(self.n_objects > 0, "dataset requires at least one object");
        assert!(self.n_concepts > 0, "dataset requires at least one concept");
        assert!(
            self.n_styles > 0,
            "dataset requires at least one style per concept"
        );
        let mut rng = StdRng::seed_from_u64(self.rng_seed);
        let axes = self.domain.axes();
        let schema = self.domain.schema(self.raw_image_dim);

        // Enumerate all keyword tuples, shuffle deterministically, keep the
        // first n_concepts.
        let mut combos: Vec<Vec<&str>> = vec![vec![]];
        for axis in axes {
            combos = combos
                .into_iter()
                .flat_map(|prefix| {
                    axis.iter().map(move |w| {
                        let mut c = prefix.clone();
                        c.push(w);
                        c
                    })
                })
                .collect();
        }
        for i in (1..combos.len()).rev() {
            combos.swap(i, rng.gen_range(0..=i));
        }
        let n_concepts = self.n_concepts.min(combos.len());
        let concepts: Vec<ConceptInfo> = combos
            .into_iter()
            .take(n_concepts)
            .enumerate()
            .map(|(id, kw)| ConceptInfo {
                id: id as u32,
                keywords: kw.into_iter().map(str::to_string).collect(),
            })
            .collect();

        // Per-concept anchor and per-style offsets in raw image space.
        let anchors: Vec<Vec<f32>> = (0..n_concepts)
            .map(|_| unit_vector(&mut rng, self.raw_image_dim))
            .collect();
        let style_centers: Vec<Vec<Vec<f32>>> = anchors
            .iter()
            .map(|anchor| {
                (0..self.n_styles)
                    .map(|_| {
                        let off = unit_vector(&mut rng, self.raw_image_dim);
                        anchor
                            .iter()
                            .zip(&off)
                            .map(|(a, o)| a + self.style_spread * o)
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Full vocabulary (for caption corruption).
        let mut vocab: Vec<&str> = axes.iter().flat_map(|a| a.iter().copied()).collect();
        vocab.extend_from_slice(self.domain.fillers());

        let mut kb = KnowledgeBase::new(self.domain.name(), schema.clone());
        for i in 0..self.n_objects {
            let concept = (i % n_concepts) as u32;
            let style = rng.gen_range(0..self.n_styles);
            let info = &concepts[concept as usize];

            // Caption: corrupted concept keywords + filler.
            let mut words: Vec<String> = info
                .keywords
                .iter()
                .map(|kw| {
                    if rng.gen_bool(self.caption_noise) {
                        vocab[rng.gen_range(0..vocab.len())].to_string()
                    } else {
                        kw.clone()
                    }
                })
                .collect();
            let fillers = self.domain.fillers();
            for _ in 0..rng.gen_range(1..=3usize) {
                let pos = rng.gen_range(0..=words.len());
                words.insert(pos, fillers[rng.gen_range(0..fillers.len())].to_string());
            }
            let caption = words.join(" ");

            // Image descriptor(s): style center + gaussian noise. The
            // noise vector is scaled to total energy `image_noise²`
            // (per-dim σ = image_noise/√dim) so that noise, style offsets
            // (‖·‖ = style_spread) and concept anchors (unit norm) live on
            // one comparable scale regardless of dimensionality.
            let noise_scale = self.image_noise / (self.raw_image_dim as f32).sqrt();
            let descriptor = |rng: &mut StdRng| {
                let center = &style_centers[concept as usize][style as usize];
                let feats: Vec<f32> = center
                    .iter()
                    .map(|c| c + noise_scale * gaussian(rng))
                    .collect();
                ImageData::new(feats)
            };

            let contents: Vec<Option<RawContent>> = schema
                .fields()
                .iter()
                .map(|f| match f.kind {
                    ModalityKind::Text | ModalityKind::Audio => {
                        Some(RawContent::Text(caption.clone()))
                    }
                    ModalityKind::Image | ModalityKind::Video => {
                        Some(RawContent::Image(descriptor(&mut rng)))
                    }
                })
                .collect();

            let mut record = ObjectRecord::new(format!("{} #{i}", info.phrase()), contents);
            record.concept = Some(concept);
            record.style = Some(style);
            kb.ingest(record)
                .expect("generated record satisfies schema");
        }

        let info = DatasetInfo {
            concepts,
            styles_per_concept: self.n_styles,
            spec: self.clone(),
        };
        (kb, info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let kb = DatasetSpec::fashion()
            .objects(120)
            .concepts(10)
            .seed(1)
            .generate();
        assert_eq!(kb.len(), 120);
        assert_eq!(kb.name(), "fashion");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DatasetSpec::weather().objects(50).seed(9).generate();
        let b = DatasetSpec::weather().objects(50).seed(9).generate();
        assert_eq!(a, b);
        let c = DatasetSpec::weather().objects(50).seed(10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn objects_carry_ground_truth() {
        let (kb, info) = DatasetSpec::fashion()
            .objects(40)
            .concepts(8)
            .styles(3)
            .seed(2)
            .generate_with_info();
        for (_, r) in kb.iter() {
            let c = r.concept.expect("generated objects are labelled");
            assert!((c as usize) < info.concepts.len());
            assert!(r.style.expect("style labelled") < 3);
        }
    }

    #[test]
    fn concepts_are_balanced_round_robin() {
        let (kb, _) = DatasetSpec::weather()
            .objects(100)
            .concepts(10)
            .seed(3)
            .generate_with_info();
        let mut counts = [0usize; 10];
        for (_, r) in kb.iter() {
            counts[r.concept.unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn movies_have_three_modalities() {
        let kb = DatasetSpec::movies()
            .objects(6)
            .concepts(3)
            .seed(4)
            .generate();
        assert_eq!(kb.schema().arity(), 3);
        for (_, r) in kb.iter() {
            assert_eq!(r.present_count(), 3);
        }
    }

    #[test]
    fn zero_caption_noise_keeps_keywords() {
        let (kb, info) = DatasetSpec::fashion()
            .objects(20)
            .concepts(5)
            .caption_noise(0.0)
            .seed(5)
            .generate_with_info();
        for (_, r) in kb.iter() {
            let caption = match r.content(0).unwrap() {
                RawContent::Text(t) => t.clone(),
                _ => panic!("caption is text"),
            };
            let concept = &info.concepts[r.concept.unwrap() as usize];
            for kw in &concept.keywords {
                assert!(
                    caption.contains(kw.as_str()),
                    "caption {caption:?} lacks {kw}"
                );
            }
        }
    }

    #[test]
    fn concept_cap_respects_combinatorics() {
        let (_, info) = DatasetSpec::fashion()
            .objects(10)
            .concepts(100_000)
            .seed(6)
            .generate_with_info();
        // fashion has 8*6*5 = 240 combinations
        assert_eq!(info.concepts.len(), 240);
    }

    #[test]
    fn same_style_images_cluster_tighter_than_cross_concept() {
        let (kb, _) = DatasetSpec::weather()
            .objects(200)
            .concepts(10)
            .styles(2)
            .image_noise(0.1)
            .seed(7)
            .generate_with_info();
        let img = |r: &ObjectRecord| match r.content(1).unwrap() {
            RawContent::Image(i) => i.features().to_vec(),
            _ => panic!(),
        };
        let recs: Vec<_> = kb.iter().map(|(_, r)| r.clone()).collect();
        let a = &recs[0];
        let same: Vec<f32> = recs
            .iter()
            .skip(1)
            .filter(|r| r.concept == a.concept && r.style == a.style)
            .map(|r| mqa_vector::ops::l2_sq(&img(a), &img(r)))
            .collect();
        let diff: Vec<f32> = recs
            .iter()
            .filter(|r| r.concept != a.concept)
            .map(|r| mqa_vector::ops::l2_sq(&img(a), &img(r)))
            .collect();
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(!same.is_empty() && !diff.is_empty());
        assert!(mean(&same) < mean(&diff));
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_objects_panics() {
        DatasetSpec::fashion().objects(0).generate();
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
