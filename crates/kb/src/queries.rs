//! Seeded query workloads over generated corpora.
//!
//! A [`QueryCase`] scripts one two-round dialogue of the paper's Figure 5
//! protocol:
//!
//! 1. **Round 1** — a text-only request naming the target concept
//!    ("could you assist me in finding images of foggy clouds?");
//! 2. the user *selects* one returned object (the harness selects the
//!    best-matching in-concept result, like the red-marked choice in the
//!    figure), fixing the target **style**;
//! 3. **Round 2** — a refinement request carrying both the selected image
//!    and new text ("more similar images of foggy clouds like this one").
//!
//! The workload generator only fixes the *intent* (concept, phrasing);
//! which object gets selected depends on what the framework under test
//! returned, so selection lives in the harness, not here.

use crate::datasets::DatasetInfo;
use mqa_rng::StdRng;
use serde::{Deserialize, Serialize};

/// One scripted dialogue intent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCase {
    /// Ground-truth target concept.
    pub concept: u32,
    /// Round-1 text request.
    pub round1_text: String,
    /// Round-2 refinement text (used together with the selected image).
    pub round2_text: String,
}

/// A batch of scripted dialogues.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// The cases, in generation order.
    pub cases: Vec<QueryCase>,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of dialogues to script.
    pub n_queries: usize,
    /// RNG seed.
    pub rng_seed: u64,
}

impl WorkloadSpec {
    /// Creates a spec.
    pub fn new(n_queries: usize, rng_seed: u64) -> Self {
        Self {
            n_queries,
            rng_seed,
        }
    }

    /// Scripts `n_queries` dialogues against the given corpus.
    ///
    /// # Panics
    /// Panics if the dataset has no concepts or `n_queries == 0`.
    pub fn generate(&self, info: &DatasetInfo) -> QueryWorkload {
        assert!(self.n_queries > 0, "workload requires at least one query");
        assert!(!info.concepts.is_empty(), "dataset has no concepts");
        let mut rng = StdRng::seed_from_u64(self.rng_seed ^ 0x0051_EED5);
        let round1_templates = [
            "could you assist me in finding images of {}",
            "i would like some images of {}",
            "please show me pictures of {}",
            "find {} for me",
        ];
        let round2_templates = [
            "i like this one, could you provide more similar images of {}",
            "could you locate more {} of this type",
            "more like this one please, {}",
        ];
        let cases = (0..self.n_queries)
            .map(|_| {
                let concept = rng.gen_range(0..info.concepts.len()) as u32;
                let phrase = info.concepts[concept as usize].phrase();
                let t1 = round1_templates[rng.gen_range(0..round1_templates.len())];
                let t2 = round2_templates[rng.gen_range(0..round2_templates.len())];
                QueryCase {
                    concept,
                    round1_text: t1.replace("{}", &phrase),
                    round2_text: t2.replace("{}", &phrase),
                }
            })
            .collect();
        QueryWorkload { cases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn info() -> DatasetInfo {
        DatasetSpec::weather()
            .objects(30)
            .concepts(6)
            .seed(1)
            .generate_with_info()
            .1
    }

    #[test]
    fn generates_requested_count() {
        let w = WorkloadSpec::new(25, 3).generate(&info());
        assert_eq!(w.cases.len(), 25);
    }

    #[test]
    fn deterministic_in_seed() {
        let i = info();
        assert_eq!(
            WorkloadSpec::new(10, 3).generate(&i),
            WorkloadSpec::new(10, 3).generate(&i)
        );
        assert_ne!(
            WorkloadSpec::new(10, 3).generate(&i),
            WorkloadSpec::new(10, 4).generate(&i)
        );
    }

    #[test]
    fn query_text_names_the_concept() {
        let i = info();
        let w = WorkloadSpec::new(20, 5).generate(&i);
        for case in &w.cases {
            let phrase = i.concepts[case.concept as usize].phrase();
            assert!(case.round1_text.contains(&phrase), "{:?}", case.round1_text);
            assert!(case.round2_text.contains(&phrase), "{:?}", case.round2_text);
        }
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_panics() {
        WorkloadSpec::new(0, 1).generate(&info());
    }
}
