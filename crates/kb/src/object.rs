//! Multi-modal objects: the unit of storage, retrieval and citation.

use mqa_encoders::RawContent;
use serde::{Deserialize, Serialize};

/// Dense object identifier, assigned by the knowledge base in ingestion
/// order. Identical to the vector/graph id of the object, so no id mapping
/// layer is needed anywhere in the pipeline.
pub type ObjectId = u32;

/// One multi-modal object: per-field raw content plus ground-truth
/// annotations for generated corpora.
///
/// As the paper puts it, "a movie's film, poster, and synopsis can be stored
/// as a singular object with multiple modalities" — `contents` is that
/// grouping, ordered by the knowledge base's [`crate::ContentSchema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// Short display title (used by answer generation when citing results).
    pub title: String,
    /// Raw content per schema field; `None` marks an absent modality.
    pub contents: Vec<Option<RawContent>>,
    /// Hidden concept id for generated corpora (`None` for user-ingested
    /// data). This is the relevance ground truth of experiments F4/F5/E5/E6.
    pub concept: Option<u32>,
    /// Style sub-cluster within the concept (generated corpora only); the
    /// target of round-2 "more like this one" refinement.
    pub style: Option<u32>,
}

impl ObjectRecord {
    /// Creates a user-ingested record (no ground-truth annotations).
    pub fn new(title: impl Into<String>, contents: Vec<Option<RawContent>>) -> Self {
        Self {
            title: title.into(),
            contents,
            concept: None,
            style: None,
        }
    }

    /// Content of field `m`, if present.
    pub fn content(&self, m: usize) -> Option<&RawContent> {
        self.contents.get(m).and_then(Option::as_ref)
    }

    /// Number of present (non-`None`) fields.
    pub fn present_count(&self) -> usize {
        self.contents.iter().filter(|c| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_record_has_no_ground_truth() {
        let r = ObjectRecord::new("t", vec![Some(RawContent::text("hello")), None]);
        assert_eq!(r.concept, None);
        assert_eq!(r.style, None);
        assert_eq!(r.present_count(), 1);
        assert!(r.content(0).is_some());
        assert!(r.content(1).is_none());
        assert!(r.content(9).is_none());
    }
}
