//! Deadline-aware micro-batch scheduler with admission control.
//!
//! Sits between [`QueryEngine::submit`](crate::QueryEngine::submit) and
//! the [`WorkerPool`]: submissions land in a pending queue, a dispatcher
//! thread drains them in arrival order as micro-batches of up to
//! `max_batch` jobs (consecutive dispatch amortizes `PageCache` and
//! `SearchScratch` locality on the workers), and overload resolves to a
//! *typed* outcome instead of unbounded queueing or a silent drop:
//!
//! * [`TicketError::Rejected`] — the pending queue was at the configured
//!   `watermark` when the job arrived (admission control).
//! * [`TicketError::Expired`] — the job carried a [`Deadline`] and it
//!   passed before a worker picked the job up. Expiry is checked at
//!   admission, at dispatch, and again on the worker, so a stale job
//!   never burns search work.
//!
//! The deadline clock is [`mqa_obs::Stopwatch`] — the process-wide
//! monotonic clock (`std::time::Instant` under the hood, read only
//! through the sanctioned obs wrapper), captured once at
//! [`Deadline::in_us`] and carried by value with the job.
//!
//! Instruments: `engine.sched.batches` / `engine.sched.batch_size` for
//! batch formation, `engine.sched.shed_rejected` / `engine.sched.shed_expired`
//! for the two shed outcomes, `engine.sched.pending_depth` for the queue.

use crate::pool::{Job, WorkerPool};
use crate::sync::TracedMutex;
use crate::ticket::{TicketAborter, TicketError};
use mqa_obs::Stopwatch;
use mqa_retrieval::RetrievalOutput;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

/// A per-query latency budget, measured from the moment of construction
/// on the process monotonic clock ([`mqa_obs::Stopwatch`]). `Copy`, so it
/// travels with the job through the scheduler and is re-checked at every
/// stage without any shared clock state.
#[derive(Clone, Copy)]
pub struct Deadline {
    started: Stopwatch,
    budget_us: u64,
}

impl Deadline {
    /// A deadline `budget_us` microseconds from now.
    #[must_use]
    pub fn in_us(budget_us: u64) -> Self {
        Self {
            started: Stopwatch::start(),
            budget_us,
        }
    }

    /// The original budget in microseconds.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// Whether the budget has fully elapsed.
    pub fn expired(&self) -> bool {
        self.started.elapsed_us() >= self.budget_us
    }

    /// Microseconds left before expiry (0 once expired).
    pub fn remaining_us(&self) -> u64 {
        self.budget_us.saturating_sub(self.started.elapsed_us())
    }
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("budget_us", &self.budget_us)
            .field("remaining_us", &self.remaining_us())
            .finish()
    }
}

/// Scheduler sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedOptions {
    /// Admission watermark: a submission that finds this many jobs
    /// already pending is shed with [`TicketError::Rejected`].
    pub watermark: usize,
    /// Upper bound on jobs dispatched per micro-batch.
    pub max_batch: usize,
}

impl Default for SchedOptions {
    fn default() -> Self {
        Self {
            watermark: 64,
            max_batch: 8,
        }
    }
}

/// One scheduled unit: the boxed job plus the control handles the
/// scheduler needs to shed it without running it.
pub(crate) struct Entry {
    pub(crate) job: Job,
    pub(crate) deadline: Option<Deadline>,
    pub(crate) aborter: TicketAborter<RetrievalOutput>,
    /// Written by the dispatcher with the size of the micro-batch this
    /// job shipped in; the worker reads it into the query trace. 0 means
    /// "not batch-dispatched".
    pub(crate) batch_cell: Arc<AtomicU64>,
}

struct SchedState {
    pending: VecDeque<Entry>,
    closed: bool,
}

struct Inner {
    state: TracedMutex<SchedState>,
    cv: Condvar,
    opts: SchedOptions,
    pool: Arc<WorkerPool>,
}

/// The scheduler stage. Owns one dispatcher thread; dropping it drains
/// the pending queue (accepted work still dispatches) and joins the
/// thread.
pub(crate) struct Scheduler {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Scheduler {
    pub(crate) fn new(opts: SchedOptions, pool: Arc<WorkerPool>) -> Self {
        assert!(opts.watermark > 0, "a zero watermark admits nothing");
        assert!(opts.max_batch > 0, "a zero max_batch dispatches nothing");
        // ALLOC: one scheduler per engine; control-plane, not the search kernel.
        let inner = Arc::new(Inner {
            state: TracedMutex::new(
                "engine.sched.state",
                SchedState {
                    pending: VecDeque::with_capacity(opts.watermark),
                    closed: false,
                },
            ),
            cv: Condvar::new(),
            opts,
            pool,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            Some(std::thread::spawn(move || dispatch_loop(&inner)))
        };
        Self { inner, dispatcher }
    }

    /// Admits `entry` into the pending queue, or sheds it with a typed
    /// outcome. Shedding resolves the entry's ticket through its aborter
    /// before returning, so the error the caller sees and the outcome the
    /// ticket's waiter sees always agree.
    ///
    /// # Errors
    /// [`TicketError::Expired`] if the deadline already passed,
    /// [`TicketError::Rejected`] if pending depth is at the watermark,
    /// [`TicketError::Canceled`] if the scheduler is shutting down.
    pub(crate) fn submit(&self, entry: Entry) -> Result<(), TicketError> {
        if let Some(d) = entry.deadline {
            if d.expired() {
                entry.aborter.fail(TicketError::Expired);
                mqa_obs::counter("engine.sched.shed_expired").inc();
                return Err(TicketError::Expired);
            }
        }
        let verdict = {
            let mut state = self.inner.state.lock();
            if state.closed {
                Err(TicketError::Canceled)
            } else if state.pending.len() >= self.inner.opts.watermark {
                Err(TicketError::Rejected)
            } else {
                state.pending.push_back(entry);
                Ok(state.pending.len())
            }
        };
        match verdict {
            Ok(depth) => {
                mqa_obs::gauge("engine.sched.pending_depth").set(depth as f64);
                self.inner.cv.notify_one();
                Ok(())
            }
            Err(err) => {
                // `entry` was not queued; fail its ticket (the dropped
                // job's sender-drop is then a no-op) and count the shed.
                if err == TicketError::Rejected {
                    mqa_obs::counter("engine.sched.shed_rejected").inc();
                }
                Err(err)
            }
        }
    }
}

/// The dispatcher: waits for pending work, drains up to `max_batch`
/// entries under the lock, then dispatches them *outside* the lock
/// (pool submission blocks under backpressure, and a guard must never be
/// held across a blocking call). Exits once closed *and* drained, so
/// every accepted entry is dispatched or shed before shutdown completes.
fn dispatch_loop(inner: &Inner) {
    let batches = mqa_obs::counter("engine.sched.batches");
    let batch_size = mqa_obs::histogram("engine.sched.batch_size");
    let shed_expired = mqa_obs::counter("engine.sched.shed_expired");
    let depth_gauge = mqa_obs::gauge("engine.sched.pending_depth");
    // ALLOC: dispatcher-local batch buffer, reused across iterations.
    let mut batch: Vec<Entry> = Vec::with_capacity(inner.opts.max_batch);
    loop {
        {
            let mut state = inner.state.lock();
            loop {
                if !state.pending.is_empty() {
                    break;
                }
                if state.closed {
                    return;
                }
                state = inner.state.wait(&inner.cv, state);
            }
            let n = state.pending.len().min(inner.opts.max_batch);
            batch.extend(state.pending.drain(..n));
            depth_gauge.set(state.pending.len() as f64);
        }
        let mut dispatched: u64 = 0;
        let formed = batch.len() as u64;
        for entry in batch.drain(..) {
            if let Some(d) = entry.deadline {
                // Shed without dispatching: resolving the ticket first
                // makes the dropped job's sender-drop a no-op, so the
                // waiter sees exactly one typed outcome.
                if d.expired() && entry.aborter.fail(TicketError::Expired) {
                    shed_expired.inc();
                    continue;
                }
            }
            entry.batch_cell.store(formed, Ordering::Relaxed);
            if inner.pool.submit(entry.job).is_err() {
                // Pool refused (shutdown mid-dispatch): the job was
                // consumed, its sender dropped, the ticket resolved as
                // Canceled. Record the typed outcome explicitly anyway in
                // case a send raced ahead.
                entry.aborter.fail(TicketError::Canceled);
                continue;
            }
            dispatched += 1;
        }
        if dispatched > 0 {
            batches.inc();
            batch_size.record(dispatched);
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.closed = true;
        }
        self.inner.cv.notify_one();
        if let Some(handle) = self.dispatcher.take() {
            // The dispatcher drains the backlog before exiting; a
            // panicked dispatcher must not cascade out of drop.
            drop(handle.join());
        }
        // Anything still pending after the join (dispatcher panicked
        // mid-loop) resolves typed rather than hanging its waiters.
        let mut state = self.inner.state.lock();
        for entry in state.pending.drain(..) {
            entry.aborter.fail(TicketError::Canceled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires_on_the_monotonic_clock() {
        let d = Deadline::in_us(30_000);
        assert!(!d.expired());
        assert!(d.remaining_us() <= 30_000);
        assert_eq!(d.budget_us(), 30_000);
        let zero = Deadline::in_us(0);
        assert!(zero.expired());
        assert_eq!(zero.remaining_us(), 0);
    }

    #[test]
    fn debug_shows_budget() {
        let d = Deadline::in_us(500);
        let text = format!("{d:?}");
        assert!(text.contains("budget_us: 500"));
    }

    #[test]
    fn default_options_are_sane() {
        let opts = SchedOptions::default();
        assert!(opts.watermark > 0);
        assert!(opts.max_batch > 0);
    }
}
