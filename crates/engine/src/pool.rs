//! The fixed worker pool.
//!
//! `workers` OS threads, each owning one [`SearchScratch`] for its whole
//! lifetime — the shared-nothing design: no lock is held while searching,
//! and the per-query visited set never reallocates in steady state. Jobs
//! arrive through a [`BoundedQueue`]; dropping the pool closes the queue,
//! drains the backlog, and joins every thread.

use crate::queue::{BoundedQueue, PushError};
use crate::EngineError;
use mqa_graph::SearchScratch;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work: runs on a worker thread with that worker's scratch.
pub type Job = Box<dyn FnOnce(&mut SearchScratch) + Send>;

/// The pool. Worker threads live exactly as long as this value.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `queue_cap` slots.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `queue_cap == 0`.
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_cap));
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    mqa_obs::trace::set_worker_id(u64::try_from(i).unwrap_or(u64::MAX));
                    let jobs = mqa_obs::counter(&format!("engine.worker.{i}.jobs"));
                    let depth = mqa_obs::gauge("engine.pool.queue_depth");
                    let mut scratch = SearchScratch::new();
                    while let Some(job) = queue.pop() {
                        depth.set(queue.len() as f64);
                        // A panicking job must not take the worker down:
                        // the unwind drops the job's [`TicketSender`]
                        // (resolving its ticket as Canceled) and this
                        // thread moves on to the backlog. The scratch is
                        // rebuilt — the panic may have left it mid-epoch —
                        // and so is the span stack: guards leaked by the
                        // unwind would otherwise pin a stale parent onto
                        // the next job's spans.
                        let alloc_before = crate::allocwitness::checkpoint();
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            job(&mut scratch)
                        }));
                        // Job-side allocation accounting (feature
                        // `alloc-witness`): the delta is read before any
                        // recording so the histograms never measure
                        // their own bookkeeping.
                        crate::allocwitness::record_job(&alloc_before);
                        if caught.is_err() {
                            mqa_obs::counter("engine.worker.job_panics").inc();
                            scratch = SearchScratch::new();
                            mqa_obs::span::reset_thread_stack();
                        }
                        jobs.inc();
                    }
                })
            })
            .collect();
        Self { queue, handles }
    }

    /// Blocking submit: applies backpressure while the queue is full.
    ///
    /// # Errors
    /// Returns [`EngineError::ShuttingDown`] if the pool closed.
    pub fn submit(&self, job: Job) -> Result<(), EngineError> {
        match self.queue.push(job) {
            Ok(()) => {
                mqa_obs::gauge("engine.pool.queue_depth").set(self.queue.len() as f64);
                Ok(())
            }
            Err(PushError::Closed(_)) | Err(PushError::Full(_)) => Err(EngineError::ShuttingDown),
        }
    }

    /// Non-blocking submit.
    ///
    /// # Errors
    /// Returns [`EngineError::QueueFull`] under backpressure or
    /// [`EngineError::ShuttingDown`] if the pool closed.
    pub fn try_submit(&self, job: Job) -> Result<(), EngineError> {
        match self.queue.try_push(job) {
            Ok(()) => {
                mqa_obs::gauge("engine.pool.queue_depth").set(self.queue.len() as f64);
                Ok(())
            }
            Err(PushError::Full(_)) => Err(EngineError::QueueFull),
            Err(PushError::Closed(_)) => Err(EngineError::ShuttingDown),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.handles.drain(..) {
            // A worker that panicked already surfaced its ticket as
            // Canceled; shutdown itself must not cascade the panic.
            drop(handle.join());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_submitted_job_runs_before_drop_returns() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(3, 8);
        for _ in 0..20 {
            let ran = Arc::clone(&ran);
            pool.submit(Box::new(move |_s| {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn jobs_see_a_real_scratch() {
        let saw = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(1, 2);
        let saw2 = Arc::clone(&saw);
        pool.submit(Box::new(move |s| {
            s.force_epoch(5);
            saw2.store(1, Ordering::SeqCst);
        }))
        .unwrap();
        drop(pool);
        assert_eq!(saw.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn workers_reports_thread_count() {
        let pool = WorkerPool::new(4, 4);
        assert_eq!(pool.workers(), 4);
    }
}
