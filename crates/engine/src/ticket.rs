//! One-shot result handles for submitted queries.
//!
//! `submit` hands the caller a [`Ticket`]; the worker that runs the job
//! fulfils it through the paired [`TicketSender`]. If the sender is
//! dropped unfulfilled — the job panicked, or the pool shut down with the
//! job still queued — waiting on the ticket reports
//! [`EngineError::Canceled`] instead of hanging forever.

use crate::sync::TracedMutex;
use crate::EngineError;
use std::sync::{Arc, Condvar};

enum TicketState<T> {
    Pending,
    Done(T),
    Dropped,
}

struct Shared<T> {
    slot: TracedMutex<TicketState<T>>,
    cv: Condvar,
}

/// The caller's handle to one in-flight query result.
pub struct Ticket<T> {
    shared: Arc<Shared<T>>,
}

/// The worker's half: fulfils the ticket exactly once. Dropping it
/// unfulfilled cancels the paired [`Ticket`].
pub struct TicketSender<T> {
    shared: Arc<Shared<T>>,
    sent: bool,
}

/// Creates a connected ticket/sender pair.
pub fn oneshot<T>() -> (Ticket<T>, TicketSender<T>) {
    // ALLOC: one rendezvous cell per submitted query; control-plane, not the search kernel.
    let shared = Arc::new(Shared {
        slot: TracedMutex::new("engine.ticket.slot", TicketState::Pending),
        cv: Condvar::new(),
    });
    (
        Ticket {
            shared: Arc::clone(&shared),
        },
        TicketSender {
            shared,
            sent: false,
        },
    )
}

impl<T> Ticket<T> {
    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    /// Returns [`EngineError::Canceled`] if the job was abandoned before
    /// producing a result.
    pub fn wait(self) -> Result<T, EngineError> {
        let mut state = self.shared.slot.lock();
        loop {
            match std::mem::replace(&mut *state, TicketState::Dropped) {
                TicketState::Done(value) => return Ok(value),
                TicketState::Dropped => return Err(EngineError::Canceled),
                TicketState::Pending => {
                    *state = TicketState::Pending;
                    state = self.shared.slot.wait(&self.shared.cv, state);
                }
            }
        }
    }
}

impl<T> TicketSender<T> {
    /// Fulfils the ticket and wakes the waiter.
    pub fn send(mut self, value: T) {
        let mut state = self.shared.slot.lock();
        *state = TicketState::Done(value);
        self.sent = true;
        self.shared.cv.notify_all();
    }
}

impl<T> Drop for TicketSender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let mut state = self.shared.slot.lock();
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Dropped;
        }
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_wait_delivers() {
        let (t, s) = oneshot();
        s.send(42u32);
        assert_eq!(t.wait(), Ok(42));
    }

    #[test]
    fn dropped_sender_cancels() {
        let (t, s) = oneshot::<u32>();
        drop(s);
        assert_eq!(t.wait(), Err(EngineError::Canceled));
    }

    #[test]
    fn wait_blocks_until_send() {
        let (t, s) = oneshot();
        let waiter = std::thread::spawn(move || t.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.send(7u32);
        assert_eq!(waiter.join().unwrap(), Ok(7));
    }
}
