//! One-shot result handles for submitted queries.
//!
//! `submit` hands the caller a [`Ticket`]; the worker that runs the job
//! fulfils it through the paired [`TicketSender`]. Every ticket resolves
//! to exactly one typed outcome: a value, or a [`TicketError`] naming why
//! no value will arrive — shed at admission ([`TicketError::Rejected`]),
//! shed by deadline expiry ([`TicketError::Expired`]), or abandoned
//! ([`TicketError::Canceled`], e.g. the job panicked or the pool shut
//! down). There is no silent-drop path: if the sender is dropped
//! unfulfilled the ticket reports `Canceled` instead of hanging forever.

use crate::sync::TracedMutex;
use std::sync::{Arc, Condvar};

/// Why a ticket resolved without a value. Each variant is a distinct
/// load-shedding or cancellation outcome; callers can match exhaustively
/// to decide between retry, fallback, and surfacing the shed to the user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketError {
    /// Admission control refused the job: scheduler queue depth was at or
    /// above the configured watermark when it was submitted.
    Rejected,
    /// The job's deadline passed before a worker picked it up.
    Expired,
    /// The job was abandoned before producing a result: the pool shut
    /// down, the job panicked, or the sender was dropped unfulfilled.
    Canceled,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected => write!(f, "rejected by admission control (queue over watermark)"),
            Self::Expired => write!(f, "deadline expired before dispatch"),
            Self::Canceled => write!(f, "job abandoned before completion"),
        }
    }
}

impl std::error::Error for TicketError {}

enum TicketState<T> {
    Pending,
    Done(T),
    Failed(TicketError),
}

struct Shared<T> {
    slot: TracedMutex<TicketState<T>>,
    cv: Condvar,
}

/// The caller's handle to one in-flight query result.
pub struct Ticket<T> {
    shared: Arc<Shared<T>>,
}

/// The worker's half: fulfils the ticket exactly once. Dropping it
/// unfulfilled cancels the paired [`Ticket`].
pub struct TicketSender<T> {
    shared: Arc<Shared<T>>,
    sent: bool,
}

/// A clonable failure handle: lets the scheduler resolve a ticket to a
/// typed error (`Expired`, `Rejected`, `Canceled`) from outside the
/// worker that holds the [`TicketSender`]. First resolution wins — if the
/// worker already sent a value, `fail` is a no-op, and vice versa.
pub struct TicketAborter<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for TicketAborter<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Creates a connected ticket/sender pair.
pub fn oneshot<T>() -> (Ticket<T>, TicketSender<T>) {
    // ALLOC: one rendezvous cell per submitted query; control-plane, not the search kernel.
    let shared = Arc::new(Shared {
        slot: TracedMutex::new("engine.ticket.slot", TicketState::Pending),
        cv: Condvar::new(),
    });
    (
        Ticket {
            shared: Arc::clone(&shared),
        },
        TicketSender {
            shared,
            sent: false,
        },
    )
}

impl<T> Ticket<T> {
    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    /// Returns the typed [`TicketError`] the job resolved to: `Rejected`
    /// or `Expired` when it was shed, `Canceled` when it was abandoned
    /// before producing a result.
    pub fn wait(self) -> Result<T, TicketError> {
        let mut state = self.shared.slot.lock();
        loop {
            match std::mem::replace(&mut *state, TicketState::Failed(TicketError::Canceled)) {
                TicketState::Done(value) => return Ok(value),
                TicketState::Failed(err) => return Err(err),
                TicketState::Pending => {
                    *state = TicketState::Pending;
                    state = self.shared.slot.wait(&self.shared.cv, state);
                }
            }
        }
    }
}

impl<T> TicketSender<T> {
    /// Fulfils the ticket and wakes the waiter. Returns `false` (and
    /// discards `value`) if the ticket was already resolved to a typed
    /// failure by a [`TicketAborter`] — a shed outcome is never
    /// overwritten, so a ticket resolves exactly once.
    pub fn send(mut self, value: T) -> bool {
        let mut state = self.shared.slot.lock();
        self.sent = true;
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Done(value);
            self.shared.cv.notify_all();
            true
        } else {
            false
        }
    }

    /// A failure handle bound to the same ticket, for resolving it from
    /// outside the worker (scheduler shed paths).
    pub fn aborter(&self) -> TicketAborter<T> {
        TicketAborter {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> TicketAborter<T> {
    /// Resolves the ticket to `err` if it is still pending. Returns
    /// `true` iff this call won the resolution race — exactly one of
    /// `send`/`fail` reaches the waiter, so the caller can use the return
    /// value to attribute the outcome to exactly one shed counter.
    pub fn fail(&self, err: TicketError) -> bool {
        let mut state = self.shared.slot.lock();
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Failed(err);
            self.shared.cv.notify_all();
            true
        } else {
            false
        }
    }
}

impl<T> Drop for TicketSender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let mut state = self.shared.slot.lock();
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Failed(TicketError::Canceled);
        }
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_wait_delivers() {
        let (t, s) = oneshot();
        assert!(s.send(42u32));
        assert_eq!(t.wait(), Ok(42));
    }

    #[test]
    fn dropped_sender_cancels() {
        let (t, s) = oneshot::<u32>();
        drop(s);
        assert_eq!(t.wait(), Err(TicketError::Canceled));
    }

    #[test]
    fn wait_blocks_until_send() {
        let (t, s) = oneshot();
        let waiter = std::thread::spawn(move || t.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.send(7u32);
        assert_eq!(waiter.join().unwrap(), Ok(7));
    }

    #[test]
    fn aborter_resolves_typed_failure() {
        let (t, s) = oneshot::<u32>();
        let a = s.aborter();
        assert!(a.fail(TicketError::Expired));
        // The sender's value arrives too late and is discarded.
        assert!(!s.send(9));
        assert_eq!(t.wait(), Err(TicketError::Expired));
    }

    #[test]
    fn first_resolution_wins() {
        let (t, s) = oneshot::<u32>();
        let a = s.aborter();
        assert!(s.send(5));
        assert!(!a.fail(TicketError::Rejected));
        assert_eq!(t.wait(), Ok(5));
    }

    #[test]
    fn aborter_race_yields_exactly_one_outcome() {
        for _ in 0..64 {
            let (t, s) = oneshot::<u32>();
            let a = s.aborter();
            let sender = std::thread::spawn(move || s.send(1));
            let aborter = std::thread::spawn(move || a.fail(TicketError::Expired));
            let sent = sender.join().unwrap();
            let failed = aborter.join().unwrap();
            assert!(sent ^ failed, "exactly one side must win the ticket");
            match t.wait() {
                Ok(1) => assert!(sent),
                Err(TicketError::Expired) => assert!(failed),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
}
