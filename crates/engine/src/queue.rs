//! A bounded multi-producer multi-consumer queue on std primitives.
//!
//! The submission side of the engine: producers block (or fail fast with
//! [`PushError::Full`]) when the queue is at capacity — backpressure
//! instead of unbounded memory growth — and consumers block until an item
//! arrives or the queue is closed and drained. Closing wakes every waiter,
//! which is how the pool shuts down gracefully: queued work still runs,
//! new work is refused.

use crate::sync::{TracedGuard, TracedMutex};
use std::collections::VecDeque;
use std::sync::Condvar;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (non-blocking push only); the item is
    /// handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. All synchronization is two condvars over one mutex; a
/// poisoned lock (a panicking job elsewhere) is recovered rather than
/// propagated, since queue state is a plain buffer that cannot be left
/// logically inconsistent by a reader. The mutex is a [`TracedMutex`]
/// so the lock-order witness can watch it during the engine smoke gate.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: TracedMutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a zero-capacity queue deadlocks every
    /// producer).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be >= 1");
        Self {
            capacity,
            state: TracedMutex::new(
                "engine.queue.state",
                State {
                    items: VecDeque::with_capacity(capacity),
                    closed: false,
                },
            ),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocking push: waits for a slot while the queue is full.
    ///
    /// # Errors
    /// Returns [`PushError::Closed`] (with the item) if the queue closed
    /// before a slot opened.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state: TracedGuard<'_, State<T>> = self.state.lock();
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.state.wait(&self.not_full, state);
        }
    }

    /// Non-blocking push.
    ///
    /// # Errors
    /// Returns [`PushError::Full`] if at capacity or [`PushError::Closed`]
    /// if closed, handing the item back either way.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits for an item; `None` means the queue is closed
    /// *and* drained — the consumer's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                // INVARIANT: `notify_one` here cannot lose a wakeup even
                // with N>1 blocked pushers. Each successful pop frees
                // exactly one slot and issues exactly one notification
                // while holding the lock, and a pusher leaves the
                // condvar's wait queue the moment it is notified — so K
                // pops deliver K notifications to K *distinct* waiting
                // pushers (a notification is never absorbed by a thread
                // that already consumed one). A woken pusher that finds
                // the slot stolen by a fast-path `push`/`try_push` simply
                // re-waits, and the thief's consumed capacity means no
                // net slot went unannounced. The only multi-slot event is
                // `close`, which uses `notify_all`. Pinned by
                // `wakeup_protocol_survives_multiple_blocked_pushers` in
                // tests/schedule_checks.rs across >=200 seeded schedules.
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.state.wait(&self.not_empty, state);
        }
    }

    /// Closes the queue: further pushes fail, queued items still drain,
    /// and every blocked producer/consumer wakes.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_reports_full_and_returns_item() {
        let q = BoundedQueue::new(1);
        q.try_push(7).unwrap();
        match q.try_push(8) {
            Err(PushError::Full(v)) => assert_eq!(v, 8),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(v)) => assert_eq!(v, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_producer_wakes_on_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // The producer blocks on the full queue until this pop frees a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
