//! The runtime allocation witness: a counting `#[global_allocator]`.
//!
//! The static side of the allocation-freedom story (`mqa-xtask alloc`)
//! proves no *source-visible* allocation site is reachable from the
//! steady-state serving cone without a discharge. This module is the
//! runtime cross-check: with the `alloc-witness` cargo feature enabled,
//! every heap allocation on every thread is counted, so a warmed serving
//! loop can be *measured* to allocate nothing — catching whatever the
//! token-level heuristics cannot see (allocations inside std, trait
//! objects, growth of "pre-sized" buffers that were sized wrong).
//!
//! Two surfaces:
//!
//! * [`checkpoint`] / [`AllocCheckpoint::delta`] — per-thread counters for
//!   bracketing a region ("this search performed N allocations totalling
//!   B bytes"). The engine gate's witness phase asserts N == 0 for warmed
//!   paged searches.
//! * The worker pool records each job's allocation delta into the
//!   `engine.allocwitness.job_allocs` / `engine.allocwitness.job_bytes`
//!   histograms (recording happens *outside* the measured window).
//!
//! With the feature off (the default) this file compiles to inert stubs
//! and no global allocator is installed — production builds keep the
//! system allocator untouched.

#[cfg(feature = "alloc-witness")]
mod active {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        /// Heap allocations performed by this thread (allocs + reallocs).
        /// `const`-initialized: the allocator must never allocate on its
        /// own account, including for TLS slot initialization.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
        /// Bytes requested by this thread's allocations.
        static BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// Counts one allocation of `size` bytes against the current thread.
    /// `try_with` keeps the allocator safe during TLS teardown, when the
    /// slots may already be destroyed but the thread still frees/allocs.
    fn count(size: usize) {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = BYTES.try_with(|c| c.set(c.get().saturating_add(size as u64)));
    }

    /// System-allocator wrapper that counts per-thread allocation traffic.
    pub struct CountingAlloc;

    // The lint gate (`unsafe-no-safety`) requires a SAFETY comment within
    // three lines of every `unsafe`; the workspace otherwise denies
    // unsafe code, so this impl carries an explicit allow.
    #[allow(unsafe_code)]
    // SAFETY: every method delegates verbatim to `System`, which upholds
    // the GlobalAlloc contract; the counting side effect touches only
    // plain thread-local `Cell`s and never allocates or unwinds.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: same layout contract as `System::alloc`; see impl note.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            System.alloc(layout)
        }

        // SAFETY: same layout contract as `System::alloc_zeroed`.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            System.alloc_zeroed(layout)
        }

        // SAFETY: ptr/layout/new_size are forwarded untouched, so the
        // caller's obligations transfer directly to `System::realloc`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count(new_size);
            System.realloc(ptr, layout, new_size)
        }

        // SAFETY: frees exactly what `System` allocated, untouched.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[allow(unsafe_code)]
    // SAFETY: installing the wrapper is sound because it forwards every
    // call to `System` (see the impl above); it is the process's only
    // `#[global_allocator]` — the feature gate keeps default builds on
    // the untouched system allocator.
    #[global_allocator]
    static WITNESS_ALLOC: CountingAlloc = CountingAlloc;

    /// Both counters, or `None` when the thread's TLS slots are already
    /// destroyed (thread teardown in progress). Reading 0 at that point
    /// would silently mask undercounting, so the unreadable state is
    /// typed instead of defaulted.
    pub fn thread_counters() -> Option<(u64, u64)> {
        let allocs = ALLOCS.try_with(Cell::get).ok()?;
        let bytes = BYTES.try_with(Cell::get).ok()?;
        Some((allocs, bytes))
    }
}

/// A point-in-time snapshot of the current thread's allocation counters;
/// [`AllocCheckpoint::delta_checked`] measures the traffic since.
#[derive(Debug, Clone, Copy)]
pub struct AllocCheckpoint {
    /// `(allocations, bytes)` at checkpoint time; `None` when the
    /// thread-local counters were unreadable (TLS destruction), so the
    /// unreadable state propagates typed instead of reading as zero.
    counters: Option<(u64, u64)>,
}

impl AllocCheckpoint {
    /// `(allocations, bytes)` performed by this thread since the
    /// checkpoint was taken, or `None` if either endpoint fell into TLS
    /// destruction — a measurement that would otherwise undercount as
    /// zero. Always `Some((0, 0))` without `alloc-witness`.
    pub fn delta_checked(&self) -> Option<(u64, u64)> {
        let (a0, b0) = self.counters?;
        let (a1, b1) = checkpoint().counters?;
        Some((a1.saturating_sub(a0), b1.saturating_sub(b0)))
    }
}

/// Snapshots the current thread's allocation counters.
#[cfg(feature = "alloc-witness")]
pub fn checkpoint() -> AllocCheckpoint {
    AllocCheckpoint {
        counters: active::thread_counters(),
    }
}

/// Snapshots the current thread's allocation counters (stub: the witness
/// is compiled out, so every delta reads zero).
#[cfg(not(feature = "alloc-witness"))]
pub fn checkpoint() -> AllocCheckpoint {
    AllocCheckpoint {
        counters: Some((0, 0)),
    }
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "alloc-witness")
}

/// Folds one worker job's allocation delta into the
/// `engine.allocwitness.*` histograms. No-op without the feature; with
/// it, the registry lookups run *after* the measured window closed, so
/// recording never pollutes the next checkpoint's delta attribution.
pub fn record_job(before: &AllocCheckpoint) {
    if !enabled() {
        return;
    }
    match before.delta_checked() {
        Some((allocs, bytes)) => {
            let reg = mqa_obs::global();
            reg.histogram("engine.allocwitness.job_allocs")
                .record(allocs);
            reg.histogram("engine.allocwitness.job_bytes").record(bytes);
        }
        // TLS destruction made the delta unreadable: count the miss
        // visibly rather than recording a fabricated zero delta.
        None => mqa_obs::counter("engine.allocwitness.tls_miss").inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_delta_is_monotonic() {
        let cp = checkpoint();
        let v: Vec<u64> = (0..64).collect();
        let (allocs, bytes) = cp.delta_checked().expect("live thread reads its counters");
        if enabled() {
            assert!(allocs >= 1, "a Vec allocation must be counted");
            assert!(bytes >= 64 * 8, "the Vec's bytes must be counted");
        } else {
            assert_eq!((allocs, bytes), (0, 0));
        }
        drop(v);
    }

    #[cfg(feature = "alloc-witness")]
    #[test]
    fn warmed_loop_measures_zero_allocations() {
        // The micro-version of the engine gate's witness phase: after one
        // warmup round, summing into a pre-grown buffer allocates nothing.
        let mut buf: Vec<u64> = Vec::with_capacity(256);
        buf.extend(0..256);
        let cp = checkpoint();
        let mut acc = 0u64;
        for _ in 0..10 {
            buf.clear();
            buf.extend(0..256);
            acc = acc.wrapping_add(buf.iter().sum::<u64>());
        }
        let (allocs, _) = cp.delta_checked().expect("live thread reads its counters");
        assert_eq!(allocs, 0, "warmed loop allocated (acc={acc})");
    }

    #[test]
    fn record_job_is_safe_to_call() {
        let cp = checkpoint();
        record_job(&cp);
        if enabled() {
            let snap = mqa_obs::global().snapshot();
            assert!(snap.histogram("engine.allocwitness.job_allocs").is_some());
        }
    }
}
