//! Poison-tolerant locking and the runtime lock-order witness.
//!
//! Every `Mutex` in this crate guards plain buffer state (a `VecDeque`, a
//! oneshot slot) that a panicking holder cannot leave logically
//! inconsistent, so lock poisoning carries no information we want to
//! propagate: [`lock_ignore_poison`] / [`wait_ignore_poison`] are the one
//! documented place that policy lives, replacing the
//! `unwrap_or_else(|p| p.into_inner())` pattern that used to be repeated
//! at every site. The `conc` static analyzer (`mqa-xtask conc`) recognizes
//! both helpers as lock-acquisition sites.
//!
//! [`TracedMutex`] wraps a `Mutex` with a stable `&'static str` name and —
//! when the `lock-witness` cargo feature is enabled *and* the witness is
//! switched on at runtime — records per-thread acquisition order into the
//! [`witness`] module and `mqa-obs` counters:
//!
//! * `engine.lockwitness.acquire.<name>` — acquisitions of `<name>`;
//! * `engine.lockwitness.held.<A>-><B>` — `<B>` acquired while `<A>` was
//!   held by the same thread (a true lock-order edge; any such edge must
//!   also exist in the static lock-order graph);
//! * `engine.lockwitness.seq.<A>-><B>` — `<B>` acquired with no lock held,
//!   immediately after the same thread released `<A>` (program-order
//!   pairs; proof the witness actually saw traffic).
//!
//! With the feature off (the default), `TracedMutex` compiles down to a
//! named `Mutex` and the witness functions are empty inline stubs.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, recovering the guard from a poisoned lock.
///
/// Poisoning only marks that *some* holder panicked; the engine's lock-
/// protected state is always a plain buffer that every exit path leaves
/// consistent, so recovery is safe and a panic cascade would only turn
/// one failed job into a dead engine.
pub fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Waits on `cv`, recovering the reacquired guard from a poisoned lock
/// (same policy as [`lock_ignore_poison`]).
pub fn wait_ignore_poison<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A named mutex: `lock()` ignores poisoning and (feature `lock-witness`)
/// reports every acquisition/release to the [`witness`].
pub struct TracedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TracedMutex<T> {
    /// Wraps `value` under the witness name `name`. Names should be stable
    /// dotted paths (`engine.queue.state`) — the static analyzer collects
    /// them from these constructor literals and the smoke gate checks the
    /// runtime-observed set is a subset.
    pub const fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The witness name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock (poison-tolerant), recording the acquisition.
    pub fn lock(&self) -> TracedGuard<'_, T> {
        let raw = lock_ignore_poison(&self.inner);
        witness::acquire(self.name);
        TracedGuard {
            lock: self,
            inner: Some(raw),
        }
    }

    /// Condvar wait: atomically releases the guard, waits on `cv`, and
    /// reacquires (poison-tolerant), keeping the witness's held-set
    /// accurate across the gap. Callers must re-check their predicate in a
    /// loop, exactly as with [`Condvar::wait`].
    pub fn wait<'a>(&self, cv: &Condvar, mut guard: TracedGuard<'a, T>) -> TracedGuard<'a, T> {
        debug_assert!(
            std::ptr::eq(self as *const _, guard.lock as *const _),
            "guard waited on a different TracedMutex"
        );
        if let Some(raw) = guard.inner.take() {
            witness::release(guard.lock.name);
            let raw = wait_ignore_poison(cv, raw);
            witness::acquire(guard.lock.name);
            guard.inner = Some(raw);
        }
        guard
    }
}

/// The guard for a [`TracedMutex`]; releases report to the witness.
pub struct TracedGuard<'a, T> {
    lock: &'a TracedMutex<T>,
    // `None` only transiently inside `TracedMutex::wait`, which owns the
    // guard for the whole gap; a `None` can never escape to users.
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for TracedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => unreachable!("TracedGuard emptied outside TracedMutex::wait"),
        }
    }
}

impl<T> std::ops::DerefMut for TracedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => unreachable!("TracedGuard emptied outside TracedMutex::wait"),
        }
    }
}

impl<T> Drop for TracedGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            witness::release(self.lock.name);
        }
    }
}

/// The runtime lock-order witness (active build: feature `lock-witness`).
#[cfg(feature = "lock-witness")]
pub mod witness {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// One observed acquisition pair.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WitnessPair {
        /// Lock the thread touched first.
        pub from: String,
        /// Lock acquired second.
        pub to: String,
        /// `true`: `from` was still held when `to` was acquired (a real
        /// lock-order edge). `false`: disjoint program-order pair.
        pub held: bool,
        /// Times the pair was observed.
        pub count: u64,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static PAIRS: Mutex<Vec<WitnessPair>> = Mutex::new(Vec::new());

    thread_local! {
        // Stack of lock names this thread currently holds.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        // Most recent acquisition by this thread (for seq pairs).
        static LAST: RefCell<Option<&'static str>> = const { RefCell::new(None) };
    }

    /// Turns recording on or off. Off is one relaxed load per lock.
    pub fn enable(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Clears every recorded pair (the per-thread held-stack drains
    /// naturally as guards drop).
    pub fn reset() {
        super::lock_ignore_poison(&PAIRS).clear();
    }

    /// A snapshot of every recorded pair.
    pub fn pairs() -> Vec<WitnessPair> {
        super::lock_ignore_poison(&PAIRS).clone()
    }

    fn record(from: &'static str, to: &'static str, held: bool) {
        {
            let mut pairs = super::lock_ignore_poison(&PAIRS);
            match pairs
                .iter_mut()
                .find(|p| p.from == from && p.to == to && p.held == held)
            {
                Some(p) => p.count += 1,
                None => pairs.push(WitnessPair {
                    // ALLOC: witness recording only — `record` runs solely while the lock witness is enabled, never in serving builds.
                    from: from.to_string(),
                    to: to.to_string(),
                    held,
                    count: 1,
                }),
            }
        }
        // Counter names mirror the pair kinds; incremented outside the
        // PAIRS guard so the obs registry mutex stays a leaf lock.
        let kind = if held { "held" } else { "seq" };
        // ALLOC: witness recording only (see the enabled gate in `acquire`).
        mqa_obs::counter(&format!("engine.lockwitness.{kind}.{from}->{to}")).inc();
    }

    pub(crate) fn acquire(name: &'static str) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let (held_under, seq_from) = HELD.with(|h| {
            let mut h = h.borrow_mut();
            // ALLOC: witness recording only — `acquire` early-returns while the witness is disabled.
            let held_under: Vec<&'static str> = h.iter().copied().collect();
            let seq_from = if held_under.is_empty() {
                LAST.with(|l| l.borrow().filter(|&p| p != name))
            } else {
                None
            };
            h.push(name);
            (held_under, seq_from)
        });
        LAST.with(|l| *l.borrow_mut() = Some(name));
        for from in held_under {
            record(from, name, true);
        }
        if let Some(from) = seq_from {
            record(from, name, false);
        }
        // ALLOC: witness recording only (enabled-gated above).
        mqa_obs::counter(&format!("engine.lockwitness.acquire.{name}")).inc();
    }

    pub(crate) fn release(name: &'static str) {
        // Unconditional (even when disabled) so a mid-hold disable never
        // strands a stale entry on the held-stack.
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(at) = h.iter().rposition(|&n| n == name) {
                h.remove(at);
            }
        });
    }
}

/// The runtime lock-order witness (stub build: feature `lock-witness`
/// off). Every function is an inline no-op so call sites compile
/// unchanged with zero overhead.
#[cfg(not(feature = "lock-witness"))]
pub mod witness {
    /// One observed acquisition pair (never produced in the stub build).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WitnessPair {
        /// Lock the thread touched first.
        pub from: String,
        /// Lock acquired second.
        pub to: String,
        /// Whether `from` was held when `to` was acquired.
        pub held: bool,
        /// Times the pair was observed.
        pub count: u64,
    }

    /// No-op: the witness is compiled out.
    pub fn enable(_on: bool) {}

    /// No-op: the witness is compiled out.
    pub fn reset() {}

    /// Always empty: the witness is compiled out.
    pub fn pairs() -> Vec<WitnessPair> {
        Vec::new()
    }

    #[inline(always)]
    pub(crate) fn acquire(_name: &'static str) {}

    #[inline(always)]
    pub(crate) fn release(_name: &'static str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_ignore_poison_recovers_after_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "lock must actually be poisoned");
        assert_eq!(*lock_ignore_poison(&m), 7);
    }

    #[test]
    fn traced_mutex_guards_and_waits() {
        let m = TracedMutex::new("test.sync.cell", 1u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.name(), "test.sync.cell");
    }

    #[test]
    fn traced_wait_round_trips_through_a_condvar() {
        use std::sync::Arc;
        let m = Arc::new(TracedMutex::new("test.sync.waited", false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = m2.wait(&cv2, g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[cfg(feature = "lock-witness")]
    #[test]
    fn witness_records_held_and_seq_pairs() {
        let a = TracedMutex::new("test.sync.wa", 0u32);
        let b = TracedMutex::new("test.sync.wb", 0u32);
        witness::reset();
        witness::enable(true);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // held pair a -> b
        }
        {
            let _gb = b.lock(); // seq pair (released a..b earlier) — last was b
        }
        let _ga = a.lock(); // seq pair b -> a
        drop(_ga);
        witness::enable(false);
        let pairs = witness::pairs();
        assert!(pairs
            .iter()
            .any(|p| p.held && p.from == "test.sync.wa" && p.to == "test.sync.wb"));
        assert!(pairs
            .iter()
            .any(|p| !p.held && p.from == "test.sync.wb" && p.to == "test.sync.wa"));
        witness::reset();
        assert!(witness::pairs().is_empty());
    }
}
