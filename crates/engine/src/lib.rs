//! # mqa-engine
//!
//! The concurrent query engine: MQA's interactive sessions stop sharing a
//! single serial query path and instead submit turns to a fixed pool of
//! worker threads, each owning its own [`mqa_graph::SearchScratch`]
//! (shared-nothing), behind a bounded submission queue (backpressure, not
//! unbounded memory) with graceful shutdown (drop drains the backlog and
//! joins every worker).
//!
//! The engine works over any [`RetrievalFramework`] — MUST, MR, or JE —
//! because frameworks are `Send + Sync` by contract and expose
//! [`RetrievalFramework::search_scratch`], the entry point that reuses a
//! worker's per-thread search state instead of allocating per query.
//!
//! ```
//! # use mqa_engine::{EngineOptions, QueryEngine};
//! # use mqa_retrieval::{FrameworkKind, MultiModalQuery, RetrievalFramework, RetrievalOutput};
//! # struct Echo;
//! # impl RetrievalFramework for Echo {
//! #     fn kind(&self) -> FrameworkKind { FrameworkKind::Must }
//! #     fn search(&self, _q: &MultiModalQuery, k: usize, _ef: usize) -> RetrievalOutput {
//! #         RetrievalOutput { results: vec![mqa_vector::Candidate::new(k as u32, 0.0)], ..Default::default() }
//! #     }
//! #     fn describe(&self) -> String { "echo".into() }
//! # }
//! let engine = QueryEngine::new(std::sync::Arc::new(Echo), EngineOptions::default());
//! let ticket = engine.submit(MultiModalQuery::text("storm over the bay"), 5, 32).unwrap();
//! let answer = ticket.wait().unwrap();   // runs on a worker thread
//! assert_eq!(answer.ids(), vec![5]);
//! ```
//!
//! An optional [`sched`] stage (see [`EngineOptions::with_sched`]) fronts
//! the pool with deadline-aware micro-batching and admission control:
//! overload resolves to typed [`TicketError::Rejected`] /
//! [`TicketError::Expired`] outcomes, never a silent drop.
//!
//! Instrumentation (all through `mqa-obs`): `engine.pool.queue_depth` gauge,
//! `engine.query.latency_us` latency histogram, `engine.query.submitted` counter,
//! per-worker `engine.worker.<i>.jobs` counters, and the scheduler's
//! `engine.sched.{batches,batch_size,shed_rejected,shed_expired,pending_depth}`.

pub mod allocwitness;
pub mod pool;
pub mod queue;
pub mod sched;
pub mod sync;
pub mod ticket;

pub use pool::{Job, WorkerPool};
pub use queue::BoundedQueue;
pub use sched::{Deadline, SchedOptions};
pub use sync::{lock_ignore_poison, wait_ignore_poison, TracedGuard, TracedMutex};
pub use ticket::{oneshot, Ticket, TicketAborter, TicketError, TicketSender};

use mqa_retrieval::{MultiModalQuery, RetrievalFramework, RetrievalOutput};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed errors of the submission path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Non-blocking submit found the queue at capacity; retry later or use
    /// the blocking path for backpressure.
    QueueFull,
    /// The engine is shutting down and refuses new work.
    ShuttingDown,
    /// The job was abandoned before producing a result (worker panic or
    /// shutdown with the job still queued).
    Canceled,
    /// Admission control shed the query: scheduler queue depth was at the
    /// configured watermark.
    Rejected,
    /// The query's deadline passed before a worker picked it up.
    Expired,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::QueueFull => write!(f, "submission queue is full"),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::Canceled => write!(f, "query was canceled before completion"),
            EngineError::Rejected => write!(f, "query rejected by admission control"),
            EngineError::Expired => write!(f, "query deadline expired before dispatch"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TicketError> for EngineError {
    fn from(err: TicketError) -> Self {
        match err {
            TicketError::Rejected => EngineError::Rejected,
            TicketError::Expired => EngineError::Expired,
            TicketError::Canceled => EngineError::Canceled,
        }
    }
}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads (each owns one scratch).
    pub workers: usize,
    /// Submission-queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// When set, a scheduler stage sits in front of the pool: micro-batch
    /// dispatch, admission watermark, and deadline shedding. `None` keeps
    /// the original direct-to-queue path.
    pub sched: Option<SchedOptions>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: 64,
            sched: None,
        }
    }
}

impl EngineOptions {
    /// Options with `workers` threads and the default queue capacity.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    /// The same options with the scheduler stage enabled.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedOptions) -> Self {
        self.sched = Some(sched);
        self
    }
}

/// The engine: a retrieval framework served by a worker pool, optionally
/// fronted by the deadline-aware [`sched`] stage.
pub struct QueryEngine {
    // Field order is drop order: the scheduler joins its dispatcher (which
    // still submits into the pool) before the pool closes and joins.
    sched: Option<sched::Scheduler>,
    pool: Arc<WorkerPool>,
    framework: Arc<dyn RetrievalFramework>,
}

impl QueryEngine {
    /// Spawns the worker pool over `framework`.
    ///
    /// # Panics
    /// Panics if `options.workers == 0` or `options.queue_cap == 0` (or,
    /// with a scheduler, a zero watermark / max batch).
    pub fn new(framework: Arc<dyn RetrievalFramework>, options: EngineOptions) -> Self {
        let pool = Arc::new(WorkerPool::new(options.workers, options.queue_cap));
        let sched = options
            .sched
            .map(|opts| sched::Scheduler::new(opts, Arc::clone(&pool)));
        Self {
            sched,
            pool,
            framework,
        }
    }

    fn job(
        &self,
        query: MultiModalQuery,
        k: usize,
        ef: usize,
        deadline: Option<Deadline>,
    ) -> (
        Ticket<RetrievalOutput>,
        TicketAborter<RetrievalOutput>,
        Arc<AtomicU64>,
        pool::Job,
    ) {
        let (ticket, sender) = ticket::oneshot();
        let aborter = sender.aborter();
        let worker_aborter = sender.aborter();
        // ALLOC: per-query control-plane cell (like the ticket itself);
        // the dispatcher writes the formed batch size, the worker reads
        // it into the trace — the search it annotates stays allocation-free.
        let batch_cell = Arc::new(AtomicU64::new(0));
        let worker_batch_cell = Arc::clone(&batch_cell);
        let framework = Arc::clone(&self.framework);
        // Inherit the caller's trace when one is active (the session path
        // began it); otherwise mint a detached root so raw engine
        // submissions still produce a complete trace. The context crosses
        // the queue inside the job closure and is re-adopted on the worker.
        let (ctx, owned) = match mqa_obs::trace::current() {
            Some(ctx) => (Some(ctx), None),
            None => {
                let handle = mqa_obs::trace::begin_detached("engine.query");
                (handle.as_ref().map(mqa_obs::TraceHandle::context), handle)
            }
        };
        // ALLOC: per-query control-plane rendezvous (the boxed job); the worker-side search it carries is allocation-free (alloc-witness gate).
        let queue_sw = mqa_obs::Stopwatch::start();
        let job: pool::Job = Box::new(move |scratch| {
            let adopted = ctx.as_ref().map(mqa_obs::TraceContext::adopt);
            if let Some(d) = deadline {
                mqa_obs::trace::note_deadline_budget(d.budget_us());
                // Last-chance expiry check: the deadline may have passed
                // while the job sat in the pool queue. Shedding here (no
                // search run, no queue-wait sample recorded) keeps the
                // served-query latency histograms clean, and `fail`
                // resolves the ticket typed — the closure's sender then
                // drops as a no-op.
                if d.expired() && worker_aborter.fail(TicketError::Expired) {
                    mqa_obs::counter("engine.sched.shed_expired").inc();
                    drop(adopted);
                    // A detached trace (owned handle) finalizes on drop
                    // with outcome "canceled" — still a complete trace.
                    return;
                }
            }
            let batch = worker_batch_cell.load(Ordering::Relaxed);
            if batch > 0 {
                mqa_obs::trace::note_sched_batch(batch);
            }
            let queue_us = queue_sw.elapsed_us();
            mqa_obs::histogram("engine.query.queue_wait_us").record(queue_us);
            mqa_obs::trace::note_queue_wait(queue_us);
            let service_sw = mqa_obs::Stopwatch::start();
            let out = {
                let _service = match ctx.as_ref() {
                    Some(c) => mqa_obs::span_under("engine.query.service", c.root()),
                    None => mqa_obs::span("engine.query.service"),
                };
                framework.search_scratch(&query, k, ef, scratch)
            };
            let service_us = service_sw.elapsed_us();
            mqa_obs::trace::note_service(service_us);
            mqa_obs::trace::note_engine_total(queue_sw.elapsed_us());
            let latency = mqa_obs::histogram("engine.query.latency_us");
            match ctx.as_ref() {
                Some(c) => latency.record_with_exemplar(service_us, c.id()),
                None => latency.record(service_us),
            }
            drop(adopted);
            // Detached traces finalize before the ticket resolves, so a
            // caller that observed `wait()` can already read the trace.
            if let Some(handle) = owned {
                handle.finish();
            }
            // `false` means a shed raced ahead and won the ticket; the
            // result is discarded but the outcome stays typed either way.
            let _delivered = sender.send(out);
        });
        (ticket, aborter, batch_cell, job)
    }

    /// Submits a query; blocks while the queue is full (backpressure).
    /// With the scheduler stage enabled the submission never blocks —
    /// overload resolves to [`EngineError::Rejected`] instead.
    ///
    /// # Errors
    /// Returns [`EngineError::ShuttingDown`] if the engine closed, or
    /// [`EngineError::Rejected`] when admission control sheds the query.
    pub fn submit(
        &self,
        query: MultiModalQuery,
        k: usize,
        ef: usize,
    ) -> Result<Ticket<RetrievalOutput>, EngineError> {
        let (ticket, aborter, batch_cell, job) = self.job(query, k, ef, None);
        match &self.sched {
            Some(s) => s
                .submit(sched::Entry {
                    job,
                    deadline: None,
                    aborter,
                    batch_cell,
                })
                .map_err(EngineError::from)?,
            None => self.pool.submit(job)?,
        }
        mqa_obs::counter("engine.query.submitted").inc();
        Ok(ticket)
    }

    /// Non-blocking submit.
    ///
    /// # Errors
    /// Returns [`EngineError::QueueFull`] under backpressure (direct
    /// path), [`EngineError::Rejected`] at the scheduler watermark, or
    /// [`EngineError::ShuttingDown`] if the engine closed.
    pub fn try_submit(
        &self,
        query: MultiModalQuery,
        k: usize,
        ef: usize,
    ) -> Result<Ticket<RetrievalOutput>, EngineError> {
        let (ticket, aborter, batch_cell, job) = self.job(query, k, ef, None);
        match &self.sched {
            Some(s) => s
                .submit(sched::Entry {
                    job,
                    deadline: None,
                    aborter,
                    batch_cell,
                })
                .map_err(EngineError::from)?,
            None => self.pool.try_submit(job)?,
        }
        mqa_obs::counter("engine.query.submitted").inc();
        Ok(ticket)
    }

    /// Submits a query carrying an optional deadline. Requires no
    /// scheduler: on the direct path the deadline is still checked at
    /// submit and on the worker; with the scheduler it additionally
    /// gates admission and dispatch.
    ///
    /// # Errors
    /// The typed shed outcome: [`TicketError::Expired`] if the deadline
    /// already passed, [`TicketError::Rejected`] at the watermark,
    /// [`TicketError::Canceled`] if the engine is shutting down.
    pub fn submit_with_deadline(
        &self,
        query: MultiModalQuery,
        k: usize,
        ef: usize,
        deadline: Option<Deadline>,
    ) -> Result<Ticket<RetrievalOutput>, TicketError> {
        let (ticket, aborter, batch_cell, job) = self.job(query, k, ef, deadline);
        match &self.sched {
            Some(s) => s.submit(sched::Entry {
                job,
                deadline,
                aborter,
                batch_cell,
            })?,
            None => {
                if let Some(d) = deadline {
                    if d.expired() {
                        aborter.fail(TicketError::Expired);
                        mqa_obs::counter("engine.sched.shed_expired").inc();
                        drop(job);
                        return Err(TicketError::Expired);
                    }
                }
                if self.pool.submit(job).is_err() {
                    // The job was consumed and its sender dropped; make
                    // the shutdown outcome explicit regardless.
                    aborter.fail(TicketError::Canceled);
                    return Err(TicketError::Canceled);
                }
            }
        }
        mqa_obs::counter("engine.query.submitted").inc();
        Ok(ticket)
    }

    /// Submit-and-wait convenience: one query, answered on a worker.
    ///
    /// # Errors
    /// Returns [`EngineError::ShuttingDown`] if the engine closed, or
    /// [`EngineError::Canceled`] if the job was abandoned.
    pub fn retrieve(
        &self,
        query: MultiModalQuery,
        k: usize,
        ef: usize,
    ) -> Result<RetrievalOutput, EngineError> {
        self.submit(query, k, ef)?.wait().map_err(EngineError::from)
    }

    /// Submit-and-wait with a deadline: the typed shed outcome surfaces
    /// directly.
    ///
    /// # Errors
    /// [`TicketError::Rejected`], [`TicketError::Expired`], or
    /// [`TicketError::Canceled`] — exactly the outcome the ticket
    /// resolved to.
    pub fn retrieve_with_deadline(
        &self,
        query: MultiModalQuery,
        k: usize,
        ef: usize,
        deadline: Option<Deadline>,
    ) -> Result<RetrievalOutput, TicketError> {
        self.submit_with_deadline(query, k, ef, deadline)?.wait()
    }

    /// Answers a whole batch concurrently, preserving input order.
    ///
    /// # Errors
    /// Returns the first submission or wait error encountered.
    pub fn retrieve_batch(
        &self,
        queries: Vec<MultiModalQuery>,
        k: usize,
        ef: usize,
    ) -> Result<Vec<RetrievalOutput>, EngineError> {
        let tickets: Vec<Ticket<RetrievalOutput>> = queries
            .into_iter()
            // ALLOC: the batch API materializes one ticket/result list per call.
            .map(|q| self.submit(q, k, ef))
            .collect::<Result<_, _>>()?;
        tickets
            .into_iter()
            .map(|t| t.wait().map_err(EngineError::from))
            // ALLOC: the batch API materializes one ticket/result list per call.
            .collect()
    }

    /// Batch submit-and-wait with per-query typed outcomes, preserving
    /// input order: slot `i` of the result is query `i`'s outcome, shed
    /// or served. Unlike [`QueryEngine::retrieve_batch`], a shed query
    /// does not abort the rest of the batch.
    pub fn retrieve_batch_with_deadline(
        &self,
        queries: Vec<MultiModalQuery>,
        k: usize,
        ef: usize,
        deadline: Option<Deadline>,
    ) -> Vec<Result<RetrievalOutput, TicketError>> {
        // ALLOC: the batch API materializes one ticket/result list per call.
        let tickets: Vec<Result<Ticket<RetrievalOutput>, TicketError>> = queries
            .into_iter()
            .map(|q| self.submit_with_deadline(q, k, ef, deadline))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(Ticket::wait))
            .collect()
    }

    /// The framework the engine serves.
    pub fn framework(&self) -> &Arc<dyn RetrievalFramework> {
        &self.framework
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_retrieval::FrameworkKind;
    use mqa_vector::Candidate;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A framework whose answer encodes (k, query text length) — enough to
    /// verify routing, ordering, and scratch-threading without a corpus.
    struct Probe {
        calls: AtomicUsize,
        delay: std::time::Duration,
    }

    impl RetrievalFramework for Probe {
        fn kind(&self) -> FrameworkKind {
            FrameworkKind::Must
        }

        fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
            mqa_graph::with_pooled(|scratch| self.search_scratch(query, k, ef, scratch))
        }

        fn search_scratch(
            &self,
            query: &MultiModalQuery,
            k: usize,
            _ef: usize,
            scratch: &mut mqa_graph::SearchScratch,
        ) -> RetrievalOutput {
            scratch.force_epoch(1); // prove the scratch is live
            self.calls.fetch_add(1, Ordering::SeqCst);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            let len = query.text.as_deref().map_or(0, str::len);
            RetrievalOutput {
                results: vec![Candidate::new(k as u32, len as f32)],
                ..Default::default()
            }
        }

        fn describe(&self) -> String {
            "probe".into()
        }
    }

    fn probe(delay_ms: u64) -> Arc<Probe> {
        Arc::new(Probe {
            calls: AtomicUsize::new(0),
            delay: std::time::Duration::from_millis(delay_ms),
        })
    }

    #[test]
    fn retrieve_routes_through_framework() {
        let f = probe(0);
        let engine = QueryEngine::new(Arc::<Probe>::clone(&f), EngineOptions::with_workers(2));
        let out = engine
            .retrieve(MultiModalQuery::text("abc"), 7, 32)
            .unwrap();
        assert_eq!(out.ids(), vec![7]);
        assert_eq!(out.results[0].dist, 3.0);
        assert_eq!(f.calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn batch_preserves_input_order() {
        let engine = QueryEngine::new(probe(1), EngineOptions::with_workers(4));
        let queries: Vec<MultiModalQuery> = (1..=12)
            .map(|i| MultiModalQuery::text("x".repeat(i)))
            .collect();
        let outs = engine.retrieve_batch(queries, 3, 16).unwrap();
        let lens: Vec<f32> = outs.iter().map(|o| o.results[0].dist).collect();
        let expect: Vec<f32> = (1..=12).map(|i| i as f32).collect();
        assert_eq!(lens, expect, "batch answers must keep submission order");
    }

    #[test]
    fn try_submit_reports_backpressure() {
        // One slow worker + capacity-1 queue: after one running and one
        // queued job, the next try_submit must see QueueFull.
        let engine = QueryEngine::new(
            probe(150),
            EngineOptions {
                workers: 1,
                queue_cap: 1,
                sched: None,
            },
        );
        let t1 = engine.submit(MultiModalQuery::text("a"), 1, 1).unwrap();
        let mut saw_full = false;
        let mut held = Vec::new();
        for _ in 0..50 {
            match engine.try_submit(MultiModalQuery::text("b"), 1, 1) {
                Err(EngineError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Ok(t) => held.push(t),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_full, "a 1-slot queue behind a slow worker must fill");
        assert!(t1.wait().is_ok());
        for t in held {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn shutdown_completes_accepted_work() {
        let engine = QueryEngine::new(probe(5), EngineOptions::with_workers(2));
        let tickets: Vec<_> = (0..8)
            .map(|_| engine.submit(MultiModalQuery::text("q"), 1, 1).unwrap())
            .collect();
        drop(engine);
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted work must finish on shutdown");
        }
    }

    #[test]
    fn instruments_are_populated() {
        let engine = QueryEngine::new(probe(0), EngineOptions::with_workers(2));
        for _ in 0..6 {
            engine.retrieve(MultiModalQuery::text("q"), 1, 1).unwrap();
        }
        assert!(mqa_obs::counter("engine.query.submitted").get() >= 6);
        assert!(mqa_obs::histogram("engine.query.latency_us").count() >= 6);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(EngineError::QueueFull.to_string().contains("full"));
        assert!(EngineError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(EngineError::Canceled.to_string().contains("canceled"));
        assert!(EngineError::Rejected.to_string().contains("admission"));
        assert!(EngineError::Expired.to_string().contains("deadline"));
    }
}
