//! Deadline semantics, end to end: expired-at-submit shedding, order
//! preservation across partially-shed batches, and exact agreement
//! between the `engine.sched.shed_*` instruments and the typed ticket
//! outcomes callers observe.
//!
//! The shed counters live in the global metrics registry, so every test
//! here serializes on [`scenario_lock`] and measures counter *deltas*.

use mqa_engine::{Deadline, EngineOptions, QueryEngine, SchedOptions, TicketError};
use mqa_retrieval::{FrameworkKind, MultiModalQuery, RetrievalFramework, RetrievalOutput};
use mqa_vector::Candidate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn scenario_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Answers after a fixed delay with the query's text length as the
/// distance — enough to pin per-slot identity in batch outcomes.
struct SlowProbe {
    calls: AtomicUsize,
    delay: Duration,
}

impl RetrievalFramework for SlowProbe {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Must
    }

    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        mqa_graph::with_pooled(|scratch| self.search_scratch(query, k, ef, scratch))
    }

    fn search_scratch(
        &self,
        query: &MultiModalQuery,
        k: usize,
        _ef: usize,
        _scratch: &mut mqa_graph::SearchScratch,
    ) -> RetrievalOutput {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        let len = query.text.as_deref().map_or(0, str::len);
        RetrievalOutput {
            results: vec![Candidate::new(k as u32, len as f32)],
            ..Default::default()
        }
    }

    fn describe(&self) -> String {
        "slow probe".into()
    }
}

fn probe(delay_ms: u64) -> Arc<SlowProbe> {
    Arc::new(SlowProbe {
        calls: AtomicUsize::new(0),
        delay: Duration::from_millis(delay_ms),
    })
}

fn sched_options() -> EngineOptions {
    EngineOptions::with_workers(1).with_sched(SchedOptions {
        watermark: 4,
        max_batch: 2,
    })
}

/// Property: a deadline that is already expired at submit time is shed
/// with typed `Expired` before any work happens — on both the scheduler
/// path and the direct path, for every budget, and the framework is
/// never invoked for the shed query.
#[test]
fn already_expired_deadline_is_rejected_at_submit() {
    let _guard = scenario_lock();
    for use_sched in [false, true] {
        let opts = if use_sched {
            sched_options()
        } else {
            EngineOptions::with_workers(1)
        };
        let f = probe(0);
        let engine = QueryEngine::new(Arc::<SlowProbe>::clone(&f), opts);
        for budget_us in [0u64, 1, 5, 50, 500, 2_000] {
            let deadline = Deadline::in_us(budget_us);
            // Let the budget drain fully so the deadline is expired by
            // the time submit sees it.
            std::thread::sleep(Duration::from_millis(5));
            assert!(deadline.expired(), "budget {budget_us}us must be spent");
            let before = f.calls.load(Ordering::SeqCst);
            let got =
                engine.submit_with_deadline(MultiModalQuery::text("stale"), 3, 16, Some(deadline));
            assert!(
                matches!(got, Err(TicketError::Expired)),
                "sched={use_sched} budget={budget_us}: expected Expired, got {:?}",
                got.err()
            );
            assert_eq!(
                f.calls.load(Ordering::SeqCst),
                before,
                "a shed query must never reach the framework"
            );
        }
        // A live deadline on the same engine still serves normally.
        let out = engine
            .retrieve_with_deadline(
                MultiModalQuery::text("fresh"),
                3,
                16,
                Some(Deadline::in_us(5_000_000)),
            )
            .expect("live-deadline query is served");
        assert_eq!(out.ids(), vec![3]);
    }
}

/// `retrieve_batch_with_deadline` preserves input order even when some
/// tickets resolve `Expired`: slot `i` of the result is query `i`'s
/// outcome, and every served slot carries its own query's fingerprint.
#[test]
fn batch_preserves_order_when_some_tickets_expire() {
    let _guard = scenario_lock();
    let engine = QueryEngine::new(probe(15), sched_options());
    // One 15 ms worker against a 40 ms budget for 8 queries: the head of
    // the batch is served, the tail expires in the queue.
    let queries: Vec<MultiModalQuery> = (1..=8)
        .map(|i| MultiModalQuery::text("x".repeat(i)))
        .collect();
    let outcomes =
        engine.retrieve_batch_with_deadline(queries, 3, 16, Some(Deadline::in_us(40_000)));
    assert_eq!(outcomes.len(), 8, "one outcome slot per query");
    let mut served = 0usize;
    let mut expired = 0usize;
    for (i, got) in outcomes.iter().enumerate() {
        match got {
            Ok(out) => {
                assert_eq!(
                    out.results[0].dist,
                    (i + 1) as f32,
                    "slot {i} answered with another query's result"
                );
                served += 1;
            }
            Err(TicketError::Expired) | Err(TicketError::Rejected) => expired += 1,
            Err(e) => panic!("slot {i}: untyped outcome {e}"),
        }
    }
    assert_eq!(served + expired, 8, "every ticket resolved exactly once");
    assert!(served >= 1, "the batch head must beat a 40 ms budget");
    assert!(expired >= 1, "a 15 ms/query worker must shed the tail");
}

/// The shed fraction the instruments report equals the typed outcomes
/// callers observed — exactly, not approximately: every `Rejected` or
/// `Expired` outcome increments its counter once, and nothing else does.
#[test]
fn shed_counters_equal_observed_ticket_outcomes_exactly() {
    let _guard = scenario_lock();
    let rejected_before = mqa_obs::counter("engine.sched.shed_rejected").get();
    let expired_before = mqa_obs::counter("engine.sched.shed_expired").get();

    let engine = QueryEngine::new(probe(10), sched_options());
    let mut tickets = Vec::new();
    let mut submit_rejected = 0u64;
    let mut submit_expired = 0u64;
    // 24 submissions against watermark 4 and a 10 ms worker: some are
    // rejected at admission, some expire in the queue, the rest serve.
    for i in 0..24 {
        let deadline = Some(Deadline::in_us(if i % 6 == 5 { 0 } else { 60_000 }));
        match engine.submit_with_deadline(MultiModalQuery::text("q"), 1, 8, deadline) {
            Ok(t) => tickets.push(t),
            Err(TicketError::Rejected) => submit_rejected += 1,
            Err(TicketError::Expired) => submit_expired += 1,
            Err(e) => panic!("unexpected submit outcome {e}"),
        }
    }
    let mut served = 0u64;
    let mut wait_expired = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => served += 1,
            Err(TicketError::Expired) => wait_expired += 1,
            Err(e) => panic!("unexpected wait outcome {e}"),
        }
    }
    drop(engine);

    let rejected = mqa_obs::counter("engine.sched.shed_rejected").get() - rejected_before;
    let expired = mqa_obs::counter("engine.sched.shed_expired").get() - expired_before;
    assert_eq!(
        rejected, submit_rejected,
        "shed_rejected must equal observed Rejected outcomes"
    );
    assert_eq!(
        expired,
        submit_expired + wait_expired,
        "shed_expired must equal observed Expired outcomes"
    );
    assert_eq!(
        served + submit_rejected + submit_expired + wait_expired,
        24,
        "every submission resolved to exactly one typed outcome"
    );
    assert!(
        submit_expired >= 1,
        "the zero-budget submissions must shed at submit"
    );
}
