//! Tracing under failure: a worker job that panics must still surface as
//! a finalized trace (outcome `"canceled"`), healthy jobs interleaved
//! with it must all get `"completed"` traces, and a panic must not poison
//! the worker's span stack — a leaked span guard from the dying job would
//! otherwise become the silent parent of every stage the next job records
//! on that thread (the regression `mqa_obs::span::reset_thread_stack`
//! guards against).

use mqa_engine::{EngineOptions, QueryEngine, TicketError};
use mqa_retrieval::{FrameworkKind, MultiModalQuery, RetrievalFramework, RetrievalOutput};
use mqa_vector::Candidate;
use std::sync::Arc;

/// The span a panicking job deliberately leaks (via `mem::forget`) to
/// model a guard stranded by an unwind-through-FFI or forgotten handle.
const LEAKED: &str = "test.leaked.span";

/// Panics on any query whose text is `"boom"` — after leaking a span
/// guard so the worker's thread-local span stack is left dirty.
struct Volatile;

impl RetrievalFramework for Volatile {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Must
    }

    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        mqa_graph::with_pooled(|scratch| self.search_scratch(query, k, ef, scratch))
    }

    fn search_scratch(
        &self,
        query: &MultiModalQuery,
        k: usize,
        _ef: usize,
        _scratch: &mut mqa_graph::SearchScratch,
    ) -> RetrievalOutput {
        if query.text.as_deref() == Some("boom") {
            std::mem::forget(mqa_obs::span(LEAKED));
            panic!("injected job panic");
        }
        let _search = mqa_obs::span("retrieval.must.search");
        RetrievalOutput {
            results: vec![Candidate::new(k as u32, 0.0)],
            ..Default::default()
        }
    }

    fn describe(&self) -> String {
        "volatile traced probe".into()
    }
}

/// One test function: the trace collector is process-global, so keeping
/// the whole scenario in a single `#[test]` avoids cross-test races.
#[test]
fn panicking_jobs_yield_canceled_traces_and_do_not_poison_span_parents() {
    mqa_obs::trace::reset();
    mqa_obs::trace::configure(mqa_obs::TraceConfig {
        slowest: 64,
        sample_every: 1,
        seed: 7,
        max_sampled: 256,
    });
    mqa_obs::trace::enable();

    // One worker: every healthy job after a panic lands on the exact
    // thread the panicking job just dirtied.
    let engine = QueryEngine::new(
        Arc::new(Volatile),
        EngineOptions {
            workers: 1,
            queue_cap: 16,
            sched: None,
        },
    );
    let mut tickets = Vec::new();
    for i in 0..12u32 {
        let text = if i % 3 == 0 {
            "boom".into()
        } else {
            format!("q{i}")
        };
        tickets.push(engine.submit(MultiModalQuery::text(text), 4, 16).unwrap());
    }
    let mut canceled = 0usize;
    let mut answered = 0usize;
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Err(TicketError::Canceled) => {
                assert_eq!(i % 3, 0, "healthy query {i} was canceled");
                canceled += 1;
            }
            Ok(out) => {
                assert_eq!(out.ids(), vec![4]);
                answered += 1;
            }
            Err(e) => panic!("query {i}: unexpected error {e}"),
        }
    }
    assert_eq!(canceled, 4);
    assert_eq!(answered, 8);

    mqa_obs::trace::disable();
    let traces = mqa_obs::trace::snapshot_traces();
    let engine_traces: Vec<_> = traces.iter().filter(|t| t.root == "engine.query").collect();
    assert_eq!(
        engine_traces.len(),
        12,
        "every submitted ticket finalizes exactly one trace"
    );

    let canceled_traces = engine_traces
        .iter()
        .filter(|t| t.outcome == "canceled")
        .count();
    let completed_traces = engine_traces
        .iter()
        .filter(|t| t.outcome == "completed")
        .count();
    assert_eq!(canceled_traces, 4, "one canceled trace per panicked job");
    assert_eq!(completed_traces, 8, "one completed trace per healthy job");

    for t in &engine_traces {
        assert_eq!(t.worker, Some(0), "single-worker pool serviced the job");
        if t.outcome == "completed" {
            assert!(
                t.stages.iter().any(|s| s.name == "retrieval.must.search"),
                "healthy trace {} lost its search stage",
                t.trace_id
            );
        }
        // The span-stack regression proper: if the unwind left the
        // panicking job's forgotten guard on the worker's stack, stages
        // of *later* traces would be parented under it.
        for s in &t.stages {
            assert_ne!(
                s.parent, LEAKED,
                "trace {} stage `{}` is parented under a span leaked by a panicked job",
                t.trace_id, s.name
            );
        }
    }
}
