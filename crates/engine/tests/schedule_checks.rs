//! Deterministic-schedule regression tests for the engine primitives.
//!
//! Every test sweeps seeded interleavings with `mqa-check`: thread
//! bodies yield at `step()` and wrap genuinely blocking engine calls in
//! `blocking()`, so the scheduler explores grant orders the OS would
//! almost never produce and converts any hang into a replayable
//! `Failure::Stuck { seed }` instead of a wedged test run.

use mqa_check::{explore, run_schedule, CheckOptions, Failure, ThreadBody};
use mqa_engine::{oneshot, BoundedQueue, TicketError, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn opts() -> CheckOptions {
    CheckOptions {
        stuck_timeout: Duration::from_millis(150),
        ..CheckOptions::default()
    }
}

/// Regression (shutdown edge 1): `close()` racing a blocked `push` never
/// loses an accepted job — every `Ok` push is eventually popped, every
/// refused push hands the item back via `Closed`.
#[test]
fn close_racing_blocked_push_never_loses_accepted_jobs() {
    let mut traces = std::collections::HashSet::new();
    for seed in 0x5EED_0001u64..0x5EED_0001 + 120 {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let accepted = Arc::new(AtomicUsize::new(0));
        let popped = Arc::new(AtomicUsize::new(0));
        let mut bodies: Vec<ThreadBody> = Vec::new();

        for p in 0..2u32 {
            let q = Arc::clone(&q);
            let accepted = Arc::clone(&accepted);
            bodies.push(Box::new(move |token| {
                for i in 0..2u32 {
                    token.step();
                    if token.blocking(|| q.push(p * 10 + i)).is_ok() {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| {
                token.step();
                q.close();
            }));
        }
        {
            let q = Arc::clone(&q);
            let popped = Arc::clone(&popped);
            bodies.push(Box::new(move |token| loop {
                token.step();
                if token.blocking(|| q.pop()).is_none() {
                    break;
                }
                popped.fetch_add(1, Ordering::SeqCst);
            }));
        }

        // The invariant is checked here, after every thread finished, so
        // producer bookkeeping cannot race the check itself.
        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(outcome.is_ok(), "seed {seed} failed: {:?}", outcome.failure);
        assert_eq!(
            popped.load(Ordering::SeqCst),
            accepted.load(Ordering::SeqCst),
            "an accepted push vanished across close() (replay seed {seed}, trace {:?})",
            outcome.trace
        );
        traces.insert(outcome.trace);
    }
    assert!(
        traces.len() >= 60,
        "sweep barely explored: {}",
        traces.len()
    );
}

/// Regression (shutdown edge 2): a worker panic mid-job surfaces
/// `Canceled` on the ticket instead of hanging `wait()` — and jobs still
/// queued behind the dead worker cancel on pool drop rather than leak.
#[test]
fn worker_panic_cancels_ticket_instead_of_hanging() {
    let make = || -> Vec<ThreadBody> {
        vec![Box::new(move |token| {
            let pool = WorkerPool::new(1, 4);
            let (panicked_ticket, sender) = oneshot::<u32>();
            token.step();
            pool.submit(Box::new(move |_s| {
                let _carry_into_job = sender;
                panic!("deliberate mid-job panic");
            }))
            .expect("healthy pool must accept work");

            let (queued_ticket, queued_sender) = oneshot::<u32>();
            token.step();
            pool.submit(Box::new(move |_s| {
                queued_sender.send(5);
            }))
            .expect("queue has capacity");

            // If either wait() hung, blocking() would never return and the
            // scheduler would report this schedule Stuck.
            let got = token.blocking(|| panicked_ticket.wait());
            assert_eq!(got, Err(TicketError::Canceled));
            token.step();
            drop(pool);
            let got = token.blocking(|| queued_ticket.wait());
            assert!(
                got == Err(TicketError::Canceled) || got == Ok(5),
                "queued job must resolve (ran before the panic reached the \
                 worker, or canceled on drop), got {got:?}"
            );
        })]
    };
    let report = explore(0x5EED_0002, 20, &opts(), make);
    assert!(report.all_ok(), "worker-panic edge: {}", report.failures[0]);
}

/// A dropped `TicketSender` racing `Ticket::wait` always resolves to
/// `Canceled` — never a hang, never a phantom value.
#[test]
fn sender_drop_racing_wait_always_cancels() {
    let make = || -> Vec<ThreadBody> {
        let (ticket, sender) = oneshot::<u32>();
        vec![
            Box::new(move |token| {
                token.step();
                assert_eq!(token.blocking(|| ticket.wait()), Err(TicketError::Canceled));
            }),
            Box::new(move |token| {
                token.step();
                drop(sender);
            }),
        ]
    };
    let report = explore(0x5EED_0003, 60, &opts(), make);
    assert!(report.all_ok(), "sender-drop race: {}", report.failures[0]);
}

/// The coverage gate from the issue: a producer/consumer/closer pipeline
/// over `BoundedQueue` + `Ticket` must reach >= 200 distinct schedules in
/// under 30 s, holding the end-to-end invariant (accepted work is
/// answered, refused work is canceled) in every one of them.
#[test]
fn pipeline_sweep_reaches_200_distinct_schedules() {
    let make = || -> Vec<ThreadBody> {
        let q: Arc<BoundedQueue<mqa_engine::TicketSender<u32>>> = Arc::new(BoundedQueue::new(2));
        let mut bodies: Vec<ThreadBody> = Vec::new();

        for _ in 0..2 {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| {
                for _ in 0..2 {
                    token.step();
                    let (ticket, sender) = oneshot::<u32>();
                    let accepted = token.blocking(|| q.push(sender)).is_ok();
                    let got = token.blocking(|| ticket.wait());
                    if accepted {
                        assert_eq!(got, Ok(7), "accepted work must be answered");
                    } else {
                        assert_eq!(
                            got,
                            Err(TicketError::Canceled),
                            "refused work must cancel, not hang"
                        );
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| loop {
                match token.blocking(|| q.pop()) {
                    Some(sender) => {
                        token.step();
                        sender.send(7);
                    }
                    None => break,
                }
            }));
        }
        {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| {
                token.step();
                token.step();
                q.close();
            }));
        }
        bodies
    };

    let started = Instant::now();
    let report = explore(0x5EED_0004, 240, &opts(), make);
    let elapsed = started.elapsed();
    assert!(
        report.all_ok(),
        "pipeline invariant broke: {}",
        report.failures[0]
    );
    assert!(
        report.distinct_traces >= 200,
        "only {} distinct schedules (need >= 200)",
        report.distinct_traces
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "sweep took {elapsed:?} (budget 30s)"
    );
}

/// Publish-while-search coverage for the online-mutation path: a single
/// writer inserting and tombstoning objects while two searchers run must
/// (a) never surface an object that was dead before the schedule started,
/// (b) show each reader a non-decreasing epoch, and (c) land on the exact
/// scripted end state regardless of interleaving — swept across >= 200
/// distinct seeded schedules.
#[test]
fn publish_while_search_never_surfaces_dead_objects() {
    use mqa_graph::{IndexAlgorithm, UnifiedIndex};
    use mqa_vector::{Metric, MultiVector, MultiVectorStore, Schema, Weights};

    let schema = Schema::text_image(4, 4);
    let object = |tag: usize| -> MultiVector {
        let part = |m: usize| -> Vec<f32> {
            (0..4usize)
                .map(|d| ((tag * 31 + m * 13 + d * 7) % 17) as f32 / 17.0 - 0.5)
                .collect()
        };
        MultiVector::complete(&schema, vec![part(0), part(1)])
    };

    let mut traces = std::collections::HashSet::new();
    for seed in 0x5EED_0006u64..0x5EED_0006 + 240 {
        let mut store = MultiVectorStore::new(schema.clone());
        for i in 0..48 {
            store.push(&object(i));
        }
        let idx = Arc::new(UnifiedIndex::build(
            store,
            Weights::normalized(&[1.0, 1.0]),
            Metric::L2,
            &IndexAlgorithm::mqa_graph(),
        ));
        // Dead before the schedule starts; ids are never reclaimed, so no
        // interleaving may ever surface them again.
        idx.remove_objects(&[1, 5]).expect("pre-kill");

        let mut bodies: Vec<ThreadBody> = Vec::new();
        {
            let idx = Arc::clone(&idx);
            let fresh: Vec<MultiVector> = (100..102).map(object).collect();
            bodies.push(Box::new(move |token| {
                token.step();
                idx.add_objects(&fresh[..1]).expect("insert batch 1");
                token.step();
                idx.remove_objects(&[2]).expect("tombstone 2");
                token.step();
                idx.add_objects(&fresh[1..]).expect("insert batch 2");
                token.step();
                idx.remove_objects(&[7]).expect("tombstone 7");
            }));
        }
        for _ in 0..2 {
            let idx = Arc::clone(&idx);
            let query = object(3);
            bodies.push(Box::new(move |token| {
                let mut last_epoch = 0u64;
                for _ in 0..3 {
                    token.step();
                    let pinned = idx.current();
                    assert!(
                        pinned.epoch() >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {}",
                        pinned.epoch()
                    );
                    last_epoch = pinned.epoch();
                    let ids = idx.search(&query, None, 5, 24).ids();
                    assert!(!ids.is_empty(), "live objects must keep answering");
                    assert!(
                        ids.iter().all(|&id| id != 1 && id != 5),
                        "schedule surfaced a pre-killed object: {ids:?}"
                    );
                }
            }));
        }

        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(outcome.is_ok(), "seed {seed} failed: {:?}", outcome.failure);
        // End state is interleaving-independent: 1 pre-kill publish + 4
        // writer publishes; 48 seeded + 2 inserted slots, 4 tombstoned.
        assert_eq!(idx.epoch(), 5, "replay seed {seed}");
        assert_eq!(idx.len(), 50, "replay seed {seed}");
        assert_eq!(idx.live_len(), 46, "replay seed {seed}");
        traces.insert(outcome.trace);
    }
    assert!(
        traces.len() >= 200,
        "only {} distinct schedules (need >= 200)",
        traces.len()
    );
}

/// The checker catches a reintroduced lost wakeup: this queue copy is the
/// real `BoundedQueue` close path with `notify_one` in place of
/// `notify_all` — with two consumers parked in `pop`, close wakes only
/// one and the other sleeps forever. The sweep must report `Stuck` with
/// a seed that replays to the same failure.
#[test]
fn lost_wakeup_on_close_is_caught_with_replayable_seed() {
    use std::sync::{Condvar, Mutex};

    struct BuggyQueue {
        state: Mutex<(Vec<u32>, bool)>,
        not_empty: Condvar,
    }

    impl BuggyQueue {
        fn new() -> Self {
            Self {
                state: Mutex::new((Vec::new(), false)),
                not_empty: Condvar::new(),
            }
        }

        fn pop(&self) -> Option<u32> {
            let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = s.0.pop() {
                    return Some(v);
                }
                if s.1 {
                    return None;
                }
                s = self.not_empty.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }

        fn close(&self) {
            let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
            s.1 = true;
            // THE BUG: `notify_one` strands every waiter but the first.
            self.not_empty.notify_one();
        }
    }

    let make = || -> Vec<ThreadBody> {
        let q = Arc::new(BuggyQueue::new());
        let mut bodies: Vec<ThreadBody> = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| {
                let _ = token.blocking(|| q.pop());
            }));
        }
        {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| {
                token.step();
                token.step();
                q.close();
            }));
        }
        bodies
    };

    let sweep_opts = CheckOptions {
        stuck_timeout: Duration::from_millis(80),
        ..CheckOptions::default()
    };
    let report = explore(0x5EED_0005, 60, &sweep_opts, make);
    let failure = report
        .failures
        .first()
        .expect("a 60-seed sweep must reach the both-consumers-parked interleaving");
    assert!(
        matches!(failure.failure, Failure::Stuck { .. }),
        "expected Stuck, got {failure}"
    );

    let replay = run_schedule(failure.seed, &sweep_opts, make());
    assert!(
        matches!(replay.failure, Some(Failure::Stuck { .. })),
        "failing seed {} did not replay to Stuck: {:?}",
        failure.seed,
        replay.failure
    );
}

/// Pin for the `BoundedQueue::pop` wakeup protocol (the `// INVARIANT:`
/// discharge at the `notify_one` site): with N>1 pushers blocked on a
/// full queue, K pops must deliver K wakeups to K *distinct* pushers —
/// a lost wakeup would strand a pusher and the schedule would report
/// `Stuck`. Swept across >= 200 distinct seeded interleavings.
#[test]
fn wakeup_protocol_survives_multiple_blocked_pushers() {
    let mut traces = std::collections::HashSet::new();
    for seed in 0x5EED_0007u64..0x5EED_0007 + 260 {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.try_push(0).expect("seed item fills the queue");
        let accepted = Arc::new(AtomicUsize::new(0));
        let mut bodies: Vec<ThreadBody> = Vec::new();

        // Three pushers contend for a single slot: at most one can be in
        // the buffer at a time, so up to three sit blocked in `push`
        // together and each freed slot must wake a distinct one.
        for p in 1..=3u32 {
            let q = Arc::clone(&q);
            let accepted = Arc::clone(&accepted);
            bodies.push(Box::new(move |token| {
                token.step();
                if token.blocking(|| q.push(p)).is_ok() {
                    accepted.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        {
            let q = Arc::clone(&q);
            bodies.push(Box::new(move |token| {
                for _ in 0..4 {
                    token.step();
                    assert!(
                        token.blocking(|| q.pop()).is_some(),
                        "open queue with a pending push must pop"
                    );
                }
            }));
        }

        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(
            outcome.is_ok(),
            "lost wakeup under blocked pushers (replay seed {seed}): {:?}",
            outcome.failure
        );
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            3,
            "every blocked pusher must eventually be admitted (seed {seed})"
        );
        traces.insert(outcome.trace);
    }
    assert!(
        traces.len() >= 200,
        "only {} distinct schedules (need >= 200)",
        traces.len()
    );
}

/// The scheduler's shed path races the worker's send path for the same
/// ticket: `TicketAborter::fail(Expired)` vs `TicketSender::send`. In
/// every interleaving exactly one side must win, the waiter must observe
/// precisely the winner's outcome (typed `Expired` or the value — never a
/// hang, never both), and the loser's report must agree. Swept across
/// >= 200 distinct seeded schedules.
#[test]
fn expiry_racing_dispatch_resolves_exactly_one_outcome() {
    let mut traces = std::collections::HashSet::new();
    for seed in 0x5EED_0008u64..0x5EED_0008 + 260 {
        // Two independent ticket races per schedule widen the
        // interleaving space enough for a >= 200 distinct-trace sweep.
        let sent = Arc::new(AtomicUsize::new(0));
        let failed = Arc::new(AtomicUsize::new(0));
        let outcome_ok = Arc::new(AtomicUsize::new(0));
        let outcome_expired = Arc::new(AtomicUsize::new(0));
        let mut bodies: Vec<ThreadBody> = Vec::new();

        for lane in 0..2u32 {
            let (ticket, sender) = oneshot::<u32>();
            let aborter = sender.aborter();
            {
                let sent = Arc::clone(&sent);
                bodies.push(Box::new(move |token| {
                    token.step();
                    token.step();
                    if sender.send(11 + lane) {
                        sent.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            {
                let failed = Arc::clone(&failed);
                bodies.push(Box::new(move |token| {
                    token.step();
                    token.step();
                    if aborter.fail(TicketError::Expired) {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            {
                let outcome_ok = Arc::clone(&outcome_ok);
                let outcome_expired = Arc::clone(&outcome_expired);
                bodies.push(Box::new(move |token| {
                    token.step();
                    match token.blocking(|| ticket.wait()) {
                        Ok(v) => {
                            assert_eq!(v, 11 + lane);
                            outcome_ok.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(TicketError::Expired) => {
                            outcome_expired.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("untyped ticket outcome: {other:?}"),
                    }
                }));
            }
        }

        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(outcome.is_ok(), "seed {seed} failed: {:?}", outcome.failure);
        let sent = sent.load(Ordering::SeqCst);
        let failed = failed.load(Ordering::SeqCst);
        assert_eq!(
            sent + failed,
            2,
            "exactly one of send/fail must win each lane (seed {seed}: sent={sent} failed={failed})"
        );
        assert_eq!(
            outcome_ok.load(Ordering::SeqCst),
            sent,
            "waiters must see the value iff send won (seed {seed})"
        );
        assert_eq!(
            outcome_expired.load(Ordering::SeqCst),
            failed,
            "waiters must see typed Expired iff the shed won (seed {seed})"
        );
        traces.insert(outcome.trace);
    }
    assert!(
        traces.len() >= 200,
        "only {} distinct schedules (need >= 200)",
        traces.len()
    );
}
