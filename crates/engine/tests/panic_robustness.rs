//! Panic robustness: a job that panics on a worker thread must resolve
//! its [`Ticket`] as [`TicketError::Canceled`] and leave the pool fully
//! serviceable — the worker survives (or is logically replaced) and the
//! backlog keeps draining. A wedged queue here would deadlock every
//! interactive session sharing the engine.

use mqa_engine::{EngineOptions, QueryEngine, TicketError};
use mqa_retrieval::{FrameworkKind, MultiModalQuery, RetrievalFramework, RetrievalOutput};
use mqa_vector::Candidate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Panics on any query whose text is `"boom"`; answers normally otherwise.
struct Volatile {
    answered: AtomicUsize,
}

impl RetrievalFramework for Volatile {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Must
    }

    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        mqa_graph::with_pooled(|scratch| self.search_scratch(query, k, ef, scratch))
    }

    fn search_scratch(
        &self,
        query: &MultiModalQuery,
        k: usize,
        _ef: usize,
        _scratch: &mut mqa_graph::SearchScratch,
    ) -> RetrievalOutput {
        if query.text.as_deref() == Some("boom") {
            panic!("injected job panic");
        }
        self.answered.fetch_add(1, Ordering::SeqCst);
        RetrievalOutput {
            results: vec![Candidate::new(k as u32, 0.0)],
            ..Default::default()
        }
    }

    fn describe(&self) -> String {
        "volatile probe".into()
    }
}

fn engine(workers: usize, queue_cap: usize) -> (Arc<Volatile>, QueryEngine) {
    let f = Arc::new(Volatile {
        answered: AtomicUsize::new(0),
    });
    let e = QueryEngine::new(
        Arc::<Volatile>::clone(&f),
        EngineOptions {
            workers,
            queue_cap,
            sched: None,
        },
    );
    (f, e)
}

#[test]
fn panicking_job_resolves_ticket_as_canceled() {
    let (_f, engine) = engine(1, 4);
    let ticket = engine.submit(MultiModalQuery::text("boom"), 3, 16).unwrap();
    assert!(matches!(ticket.wait(), Err(TicketError::Canceled)));
}

#[test]
fn queue_keeps_draining_after_a_job_panic() {
    // One worker: if the panic killed the thread, the follow-up query
    // would sit in the queue forever and `retrieve` would hang.
    let (f, engine) = engine(1, 4);
    let bad = engine.submit(MultiModalQuery::text("boom"), 3, 16).unwrap();
    let good = engine
        .retrieve(MultiModalQuery::text("still alive"), 5, 16)
        .expect("engine serves queries after a job panic");
    assert_eq!(good.ids(), vec![5]);
    assert!(matches!(bad.wait(), Err(TicketError::Canceled)));
    assert_eq!(f.answered.load(Ordering::SeqCst), 1);
}

#[test]
fn interleaved_panics_do_not_lose_healthy_answers() {
    let (f, engine) = engine(2, 8);
    let mut tickets = Vec::new();
    for i in 0..12 {
        let text = if i % 3 == 0 {
            "boom".into()
        } else {
            format!("q{i}")
        };
        tickets.push(
            engine
                .submit(MultiModalQuery::text(text), i + 1, 16)
                .unwrap(),
        );
    }
    let mut canceled = 0usize;
    let mut answered = 0usize;
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Err(TicketError::Canceled) => {
                assert_eq!(i % 3, 0, "healthy query {i} was canceled");
                canceled += 1;
            }
            Ok(out) => {
                assert_eq!(out.ids(), vec![i as u32 + 1]);
                answered += 1;
            }
            Err(e) => panic!("query {i}: unexpected error {e}"),
        }
    }
    assert_eq!(canceled, 4);
    assert_eq!(answered, 8);
    assert_eq!(f.answered.load(Ordering::SeqCst), 8);
}
