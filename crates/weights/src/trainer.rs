//! The projected-SGD training loop producing [`LearnedWeights`].

use crate::contrastive::triplet_loss;
use crate::triplet::{sample_triplets, Triplet};
use mqa_vector::{Metric, MultiVectorStore, Weights};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the weight learner. The defaults train in
/// milliseconds on corpora of tens of thousands of objects and are what the
/// configuration panel's "vector weight learning" toggle uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Hinge margin between positive and negative fused distances.
    pub margin: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Number of passes over the sampled triplets.
    pub epochs: usize,
    /// Number of triplets to sample.
    pub n_triplets: usize,
    /// Sampling / shuffling seed.
    pub seed: u64,
    /// Distance metric for per-modality distances.
    pub metric: Metric,
    /// Pull toward uniform weights (`λ` of an L2 penalty `λ‖w − 1‖²/2`).
    ///
    /// Without it, one strongly informative modality drives the others'
    /// weights to the floor — optimal for complete-query triplet ranking
    /// but catastrophic for the unified graph's *routing* of partial
    /// queries (a text-only round-1 request must still navigate a graph
    /// whose edges were selected under the learned fused metric). The
    /// default keeps every modality's weight bounded away from zero while
    /// preserving the learned ordering.
    pub uniform_reg: f32,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            margin: 0.5,
            learning_rate: 0.05,
            epochs: 20,
            n_triplets: 2_000,
            seed: 0,
            metric: Metric::L2,
            uniform_reg: 0.6,
        }
    }
}

/// The trained result: normalized weights plus training diagnostics
/// (surfaced by the status-monitoring panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedWeights {
    /// Normalized per-modality weights (`Σ w_m = arity`).
    pub weights: Weights,
    /// Mean hinge loss per epoch.
    pub loss_history: Vec<f32>,
    /// Triplet accuracy (fraction with `d(a,p) < d(a,n)`) under the final
    /// weights, over the training triplets.
    pub triplet_accuracy: f64,
}

/// The contrastive weight learner.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightLearner {
    config: TrainerConfig,
}

impl WeightLearner {
    /// Creates a learner with the given hyper-parameters.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Learns modality weights from a labelled store.
    ///
    /// `labels[i]` is the relevance class of object `i` (for generated
    /// corpora, the latent concept id).
    ///
    /// # Panics
    /// Panics if `labels.len() != store.len()`, or if the labels cannot
    /// supply triplets (see [`sample_triplets`]).
    pub fn learn(&self, store: &MultiVectorStore, labels: &[u32]) -> LearnedWeights {
        assert_eq!(
            labels.len(),
            store.len(),
            "one label per stored object required"
        );
        let arity = store.schema().arity();
        let cfg = &self.config;
        let triplets = sample_triplets(labels, cfg.n_triplets, cfg.seed);

        let mut w = vec![1.0f32; arity];
        let mut history = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            // Decay the step size as training progresses.
            let lr = cfg.learning_rate / (1.0 + epoch as f32 * 0.3);
            let mut epoch_loss = 0.0f64;
            for t in &triplets {
                let (loss, grad) = triplet_loss(store, t, &w, cfg.margin, cfg.metric);
                epoch_loss += loss as f64;
                if loss > 0.0 {
                    for (wm, g) in w.iter_mut().zip(&grad) {
                        *wm -= lr * (g + cfg.uniform_reg * (*wm - 1.0));
                    }
                    project(&mut w);
                }
            }
            history.push((epoch_loss / triplets.len() as f64) as f32);
        }

        let weights = Weights::normalized(&w);
        let accuracy = triplet_accuracy(store, &triplets, weights.as_slice(), cfg.metric);
        LearnedWeights {
            weights,
            loss_history: history,
            triplet_accuracy: accuracy,
        }
    }
}

/// Projects raw weights back onto the constraint set: `w_m ≥ 0` (with a
/// small floor so no modality is irrevocably eliminated mid-training) and
/// `Σ w_m = arity`.
fn project(w: &mut [f32]) {
    const FLOOR: f32 = 1e-3;
    for x in w.iter_mut() {
        *x = x.max(FLOOR);
    }
    let sum: f32 = w.iter().sum();
    let scale = w.len() as f32 / sum;
    for x in w.iter_mut() {
        *x *= scale;
    }
}

/// Fraction of triplets ranked correctly (`d_w(a,p) < d_w(a,n)`) under `w`.
pub(crate) fn triplet_accuracy(
    store: &MultiVectorStore,
    triplets: &[Triplet],
    w: &[f32],
    metric: Metric,
) -> f64 {
    if triplets.is_empty() {
        return 0.0;
    }
    let fused = |a, b| -> f32 {
        crate::contrastive::modality_distances(store, a, b, metric)
            .iter()
            .zip(w)
            .map(|(d, wm)| d * wm)
            .sum()
    };
    let correct = triplets
        .iter()
        .filter(|t| fused(t.anchor, t.positive) < fused(t.anchor, t.negative))
        .count();
    correct as f64 / triplets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;
    use mqa_vector::{MultiVector, Schema};

    /// Builds a corpus where the *text* modality carries all concept signal
    /// and the *image* modality is pure noise.
    fn asymmetric_store(
        n: usize,
        classes: u32,
        informative_noise: f32,
        seed: u64,
    ) -> (MultiVectorStore, Vec<u32>) {
        let schema = Schema::text_image(8, 8);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let gauss = |rng: &mut StdRng| -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..8).map(|_| gauss(&mut rng)).collect())
            .collect();
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = (i as u32) % classes;
            let text: Vec<f32> = centers[c as usize]
                .iter()
                .map(|x| x + informative_noise * gauss(&mut rng))
                .collect();
            let image: Vec<f32> = (0..8).map(|_| gauss(&mut rng)).collect();
            store.push(&MultiVector::complete(&schema, vec![text, image]));
            labels.push(c);
        }
        (store, labels)
    }

    #[test]
    fn learner_upweights_informative_modality() {
        let (store, labels) = asymmetric_store(200, 5, 0.2, 1);
        let learner = WeightLearner::new(TrainerConfig {
            n_triplets: 1_000,
            epochs: 15,
            ..TrainerConfig::default()
        });
        let out = learner.learn(&store, &labels);
        let w = out.weights.as_slice();
        assert!(
            w[0] > 1.4 && w[1] < 0.6,
            "expected text >> image, got {w:?} (accuracy {})",
            out.triplet_accuracy
        );
        assert!(
            out.triplet_accuracy > 0.85,
            "accuracy {}",
            out.triplet_accuracy
        );
    }

    #[test]
    fn learned_beats_uniform_on_triplet_accuracy() {
        let (store, labels) = asymmetric_store(200, 5, 0.4, 2);
        let learner = WeightLearner::new(TrainerConfig {
            n_triplets: 1_000,
            ..TrainerConfig::default()
        });
        let out = learner.learn(&store, &labels);
        let triplets = sample_triplets(&labels, 1_000, 999);
        let uniform_acc = triplet_accuracy(&store, &triplets, &[1.0, 1.0], Metric::L2);
        let learned_acc = triplet_accuracy(&store, &triplets, out.weights.as_slice(), Metric::L2);
        assert!(
            learned_acc > uniform_acc,
            "learned {learned_acc} <= uniform {uniform_acc}"
        );
    }

    #[test]
    fn weights_remain_normalized_and_nonnegative() {
        let (store, labels) = asymmetric_store(100, 4, 0.3, 3);
        let out = WeightLearner::default().learn(&store, &labels);
        let w = out.weights.as_slice();
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!((w.iter().sum::<f32>() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn loss_history_trends_downward() {
        let (store, labels) = asymmetric_store(200, 5, 0.2, 4);
        let out = WeightLearner::new(TrainerConfig {
            epochs: 10,
            n_triplets: 500,
            ..TrainerConfig::default()
        })
        .learn(&store, &labels);
        assert_eq!(out.loss_history.len(), 10);
        let first = out.loss_history[0];
        let last = *out.loss_history.last().unwrap();
        assert!(last <= first, "loss went up: {first} -> {last}");
    }

    #[test]
    fn symmetric_modalities_stay_near_uniform() {
        // Both modalities equally informative: copy the same signal block.
        let schema = Schema::text_image(4, 4);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..120 {
            let c = i % 4;
            let base: Vec<f32> = (0..4)
                .map(|j| (c * 4 + j) as f32 * 0.5 + rng.gen_range(-0.1f32..0.1))
                .collect();
            store.push(&MultiVector::complete(&schema, vec![base.clone(), base]));
            labels.push(c as u32);
        }
        let out = WeightLearner::default().learn(&store, &labels);
        let w = out.weights.as_slice();
        assert!(
            (w[0] - 1.0).abs() < 0.35 && (w[1] - 1.0).abs() < 0.35,
            "{w:?}"
        );
    }

    #[test]
    fn project_enforces_constraints() {
        let mut w = vec![-1.0f32, 3.0, 0.5];
        project(&mut w);
        assert!(w.iter().all(|&x| x > 0.0));
        assert!((w.iter().sum::<f32>() - 3.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "one label per stored object")]
    fn label_count_mismatch_panics() {
        let (store, _) = asymmetric_store(10, 2, 0.2, 6);
        WeightLearner::default().learn(&store, &[0, 1]);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = TrainerConfig::default();
        let j = serde_json::to_string(&cfg).unwrap();
        let back: TrainerConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(cfg, back);
    }
}
