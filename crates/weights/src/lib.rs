//! # mqa-weights
//!
//! The **vector weight learning model** of MUST (the paper's Vector
//! Representation component): learns how important each modality is for
//! similarity measurement, via contrastive learning over triplets.
//!
//! Given a labelled multi-modal corpus, the trainer samples triplets
//! *(anchor, positive, negative)* — positive shares the anchor's label,
//! negative does not — and minimizes the margin hinge loss
//!
//! ```text
//! L(w) = max(0, margin + Σ_m w_m·d_m(a,p) − Σ_m w_m·d_m(a,n))
//! ```
//!
//! by projected stochastic gradient descent over the weight simplex
//! (`w_m ≥ 0`, `Σ w_m = M`). A modality whose distances separate positives
//! from negatives well receives a large weight; a noisy modality's
//! distances cancel in the gradient and its weight decays. The learned
//! weights feed both index construction (the unified navigation graph is
//! built under the fused weighted metric) and query execution.
//!
//! * [`triplet`] — triplet sampling from labelled stores;
//! * [`contrastive`] — loss and gradient of one triplet;
//! * [`trainer`] — the SGD loop and the [`LearnedWeights`] report.

pub mod contrastive;
pub mod trainer;
pub mod triplet;

pub use contrastive::{modality_distances, triplet_loss};
pub use trainer::{LearnedWeights, TrainerConfig, WeightLearner};
pub use triplet::{sample_triplets, Triplet};
