//! Contrastive loss and gradient for one triplet.

use crate::triplet::Triplet;
use mqa_vector::{Metric, MultiVectorStore};

/// Per-modality distances between two stored objects, in schema order.
/// Modalities missing on either side contribute `0.0` (they carry no
/// training signal for the weight of that modality).
pub fn modality_distances(
    store: &MultiVectorStore,
    a: mqa_vector::VecId,
    b: mqa_vector::VecId,
    metric: Metric,
) -> Vec<f32> {
    let arity = store.schema().arity();
    (0..arity)
        .map(|m| match (store.part_of(a, m), store.part_of(b, m)) {
            (Some(x), Some(y)) => metric.distance(x, y),
            _ => 0.0,
        })
        .collect()
}

/// Hinge loss of one triplet under weights `w`, plus the (sub)gradient with
/// respect to `w`.
///
/// Loss: `max(0, margin + Σ w_m·dp_m − Σ w_m·dn_m)` with `dp`/`dn` the
/// per-modality anchor–positive / anchor–negative distances. When the hinge
/// is inactive the gradient is zero.
pub fn triplet_loss(
    store: &MultiVectorStore,
    t: &Triplet,
    w: &[f32],
    margin: f32,
    metric: Metric,
) -> (f32, Vec<f32>) {
    let dp = modality_distances(store, t.anchor, t.positive, metric);
    let dn = modality_distances(store, t.anchor, t.negative, metric);
    debug_assert_eq!(w.len(), dp.len(), "weight arity mismatch");
    let score: f32 = w
        .iter()
        .zip(dp.iter().zip(&dn))
        .map(|(wm, (p, n))| wm * (p - n))
        .sum();
    let loss = (margin + score).max(0.0);
    let grad = if loss > 0.0 {
        dp.iter().zip(&dn).map(|(p, n)| p - n).collect()
    } else {
        vec![0.0; w.len()]
    };
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_vector::{MultiVector, Schema};

    fn store() -> MultiVectorStore {
        let schema = Schema::text_image(2, 2);
        let mut s = MultiVectorStore::new(schema.clone());
        // 0: anchor, 1: near in text / far in image, 2: far in both
        s.push(&MultiVector::complete(
            &schema,
            vec![vec![0.0, 0.0], vec![0.0, 0.0]],
        ));
        s.push(&MultiVector::complete(
            &schema,
            vec![vec![0.1, 0.0], vec![2.0, 0.0]],
        ));
        s.push(&MultiVector::complete(
            &schema,
            vec![vec![3.0, 0.0], vec![3.0, 0.0]],
        ));
        s
    }

    #[test]
    fn modality_distances_per_block() {
        let s = store();
        let d = modality_distances(&s, 0, 1, Metric::L2);
        assert!((d[0] - 0.01).abs() < 1e-5);
        assert!((d[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn missing_modality_contributes_zero() {
        let schema = Schema::text_image(2, 2);
        let mut s = MultiVectorStore::new(schema.clone());
        s.push(&MultiVector::partial(
            &schema,
            vec![Some(vec![0.0, 0.0]), None],
        ));
        s.push(&MultiVector::complete(
            &schema,
            vec![vec![1.0, 0.0], vec![9.0, 9.0]],
        ));
        let d = modality_distances(&s, 0, 1, Metric::L2);
        assert!((d[0] - 1.0).abs() < 1e-6);
        assert_eq!(d[1], 0.0);
    }

    #[test]
    fn satisfied_triplet_has_zero_loss_and_gradient() {
        let s = store();
        let t = Triplet {
            anchor: 0,
            positive: 1,
            negative: 2,
        };
        // text-only weights: dp=0.01, dn=9.0 -> margin easily satisfied
        let (loss, grad) = triplet_loss(&s, &t, &[2.0, 0.0], 1.0, Metric::L2);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn violated_triplet_gradient_points_at_bad_modality() {
        let s = store();
        // swap roles: positive is the far object; hinge active
        let t = Triplet {
            anchor: 0,
            positive: 2,
            negative: 1,
        };
        let (loss, grad) = triplet_loss(&s, &t, &[1.0, 1.0], 1.0, Metric::L2);
        assert!(loss > 0.0);
        // text: dp=9, dn=0.01 -> grad strongly positive (decrease weight)
        assert!(grad[0] > 0.0);
        // image: dp=9, dn=4 -> also positive but smaller
        assert!(grad[1] > 0.0);
        assert!(grad[0] > grad[1]);
    }

    #[test]
    fn loss_matches_manual_computation() {
        let s = store();
        let t = Triplet {
            anchor: 0,
            positive: 1,
            negative: 2,
        };
        let w = [1.0f32, 1.0];
        let (loss, _) = triplet_loss(&s, &t, &w, 1.0, Metric::L2);
        // dp = [0.01, 4], dn = [9, 9]; score = 0.01+4-9-9 = -13.99
        // loss = max(0, 1 - 13.99) = 0
        assert_eq!(loss, 0.0);
        let (loss2, _) = triplet_loss(&s, &t, &w, 20.0, Metric::L2);
        assert!((loss2 - (20.0 - 13.99)).abs() < 1e-3);
    }
}
