//! Triplet sampling from a labelled multi-modal store.

use mqa_rng::StdRng;
use mqa_vector::VecId;
use std::collections::HashMap;

/// One contrastive training example: ids of anchor, positive (same label)
/// and negative (different label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triplet {
    /// Anchor object.
    pub anchor: VecId,
    /// Same-label object (≠ anchor).
    pub positive: VecId,
    /// Different-label object.
    pub negative: VecId,
}

/// Samples `n` triplets from `labels` (one label per object id).
///
/// Only labels with at least two members can anchor a triplet; at least two
/// distinct labels must exist to supply negatives.
///
/// # Panics
/// Panics if `labels` has fewer than two distinct labels, or if no label
/// has two members.
pub fn sample_triplets(labels: &[u32], n: usize, seed: u64) -> Vec<Triplet> {
    let mut by_label: HashMap<u32, Vec<VecId>> = HashMap::new();
    for (id, &l) in labels.iter().enumerate() {
        by_label.entry(l).or_default().push(id as VecId);
    }
    assert!(
        by_label.len() >= 2,
        "triplet sampling needs at least two distinct labels"
    );
    // Sort the label lists: HashMap iteration order varies across
    // processes, and sampling must be a pure function of (labels, seed).
    let mut anchorable: Vec<u32> = by_label
        .iter()
        .filter(|(_, v)| v.len() >= 2)
        .map(|(&l, _)| l)
        .collect();
    anchorable.sort_unstable();
    assert!(
        !anchorable.is_empty(),
        "triplet sampling needs a label with at least two members"
    );
    let mut all_labels: Vec<u32> = by_label.keys().copied().collect();
    all_labels.sort_unstable();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0721_91E7);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let label = anchorable[rng.gen_range(0..anchorable.len())];
        let members = &by_label[&label];
        let a = members[rng.gen_range(0..members.len())];
        let p = loop {
            let p = members[rng.gen_range(0..members.len())];
            if p != a {
                break p;
            }
        };
        let neg_label = loop {
            let l = all_labels[rng.gen_range(0..all_labels.len())];
            if l != label {
                break l;
            }
        };
        let negs = &by_label[&neg_label];
        let n_id = negs[rng.gen_range(0..negs.len())];
        out.push(Triplet {
            anchor: a,
            positive: p,
            negative: n_id,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_respect_labels() {
        let labels = vec![0, 0, 0, 1, 1, 2];
        let triplets = sample_triplets(&labels, 200, 1);
        assert_eq!(triplets.len(), 200);
        for t in &triplets {
            assert_ne!(t.anchor, t.positive);
            assert_eq!(labels[t.anchor as usize], labels[t.positive as usize]);
            assert_ne!(labels[t.anchor as usize], labels[t.negative as usize]);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let labels = vec![0, 0, 1, 1];
        assert_eq!(
            sample_triplets(&labels, 50, 7),
            sample_triplets(&labels, 50, 7)
        );
        assert_ne!(
            sample_triplets(&labels, 50, 7),
            sample_triplets(&labels, 50, 8)
        );
    }

    #[test]
    fn singleton_labels_can_still_be_negatives() {
        // label 2 has one member; it can never anchor but may appear as
        // a negative.
        let labels = vec![0, 0, 0, 0, 2];
        let triplets = sample_triplets(&labels, 300, 3);
        assert!(triplets.iter().any(|t| t.negative == 4));
        assert!(triplets.iter().all(|t| t.anchor != 4 && t.positive != 4));
    }

    #[test]
    #[should_panic(expected = "two distinct labels")]
    fn single_label_panics() {
        sample_triplets(&[0, 0, 0], 10, 1);
    }

    #[test]
    #[should_panic(expected = "two members")]
    fn all_singletons_panics() {
        sample_triplets(&[0, 1, 2], 10, 1);
    }

    #[test]
    fn zero_requested_is_empty() {
        assert!(sample_triplets(&[0, 0, 1], 0, 1).is_empty());
    }
}
