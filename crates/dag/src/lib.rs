//! # mqa-dag
//!
//! A from-scratch Directed-Acyclic-Graph pipeline engine, standing in for
//! the CGraph C++ framework that the MQA paper builds its index-construction
//! pipeline on ("a general pipeline for constructing fine-grained navigation
//! graphs on CGraph, a cross-platform DAG framework").
//!
//! The engine executes named *tasks* connected by dependency edges. Tasks
//! communicate through a typed blackboard ([`Context`]): each task reads
//! artifacts produced by its dependencies and publishes new ones. The
//! executor validates the graph (duplicate names, unknown dependencies,
//! cycles), schedules tasks wave-by-wave in topological order, and runs
//! independent tasks of a wave in parallel on scoped threads.
//!
//! Two layers in the workspace run on this engine:
//!
//! * `mqa-graph`'s five-stage navigation-graph construction pipeline
//!   (initial graph → candidate acquisition → neighbour selection →
//!   connectivity repair → entry-point selection);
//! * `mqa-core`'s coordinator, which wires the five system components of
//!   the paper's Figure 2 into one DAG.
//!
//! Execution produces a [`Trace`] of per-task wall-clock timings, which the
//! status-monitoring panel and the E10 latency-breakdown experiment consume.

pub mod context;
pub mod error;
pub mod executor;
pub mod graph;
pub mod pipeline;

pub use context::{Artifact, Context};
pub use error::DagError;
pub use executor::{ExecMode, Trace};
pub use graph::{Dag, DagBuilder, TaskFn, TaskOutput, WaveViolation};
pub use pipeline::Pipeline;
