//! Error type for DAG construction and execution.

use std::fmt;

/// Everything that can go wrong while building or running a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two tasks were registered under the same name.
    DuplicateTask(String),
    /// A task depends on a name that was never registered.
    UnknownDependency {
        /// The depending task.
        task: String,
        /// The missing dependency name.
        dependency: String,
    },
    /// The dependency graph contains a cycle; the payload is one task on it.
    Cycle(String),
    /// A task returned an error at run time.
    TaskFailed {
        /// The failing task.
        task: String,
        /// Its error message.
        message: String,
    },
    /// A task asked the context for an artifact that is absent or of the
    /// wrong type.
    MissingArtifact(String),
    /// A worker thread running a task panicked.
    TaskPanicked(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DuplicateTask(name) => write!(f, "duplicate task name: {name}"),
            DagError::UnknownDependency { task, dependency } => {
                write!(f, "task `{task}` depends on unknown task `{dependency}`")
            }
            DagError::Cycle(name) => write!(f, "dependency cycle involving task `{name}`"),
            DagError::TaskFailed { task, message } => {
                write!(f, "task `{task}` failed: {message}")
            }
            DagError::MissingArtifact(key) => {
                write!(f, "artifact `{key}` missing or of unexpected type")
            }
            DagError::TaskPanicked(name) => write!(f, "task `{name}` panicked"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DagError::UnknownDependency {
            task: "a".into(),
            dependency: "b".into(),
        };
        assert!(e.to_string().contains("a") && e.to_string().contains("b"));
        assert!(DagError::Cycle("x".into()).to_string().contains("cycle"));
        assert!(DagError::MissingArtifact("k".into())
            .to_string()
            .contains("k"));
    }
}
