//! DAG definition and validation.
//!
//! A [`Dag`] is built through [`DagBuilder`], which registers named tasks
//! with explicit dependency lists and validates the result: unique names,
//! known dependencies, acyclicity. Validation happens at [`DagBuilder::build`]
//! time so executions never have to handle malformed graphs.

use crate::context::Context;
use crate::DagError;
use std::collections::HashMap;

/// Artifacts a task publishes after running: `(key, value)` pairs merged
/// into the [`Context`] when the task's wave completes.
pub type TaskOutput = Vec<(String, crate::context::Artifact)>;

/// A task body: reads dependency artifacts from the context, returns new
/// artifacts (or a failure message).
pub type TaskFn = Box<dyn Fn(&Context) -> Result<TaskOutput, String> + Send + Sync>;

pub(crate) struct TaskNode {
    pub name: String,
    pub deps: Vec<usize>,
    pub run: TaskFn,
}

/// A validated directed acyclic graph of tasks, ready for execution.
pub struct Dag {
    pub(crate) tasks: Vec<TaskNode>,
    /// Tasks grouped into waves: wave `i + 1` only depends on waves `<= i`.
    pub(crate) waves: Vec<Vec<usize>>,
}

impl Dag {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task names in wave order (the order a sequential execution uses).
    pub fn schedule(&self) -> Vec<&str> {
        self.waves
            .iter()
            .flat_map(|w| w.iter().map(|&i| self.tasks[i].name.as_str()))
            .collect()
    }

    /// Number of parallel waves.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Renders the DAG in Graphviz DOT syntax (task names as nodes, one
    /// edge per dependency) — the backend counterpart of the frontend's
    /// workflow visualization.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph mqa {\n  rankdir=LR;\n");
        for t in &self.tasks {
            out.push_str(&format!("  \"{}\";\n", t.name));
        }
        for t in &self.tasks {
            for &d in &t.deps {
                out.push_str(&format!("  \"{}\" -> \"{}\";\n", self.tasks[d].name, t.name));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dag")
            .field("tasks", &self.tasks.iter().map(|t| &t.name).collect::<Vec<_>>())
            .field("waves", &self.waves)
            .finish()
    }
}

/// Builder for [`Dag`]s.
#[derive(Default)]
pub struct DagBuilder {
    names: HashMap<String, usize>,
    tasks: Vec<(String, Vec<String>, TaskFn)>,
    error: Option<DagError>,
}

impl DagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task `name` that runs `f` after every task in `deps`.
    ///
    /// Errors (duplicate names, unknown dependencies) are deferred and
    /// reported by [`DagBuilder::build`], so registration chains fluently.
    pub fn task<F>(mut self, name: &str, deps: &[&str], f: F) -> Self
    where
        F: Fn(&Context) -> Result<TaskOutput, String> + Send + Sync + 'static,
    {
        if self.error.is_some() {
            return self;
        }
        if self.names.contains_key(name) {
            self.error = Some(DagError::DuplicateTask(name.to_string()));
            return self;
        }
        self.names.insert(name.to_string(), self.tasks.len());
        self.tasks.push((
            name.to_string(),
            deps.iter().map(|d| d.to_string()).collect(),
            Box::new(f),
        ));
        self
    }

    /// Validates and finalizes the DAG.
    ///
    /// # Errors
    /// Returns the first construction error ([`DagError::DuplicateTask`],
    /// [`DagError::UnknownDependency`]) or [`DagError::Cycle`] if the
    /// dependency relation is not acyclic.
    pub fn build(self) -> Result<Dag, DagError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut nodes = Vec::with_capacity(self.tasks.len());
        for (name, deps, run) in self.tasks {
            let mut dep_ids = Vec::with_capacity(deps.len());
            for d in deps {
                match self.names.get(&d) {
                    Some(&i) => dep_ids.push(i),
                    None => {
                        return Err(DagError::UnknownDependency { task: name, dependency: d })
                    }
                }
            }
            nodes.push(TaskNode { name, deps: dep_ids, run });
        }

        // Kahn's algorithm, grouped into waves for parallel execution.
        let n = nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            indegree[i] = node.deps.len();
            for &d in &node.deps {
                dependents[d].push(i);
            }
        }
        let mut waves = Vec::new();
        let mut current: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut placed = 0usize;
        while !current.is_empty() {
            placed += current.len();
            let mut next = Vec::new();
            for &i in &current {
                for &j in &dependents[i] {
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        next.push(j);
                    }
                }
            }
            waves.push(std::mem::replace(&mut current, next));
        }
        if placed != n {
            let on_cycle = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| nodes[i].name.clone())
                .unwrap_or_default();
            return Err(DagError::Cycle(on_cycle));
        }
        Ok(Dag { tasks: nodes, waves })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> TaskOutput {
        Vec::new()
    }

    #[test]
    fn linear_chain_schedules_in_order() {
        let dag = DagBuilder::new()
            .task("a", &[], |_| Ok(noop()))
            .task("b", &["a"], |_| Ok(noop()))
            .task("c", &["b"], |_| Ok(noop()))
            .build()
            .unwrap();
        assert_eq!(dag.schedule(), vec!["a", "b", "c"]);
        assert_eq!(dag.wave_count(), 3);
    }

    #[test]
    fn diamond_has_three_waves() {
        let dag = DagBuilder::new()
            .task("src", &[], |_| Ok(noop()))
            .task("left", &["src"], |_| Ok(noop()))
            .task("right", &["src"], |_| Ok(noop()))
            .task("sink", &["left", "right"], |_| Ok(noop()))
            .build()
            .unwrap();
        assert_eq!(dag.wave_count(), 3);
        assert_eq!(dag.waves[1].len(), 2);
    }

    #[test]
    fn duplicate_task_rejected() {
        let err = DagBuilder::new()
            .task("a", &[], |_| Ok(noop()))
            .task("a", &[], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::DuplicateTask("a".into()));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let err = DagBuilder::new()
            .task("a", &["ghost"], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::UnknownDependency { .. }));
    }

    #[test]
    fn forward_reference_is_allowed() {
        // Dependencies are resolved at build() time, so registration order
        // does not constrain the dependency structure.
        let dag = DagBuilder::new()
            .task("a", &["b"], |_| Ok(noop()))
            .task("b", &[], |_| Ok(noop()))
            .build()
            .unwrap();
        assert_eq!(dag.schedule(), vec!["b", "a"]);
    }

    #[test]
    fn two_cycle_rejected() {
        let err = DagBuilder::new()
            .task("a", &["b"], |_| Ok(noop()))
            .task("b", &["a"], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::Cycle(_)));
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let dag = DagBuilder::new()
            .task("load", &[], |_| Ok(noop()))
            .task("encode", &["load"], |_| Ok(noop()))
            .build()
            .unwrap();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"load\" -> \"encode\";"));
        assert!(dot.contains("\"encode\";"));
    }

    #[test]
    fn empty_dag_builds() {
        let dag = DagBuilder::new().build().unwrap();
        assert!(dag.is_empty());
        assert_eq!(dag.wave_count(), 0);
    }

    #[test]
    fn self_dependency_rejected() {
        let err = DagBuilder::new()
            .task("a", &["a"], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::Cycle("a".into()));
    }
}
