//! DAG definition and validation.
//!
//! A [`Dag`] is built through [`DagBuilder`], which registers named tasks
//! with explicit dependency lists and validates the result: unique names,
//! known dependencies, acyclicity. Validation happens at [`DagBuilder::build`]
//! time so executions never have to handle malformed graphs.

use crate::context::Context;
use crate::DagError;
use std::collections::HashMap;

/// Artifacts a task publishes after running: `(key, value)` pairs merged
/// into the [`Context`] when the task's wave completes.
pub type TaskOutput = Vec<(String, crate::context::Artifact)>;

/// A task body: reads dependency artifacts from the context, returns new
/// artifacts (or a failure message).
pub type TaskFn = Box<dyn Fn(&Context) -> Result<TaskOutput, String> + Send + Sync>;

pub(crate) struct TaskNode {
    pub name: String,
    pub deps: Vec<usize>,
    pub run: TaskFn,
}

/// A validated directed acyclic graph of tasks, ready for execution.
pub struct Dag {
    pub(crate) tasks: Vec<TaskNode>,
    /// Tasks grouped into waves: wave `i + 1` only depends on waves `<= i`.
    pub(crate) waves: Vec<Vec<usize>>,
}

impl Dag {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task names in wave order (the order a sequential execution uses).
    pub fn schedule(&self) -> Vec<&str> {
        self.waves
            .iter()
            .flat_map(|w| w.iter().map(|&i| self.tasks[i].name.as_str()))
            .collect()
    }

    /// Number of parallel waves.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Renders the DAG in Graphviz DOT syntax (task names as nodes, one
    /// edge per dependency) — the backend counterpart of the frontend's
    /// workflow visualization.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph mqa {\n  rankdir=LR;\n");
        for t in &self.tasks {
            out.push_str(&format!("  \"{}\";\n", t.name));
        }
        for t in &self.tasks {
            for &d in &t.deps {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.tasks[d].name, t.name
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// A structural defect in a [`Dag`]'s wave schedule, reported by
/// [`Dag::validate`].
///
/// [`DagBuilder::build`] only ever produces sound schedules; this audit
/// exists as an executable statement of the invariants (exercised by
/// `mqa-xtask audit`) and as a tripwire should a future construction or
/// deserialization path break them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveViolation {
    /// A task assigned to no wave.
    MissingTask {
        /// The unscheduled task.
        name: String,
    },
    /// A task assigned to more than one wave slot.
    DuplicateTask {
        /// The doubly scheduled task.
        name: String,
    },
    /// A wave entry outside `0..len()`.
    UnknownIndex {
        /// The wave holding the bad entry.
        wave: usize,
        /// The out-of-range task index.
        index: usize,
    },
    /// A wave with no tasks (waves must be dense).
    EmptyWave {
        /// The empty wave.
        wave: usize,
    },
    /// A dependency scheduled in the same or a later wave than its
    /// dependent (executing the schedule would read unpublished
    /// artifacts).
    ForwardDependency {
        /// The dependent task.
        task: String,
        /// The dependency that is not scheduled strictly earlier.
        dependency: String,
    },
    /// A dependency index outside `0..len()`.
    UnknownDependency {
        /// The task carrying the bad index.
        task: String,
        /// The out-of-range dependency index.
        index: usize,
    },
}

impl std::fmt::Display for WaveViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingTask { name } => write!(f, "task `{name}` is in no wave"),
            Self::DuplicateTask { name } => write!(f, "task `{name}` is scheduled twice"),
            Self::UnknownIndex { wave, index } => {
                write!(f, "wave {wave} references unknown task index {index}")
            }
            Self::EmptyWave { wave } => write!(f, "wave {wave} is empty"),
            Self::ForwardDependency { task, dependency } => {
                write!(
                    f,
                    "task `{task}` runs no later than its dependency `{dependency}`"
                )
            }
            Self::UnknownDependency { task, index } => {
                write!(f, "task `{task}` depends on unknown task index {index}")
            }
        }
    }
}

impl Dag {
    /// Audits the wave schedule against the DAG's structural invariants
    /// and returns every violation found (empty = sound).
    ///
    /// Checked invariants:
    /// - the waves exactly partition the task set (every task in exactly
    ///   one wave, no unknown indices, no empty waves);
    /// - every dependency edge points to a known task scheduled in a
    ///   *strictly earlier* wave — the property the executor relies on to
    ///   run a wave's tasks in parallel.
    pub fn validate(&self) -> Vec<WaveViolation> {
        let n = self.tasks.len();
        let mut out = Vec::new();
        let mut wave_of = vec![usize::MAX; n];
        for (w, wave) in self.waves.iter().enumerate() {
            if wave.is_empty() {
                out.push(WaveViolation::EmptyWave { wave: w });
            }
            for &i in wave {
                match wave_of.get_mut(i) {
                    Some(slot) if *slot == usize::MAX => *slot = w,
                    Some(_) => out.push(WaveViolation::DuplicateTask {
                        name: self.tasks[i].name.clone(),
                    }),
                    None => out.push(WaveViolation::UnknownIndex { wave: w, index: i }),
                }
            }
        }
        for (i, task) in self.tasks.iter().enumerate() {
            if wave_of[i] == usize::MAX {
                out.push(WaveViolation::MissingTask {
                    name: task.name.clone(),
                });
                continue;
            }
            for &d in &task.deps {
                match wave_of.get(d) {
                    Some(&dw) if dw != usize::MAX => {
                        if dw >= wave_of[i] {
                            out.push(WaveViolation::ForwardDependency {
                                task: task.name.clone(),
                                dependency: self.tasks[d].name.clone(),
                            });
                        }
                    }
                    // An unscheduled dependency is already reported as
                    // missing; only a truly unknown index is new here.
                    Some(_) => {}
                    None => out.push(WaveViolation::UnknownDependency {
                        task: task.name.clone(),
                        index: d,
                    }),
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dag")
            .field(
                "tasks",
                &self.tasks.iter().map(|t| &t.name).collect::<Vec<_>>(),
            )
            .field("waves", &self.waves)
            .finish()
    }
}

/// Builder for [`Dag`]s.
#[derive(Default)]
pub struct DagBuilder {
    names: HashMap<String, usize>,
    tasks: Vec<(String, Vec<String>, TaskFn)>,
    error: Option<DagError>,
}

impl DagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task `name` that runs `f` after every task in `deps`.
    ///
    /// Errors (duplicate names, unknown dependencies) are deferred and
    /// reported by [`DagBuilder::build`], so registration chains fluently.
    pub fn task<F>(mut self, name: &str, deps: &[&str], f: F) -> Self
    where
        F: Fn(&Context) -> Result<TaskOutput, String> + Send + Sync + 'static,
    {
        if self.error.is_some() {
            return self;
        }
        if self.names.contains_key(name) {
            self.error = Some(DagError::DuplicateTask(name.to_string()));
            return self;
        }
        self.names.insert(name.to_string(), self.tasks.len());
        self.tasks.push((
            name.to_string(),
            deps.iter().map(|d| d.to_string()).collect(),
            Box::new(f),
        ));
        self
    }

    /// Validates and finalizes the DAG.
    ///
    /// # Errors
    /// Returns the first construction error ([`DagError::DuplicateTask`],
    /// [`DagError::UnknownDependency`]) or [`DagError::Cycle`] if the
    /// dependency relation is not acyclic.
    pub fn build(self) -> Result<Dag, DagError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut nodes = Vec::with_capacity(self.tasks.len());
        for (name, deps, run) in self.tasks {
            let mut dep_ids = Vec::with_capacity(deps.len());
            for d in deps {
                match self.names.get(&d) {
                    Some(&i) => dep_ids.push(i),
                    None => {
                        return Err(DagError::UnknownDependency {
                            task: name,
                            dependency: d,
                        })
                    }
                }
            }
            nodes.push(TaskNode {
                name,
                deps: dep_ids,
                run,
            });
        }

        // Kahn's algorithm, grouped into waves for parallel execution.
        let n = nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            indegree[i] = node.deps.len();
            for &d in &node.deps {
                dependents[d].push(i);
            }
        }
        let mut waves = Vec::new();
        let mut current: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut placed = 0usize;
        while !current.is_empty() {
            placed += current.len();
            let mut next = Vec::new();
            for &i in &current {
                for &j in &dependents[i] {
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        next.push(j);
                    }
                }
            }
            waves.push(std::mem::replace(&mut current, next));
        }
        if placed != n {
            let on_cycle = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| nodes[i].name.clone())
                .unwrap_or_default();
            return Err(DagError::Cycle(on_cycle));
        }
        Ok(Dag {
            tasks: nodes,
            waves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> TaskOutput {
        Vec::new()
    }

    #[test]
    fn linear_chain_schedules_in_order() {
        let dag = DagBuilder::new()
            .task("a", &[], |_| Ok(noop()))
            .task("b", &["a"], |_| Ok(noop()))
            .task("c", &["b"], |_| Ok(noop()))
            .build()
            .unwrap();
        assert_eq!(dag.schedule(), vec!["a", "b", "c"]);
        assert_eq!(dag.wave_count(), 3);
    }

    #[test]
    fn diamond_has_three_waves() {
        let dag = DagBuilder::new()
            .task("src", &[], |_| Ok(noop()))
            .task("left", &["src"], |_| Ok(noop()))
            .task("right", &["src"], |_| Ok(noop()))
            .task("sink", &["left", "right"], |_| Ok(noop()))
            .build()
            .unwrap();
        assert_eq!(dag.wave_count(), 3);
        assert_eq!(dag.waves[1].len(), 2);
    }

    #[test]
    fn duplicate_task_rejected() {
        let err = DagBuilder::new()
            .task("a", &[], |_| Ok(noop()))
            .task("a", &[], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::DuplicateTask("a".into()));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let err = DagBuilder::new()
            .task("a", &["ghost"], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::UnknownDependency { .. }));
    }

    #[test]
    fn forward_reference_is_allowed() {
        // Dependencies are resolved at build() time, so registration order
        // does not constrain the dependency structure.
        let dag = DagBuilder::new()
            .task("a", &["b"], |_| Ok(noop()))
            .task("b", &[], |_| Ok(noop()))
            .build()
            .unwrap();
        assert_eq!(dag.schedule(), vec!["b", "a"]);
    }

    #[test]
    fn two_cycle_rejected() {
        let err = DagBuilder::new()
            .task("a", &["b"], |_| Ok(noop()))
            .task("b", &["a"], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::Cycle(_)));
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let dag = DagBuilder::new()
            .task("load", &[], |_| Ok(noop()))
            .task("encode", &["load"], |_| Ok(noop()))
            .build()
            .unwrap();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"load\" -> \"encode\";"));
        assert!(dot.contains("\"encode\";"));
    }

    #[test]
    fn empty_dag_builds() {
        let dag = DagBuilder::new().build().unwrap();
        assert!(dag.is_empty());
        assert_eq!(dag.wave_count(), 0);
    }

    #[test]
    fn self_dependency_rejected() {
        let err = DagBuilder::new()
            .task("a", &["a"], |_| Ok(noop()))
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::Cycle("a".into()));
    }

    fn diamond() -> Dag {
        DagBuilder::new()
            .task("src", &[], |_| Ok(noop()))
            .task("left", &["src"], |_| Ok(noop()))
            .task("right", &["src"], |_| Ok(noop()))
            .task("sink", &["left", "right"], |_| Ok(noop()))
            .build()
            .unwrap()
    }

    #[test]
    fn validate_accepts_built_dags() {
        assert!(diamond().validate().is_empty());
        assert!(DagBuilder::new().build().unwrap().validate().is_empty());
    }

    #[test]
    fn validate_detects_corrupted_schedules() {
        // A task dropped from its wave.
        let mut dag = diamond();
        dag.waves[1].retain(|&i| i != 1);
        let v = dag.validate();
        assert!(v
            .iter()
            .any(|x| matches!(x, WaveViolation::MissingTask { name } if name == "left")));

        // A task scheduled twice.
        let mut dag = diamond();
        dag.waves[2].push(1);
        let v = dag.validate();
        assert!(v
            .iter()
            .any(|x| matches!(x, WaveViolation::DuplicateTask { name } if name == "left")));

        // A dependency moved after its dependent.
        let mut dag = diamond();
        dag.waves.swap(0, 2);
        let v = dag.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, WaveViolation::ForwardDependency { .. })),
            "{v:?}"
        );

        // An unknown task index and an empty wave.
        let mut dag = diamond();
        dag.waves[0].push(99);
        dag.waves.push(Vec::new());
        let v = dag.validate();
        assert!(v
            .iter()
            .any(|x| matches!(x, WaveViolation::UnknownIndex { index: 99, .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, WaveViolation::EmptyWave { .. })));

        // Every violation renders.
        for x in &v {
            assert!(!x.to_string().is_empty());
        }
    }
}
