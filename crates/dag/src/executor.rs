//! DAG execution: sequential or wave-parallel, with per-task timing.

use crate::context::Context;
use crate::graph::Dag;
use crate::DagError;
use std::time::Duration;

/// How the executor schedules tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tasks run one by one in wave order on the calling thread.
    #[default]
    Sequential,
    /// Tasks of a wave run concurrently on scoped threads; waves remain a
    /// barrier, so a task still observes all of its dependencies' outputs.
    Parallel,
}

/// Wall-clock record of one task execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTiming {
    /// Task name.
    pub name: String,
    /// Index of the wave the task ran in.
    pub wave: usize,
    /// Wall-clock duration of the task body.
    pub elapsed: Duration,
}

/// Execution trace: per-task timings in completion order plus total time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-task timings.
    pub tasks: Vec<TaskTiming>,
    /// End-to-end wall-clock time of the execution.
    pub total: Duration,
}

impl Trace {
    /// Timing of the task named `name`, if it ran.
    pub fn timing_of(&self, name: &str) -> Option<&TaskTiming> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

impl Dag {
    /// Runs the DAG over `ctx`, returning the execution [`Trace`].
    ///
    /// Task outputs are merged into `ctx` at wave boundaries in task
    /// registration order, so a later-registered task deterministically wins
    /// when two tasks of the same wave publish the same key.
    ///
    /// # Errors
    /// Returns the first [`DagError::TaskFailed`] (or
    /// [`DagError::TaskPanicked`]) encountered; in parallel mode the rest of
    /// the failing wave still completes, later waves are not started.
    pub fn execute(&self, ctx: &mut Context, mode: ExecMode) -> Result<Trace, DagError> {
        let mode_tag = match mode {
            ExecMode::Sequential => "sequential",
            ExecMode::Parallel => "parallel",
        };
        let exec_span = mqa_obs::span("dag.execute");
        mqa_obs::counter(&format!("dag.execute.{mode_tag}")).inc();
        mqa_obs::journal::event_str("dag.execute", &[("mode", mode_tag)]);
        let mut trace = Trace::default();
        for (wave_idx, wave) in self.waves.iter().enumerate() {
            let wave_span = mqa_obs::span("dag.wave");
            let results = match mode {
                ExecMode::Sequential => {
                    let mut results = Vec::with_capacity(wave.len());
                    for &t in wave {
                        let node = &self.tasks[t];
                        let task_span = mqa_obs::span(format!("dag.task.{}", node.name));
                        let out = (node.run)(ctx);
                        results.push((t, out, task_span.finish()));
                    }
                    results
                }
                ExecMode::Parallel => self.run_wave_parallel(ctx, wave)?,
            };
            let wave_elapsed = wave_span.finish();
            if mode == ExecMode::Parallel {
                // The barrier wait is the gap between the slowest task and
                // the whole wave (spawn/join overhead plus idle stragglers).
                let slowest = results
                    .iter()
                    .map(|(_, _, elapsed)| *elapsed)
                    .max()
                    .unwrap_or_default();
                let wait = wave_elapsed.saturating_sub(slowest);
                mqa_obs::histogram("dag.wave.barrier_wait_us")
                    .record(u64::try_from(wait.as_micros()).unwrap_or(u64::MAX));
            }
            // Merge outputs (and surface failures) in registration order.
            let mut results = results;
            results.sort_by_key(|(t, _, _)| *t);
            for (t, out, elapsed) in results {
                let node = &self.tasks[t];
                let artifacts = out.map_err(|message| DagError::TaskFailed {
                    task: node.name.clone(),
                    message,
                })?;
                for (key, value) in artifacts {
                    ctx.put_boxed(key, value);
                }
                trace.tasks.push(TaskTiming {
                    name: node.name.clone(),
                    wave: wave_idx,
                    elapsed,
                });
            }
        }
        trace.total = exec_span.finish();
        Ok(trace)
    }

    #[allow(clippy::type_complexity)]
    fn run_wave_parallel(
        &self,
        ctx: &Context,
        wave: &[usize],
    ) -> Result<Vec<(usize, Result<crate::graph::TaskOutput, String>, Duration)>, DagError> {
        if wave.len() == 1 {
            // No point spawning a thread for a single task.
            let node = &self.tasks[wave[0]];
            let task_span = mqa_obs::span(format!("dag.task.{}", node.name));
            let out = (node.run)(ctx);
            return Ok(vec![(wave[0], out, task_span.finish())]);
        }
        let mut results = Vec::with_capacity(wave.len());
        let mut panicked = false;
        std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .iter()
                .map(|&t| {
                    let node = &self.tasks[t];
                    let ctx_ref: &Context = ctx;
                    scope.spawn(move || {
                        // Worker threads start with an empty span stack, so
                        // attach the task to its logical parent by name.
                        let task_span =
                            mqa_obs::span_under(format!("dag.task.{}", node.name), "dag.wave");
                        let out = (node.run)(ctx_ref);
                        (t, out, task_span.finish())
                    })
                })
                .collect();
            // Joining every handle keeps siblings of a panicking task
            // running to completion; the panic is reported afterwards.
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(_) => panicked = true,
                }
            }
        });
        if panicked {
            return Err(DagError::TaskPanicked("<wave>".to_string()));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn sequential_execution_passes_artifacts() {
        let dag = DagBuilder::new()
            .task("produce", &[], |_| {
                Ok(vec![("x".to_string(), Box::new(21u32) as _)])
            })
            .task("double", &["produce"], |ctx| {
                let x = ctx.get::<u32>("x").map_err(|e| e.to_string())?;
                Ok(vec![("y".to_string(), Box::new(x * 2) as _)])
            })
            .build()
            .unwrap();
        let mut ctx = Context::new();
        let trace = dag.execute(&mut ctx, ExecMode::Sequential).unwrap();
        assert_eq!(*ctx.get::<u32>("y").unwrap(), 42);
        assert_eq!(trace.tasks.len(), 2);
        assert!(trace.timing_of("double").is_some());
    }

    #[test]
    fn parallel_wave_runs_all_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut builder = DagBuilder::new().task("src", &[], |_| Ok(Vec::new()));
        for i in 0..8 {
            let c = Arc::clone(&counter);
            builder = builder.task(&format!("worker{i}"), &["src"], move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(Vec::new())
            });
        }
        let dag = builder.build().unwrap();
        let mut ctx = Context::new();
        dag.execute(&mut ctx, ExecMode::Parallel).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let build = || {
            DagBuilder::new()
                .task("a", &[], |_| {
                    Ok(vec![("a".to_string(), Box::new(1u32) as _)])
                })
                .task("b", &["a"], |ctx| {
                    let a = *ctx.get::<u32>("a").map_err(|e| e.to_string())?;
                    Ok(vec![("b".to_string(), Box::new(a + 1) as _)])
                })
                .task("c", &["a"], |ctx| {
                    let a = *ctx.get::<u32>("a").map_err(|e| e.to_string())?;
                    Ok(vec![("c".to_string(), Box::new(a + 2) as _)])
                })
                .task("d", &["b", "c"], |ctx| {
                    let b = *ctx.get::<u32>("b").map_err(|e| e.to_string())?;
                    let c = *ctx.get::<u32>("c").map_err(|e| e.to_string())?;
                    Ok(vec![("d".to_string(), Box::new(b * c) as _)])
                })
                .build()
                .unwrap()
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let mut ctx = Context::new();
            build().execute(&mut ctx, mode).unwrap();
            assert_eq!(*ctx.get::<u32>("d").unwrap(), 6, "mode {mode:?}");
        }
    }

    #[test]
    fn task_failure_reports_name_and_message() {
        let dag = DagBuilder::new()
            .task("boom", &[], |_| Err("kaput".to_string()))
            .build()
            .unwrap();
        let mut ctx = Context::new();
        let err = dag.execute(&mut ctx, ExecMode::Sequential).unwrap_err();
        assert_eq!(
            err,
            DagError::TaskFailed {
                task: "boom".into(),
                message: "kaput".into()
            }
        );
    }

    #[test]
    fn failure_stops_later_waves() {
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let dag = DagBuilder::new()
            .task("boom", &[], |_| Err("x".to_string()))
            .task("after", &["boom"], move |_| {
                ran2.fetch_add(1, Ordering::SeqCst);
                Ok(Vec::new())
            })
            .build()
            .unwrap();
        let mut ctx = Context::new();
        assert!(dag.execute(&mut ctx, ExecMode::Sequential).is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn parallel_task_panic_is_contained() {
        // A panicking task must surface as an error, not poison the
        // process; sibling tasks of the wave still complete.
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let dag = DagBuilder::new()
            .task("boom", &[], |_| panic!("intentional"))
            .task("calm", &[], move |_| {
                done2.fetch_add(1, Ordering::SeqCst);
                Ok(Vec::new())
            })
            .build()
            .unwrap();
        let mut ctx = Context::new();
        let err = dag.execute(&mut ctx, ExecMode::Parallel).unwrap_err();
        assert!(matches!(err, DagError::TaskPanicked(_)));
        assert_eq!(done.load(Ordering::SeqCst), 1, "sibling task was skipped");
    }

    #[test]
    fn same_key_last_registered_wins() {
        let dag = DagBuilder::new()
            .task("first", &[], |_| {
                Ok(vec![("k".to_string(), Box::new(1u32) as _)])
            })
            .task("second", &[], |_| {
                Ok(vec![("k".to_string(), Box::new(2u32) as _)])
            })
            .build()
            .unwrap();
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let mut ctx = Context::new();
            dag.execute(&mut ctx, mode).unwrap();
            assert_eq!(*ctx.get::<u32>("k").unwrap(), 2, "mode {mode:?}");
        }
    }

    #[test]
    fn trace_reports_waves() {
        let dag = DagBuilder::new()
            .task("a", &[], |_| Ok(Vec::new()))
            .task("b", &["a"], |_| Ok(Vec::new()))
            .build()
            .unwrap();
        let mut ctx = Context::new();
        let trace = dag.execute(&mut ctx, ExecMode::Sequential).unwrap();
        assert_eq!(trace.timing_of("a").unwrap().wave, 0);
        assert_eq!(trace.timing_of("b").unwrap().wave, 1);
        assert!(trace.total >= trace.tasks.iter().map(|t| t.elapsed).sum());
    }
}
