//! Linear pipeline convenience layer.
//!
//! Most uses of the DAG engine in this workspace are *pipelines*: an ordered
//! chain of named stages where stage `i + 1` depends exactly on stage `i`.
//! [`Pipeline`] builds that chain without the caller having to spell out
//! dependency lists — this is the shape of both the paper's five-component
//! system flow (Figure 2) and the five-stage index-construction pipeline.

use crate::context::Context;
use crate::executor::{ExecMode, Trace};
use crate::graph::{DagBuilder, TaskOutput};
use crate::DagError;

/// An ordered chain of stages executed via the DAG engine.
#[derive(Default)]
pub struct Pipeline {
    builder: DagBuilder,
    last: Option<String>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self {
            builder: DagBuilder::new(),
            last: None,
        }
    }

    /// Appends a stage that runs after all previously appended stages.
    pub fn stage<F>(mut self, name: &str, f: F) -> Self
    where
        F: Fn(&Context) -> Result<TaskOutput, String> + Send + Sync + 'static,
    {
        let deps: Vec<&str> = self.last.as_deref().into_iter().collect();
        self.builder = self.builder.task(name, &deps, f);
        self.last = Some(name.to_string());
        self
    }

    /// Validates and runs the pipeline sequentially over `ctx`.
    ///
    /// # Errors
    /// Propagates construction errors ([`DagError::DuplicateTask`]) and the
    /// first stage failure.
    pub fn run(self, ctx: &mut Context) -> Result<Trace, DagError> {
        let dag = self.builder.build()?;
        dag.execute(ctx, ExecMode::Sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_run_in_append_order() {
        let mut ctx = Context::new();
        ctx.put("log", Vec::<&'static str>::new());
        // Stages cannot mutate the context directly; thread an artifact.
        let trace = Pipeline::new()
            .stage("one", |_| Ok(vec![("a".to_string(), Box::new(1u32) as _)]))
            .stage("two", |c| {
                let a = *c.get::<u32>("a").map_err(|e| e.to_string())?;
                Ok(vec![("b".to_string(), Box::new(a + 1) as _)])
            })
            .stage("three", |c| {
                let b = *c.get::<u32>("b").map_err(|e| e.to_string())?;
                Ok(vec![("c".to_string(), Box::new(b + 1) as _)])
            })
            .run(&mut ctx)
            .unwrap();
        assert_eq!(*ctx.get::<u32>("c").unwrap(), 3);
        let names: Vec<_> = trace.tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two", "three"]);
    }

    #[test]
    fn duplicate_stage_name_errors() {
        let mut ctx = Context::new();
        let err = Pipeline::new()
            .stage("s", |_| Ok(Vec::new()))
            .stage("s", |_| Ok(Vec::new()))
            .run(&mut ctx)
            .unwrap_err();
        assert!(matches!(err, DagError::DuplicateTask(_)));
    }

    #[test]
    fn stage_failure_propagates() {
        let mut ctx = Context::new();
        let err = Pipeline::new()
            .stage("ok", |_| Ok(Vec::new()))
            .stage("bad", |_| Err("nope".to_string()))
            .run(&mut ctx)
            .unwrap_err();
        assert!(matches!(err, DagError::TaskFailed { .. }));
    }

    #[test]
    fn empty_pipeline_runs() {
        let mut ctx = Context::new();
        let trace = Pipeline::new().run(&mut ctx).unwrap();
        assert!(trace.tasks.is_empty());
    }
}
