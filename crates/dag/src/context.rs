//! The typed blackboard tasks communicate through.
//!
//! A [`Context`] maps string keys to type-erased [`Artifact`]s. Tasks read
//! their inputs with [`Context::get`] and return freshly produced artifacts
//! from their run function; the executor merges those into the context after
//! each wave, so a task never observes a half-written artifact even when the
//! wave ran in parallel.

use crate::DagError;
use std::any::Any;
use std::collections::HashMap;

/// A type-erased, thread-safe artifact value.
pub type Artifact = Box<dyn Any + Send + Sync>;

/// Key→artifact blackboard shared by the tasks of one execution.
#[derive(Default)]
pub struct Context {
    slots: HashMap<String, Artifact>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `key`, replacing any previous artifact.
    pub fn put<T: Any + Send + Sync>(&mut self, key: impl Into<String>, value: T) {
        self.slots.insert(key.into(), Box::new(value));
    }

    /// Borrows the artifact under `key` as type `T`.
    ///
    /// # Errors
    /// Returns [`DagError::MissingArtifact`] if the key is absent or the
    /// stored value is not a `T`.
    pub fn get<T: Any + Send + Sync>(&self, key: &str) -> Result<&T, DagError> {
        self.slots
            .get(key)
            .and_then(|a| a.downcast_ref::<T>())
            // ALLOC: error path only — the artifact name is copied into the miss diagnostic.
            .ok_or_else(|| DagError::MissingArtifact(key.to_string()))
    }

    /// Removes and returns the artifact under `key` as a `T`.
    ///
    /// # Errors
    /// Returns [`DagError::MissingArtifact`] if the key is absent or the
    /// stored value is not a `T` (in the type-mismatch case the artifact is
    /// left in place).
    pub fn take<T: Any + Send + Sync>(&mut self, key: &str) -> Result<T, DagError> {
        match self.slots.remove(key) {
            // ALLOC: error path only — the artifact name is copied into the miss diagnostic.
            None => Err(DagError::MissingArtifact(key.to_string())),
            Some(boxed) => match boxed.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(boxed) => {
                    // Type mismatch: restore the artifact, as documented.
                    // ALLOC: DAG artifact hand-off between pipeline stages (and its miss diagnostic); not the steady-state search kernel.
                    self.slots.insert(key.to_string(), boxed);
                    Err(DagError::MissingArtifact(key.to_string()))
                }
            },
        }
    }

    /// Stores an already-boxed artifact (used by the executor's merge
    /// step; prefer [`Context::put`] in application code).
    pub fn put_boxed(&mut self, key: String, value: Artifact) {
        self.slots.insert(key, value);
    }

    /// Whether an artifact exists under `key` (of any type).
    pub fn contains(&self, key: &str) -> bool {
        self.slots.contains_key(key)
    }

    /// All keys currently present, unordered.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.slots.keys().map(String::as_str)
    }

    /// Number of artifacts held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut keys: Vec<_> = self.slots.keys().collect();
        keys.sort();
        f.debug_struct("Context").field("keys", &keys).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut ctx = Context::new();
        ctx.put("answer", 42u32);
        assert_eq!(*ctx.get::<u32>("answer").unwrap(), 42);
    }

    #[test]
    fn get_wrong_type_is_missing() {
        let mut ctx = Context::new();
        ctx.put("answer", 42u32);
        assert!(matches!(
            ctx.get::<String>("answer"),
            Err(DagError::MissingArtifact(_))
        ));
    }

    #[test]
    fn get_absent_key_is_missing() {
        let ctx = Context::new();
        assert!(ctx.get::<u32>("nope").is_err());
    }

    #[test]
    fn take_removes_value() {
        let mut ctx = Context::new();
        ctx.put("v", vec![1u8, 2, 3]);
        let v: Vec<u8> = ctx.take("v").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!ctx.contains("v"));
    }

    #[test]
    fn take_wrong_type_leaves_value() {
        let mut ctx = Context::new();
        ctx.put("v", 1u8);
        assert!(ctx.take::<u16>("v").is_err());
        assert!(ctx.contains("v"));
    }

    #[test]
    fn put_replaces_existing() {
        let mut ctx = Context::new();
        ctx.put("k", 1u32);
        ctx.put("k", 2u32);
        assert_eq!(*ctx.get::<u32>("k").unwrap(), 2);
        assert_eq!(ctx.len(), 1);
    }
}
