//! 64-bit FNV-1a fingerprints for cache keys.
//!
//! Cache keys must be cheap, deterministic, and order-sensitive — the
//! query `("red", k=5)` and `("red5", k=)` must not collide by
//! concatenation. The builder feeds every field through FNV-1a with an
//! explicit length/tag byte between variable-length fields, and floats
//! are hashed by bit pattern so `-0.0`, `0.0` and NaN payloads are all
//! distinguished exactly as the search path distinguishes them.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A consuming builder over the FNV-1a state.
///
/// ```
/// use mqa_cache::Fingerprint;
/// let a = Fingerprint::new().str("red dress").u64(5).finish();
/// let b = Fingerprint::new().str("red dress").u64(5).finish();
/// let c = Fingerprint::new().str("red dres").u64(5).finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// The empty fingerprint (FNV offset basis).
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds a `usize`.
    pub fn usize(self, v: usize) -> Self {
        self.u64(v as u64)
    }

    /// Feeds an `f32` by bit pattern.
    pub fn f32(self, v: f32) -> Self {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Feeds a string, length-prefixed so adjacent strings cannot blur.
    pub fn str(self, s: &str) -> Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// Feeds a float slice, length-prefixed.
    pub fn f32_slice(self, vs: &[f32]) -> Self {
        let mut fp = self.usize(vs.len());
        for &v in vs {
            fp = fp.f32(v);
        }
        fp
    }

    /// Feeds an optional field: presence is part of the key.
    pub fn opt_str(self, s: Option<&str>) -> Self {
        match s {
            Some(s) => self.u64(1).str(s),
            None => self.u64(0),
        }
    }

    /// Feeds an optional float slice: presence is part of the key.
    pub fn opt_f32_slice(self, vs: Option<&[f32]>) -> Self {
        match vs {
            Some(vs) => self.u64(1).f32_slice(vs),
            None => self.u64(0),
        }
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = Fingerprint::new().u64(1).u64(2).finish();
        let b = Fingerprint::new().u64(1).u64(2).finish();
        let c = Fingerprint::new().u64(2).u64(1).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_prefix_prevents_concatenation_blur() {
        let a = Fingerprint::new().str("ab").str("c").finish();
        let b = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn float_bit_patterns_distinguished() {
        let pos = Fingerprint::new().f32(0.0).finish();
        let neg = Fingerprint::new().f32(-0.0).finish();
        assert_ne!(pos, neg);
        let nan = Fingerprint::new().f32(f32::NAN).finish();
        let nan2 = Fingerprint::new().f32(f32::NAN).finish();
        assert_eq!(nan, nan2);
    }

    #[test]
    fn none_and_empty_are_distinct() {
        let none = Fingerprint::new().opt_f32_slice(None).finish();
        let empty = Fingerprint::new().opt_f32_slice(Some(&[])).finish();
        assert_ne!(none, empty);
        let none_s = Fingerprint::new().opt_str(None).finish();
        let empty_s = Fingerprint::new().opt_str(Some("")).finish();
        assert_ne!(none_s, empty_s);
    }

    #[test]
    fn matches_reference_fnv1a() {
        // FNV-1a of "a" (0x61): (basis ^ 0x61) * prime.
        let expect = (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME);
        assert_eq!(Fingerprint::new().bytes(b"a").finish(), expect);
    }
}
