//! The Clock (second-chance) replacement core and its mutex-guarded shard.
//!
//! Clock approximates LRU with O(1) bookkeeping per access: entries sit
//! on a circular buffer with a reference bit; a hit sets the bit, and
//! eviction sweeps a hand that clears set bits and evicts the first
//! clear one it finds. Every entry is therefore granted one "second
//! chance" sweep before leaving — hot entries keep getting re-armed and
//! effectively pin themselves.

use crate::lock_ignore_poison;
use std::collections::HashMap;
use std::sync::Mutex;

/// One cache slot: a key, its value, and the second-chance bit.
struct Slot<V> {
    key: u64,
    value: V,
    referenced: bool,
}

/// Outcome of a presence probe ([`CacheShard::touch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Touch {
    /// The key was already resident.
    pub hit: bool,
    /// Admitting the key evicted another entry.
    pub evicted: bool,
}

/// The single-threaded Clock core: a fixed-capacity key → value map with
/// second-chance eviction. Wrap it in [`CacheShard`] for shared use.
pub struct ClockCore<V> {
    capacity: usize,
    slots: Vec<Slot<V>>,
    map: HashMap<u64, usize>,
    hand: usize,
}

impl<V> ClockCore<V> {
    /// An empty core holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be >= 1");
        Self {
            capacity,
            slots: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::new(),
            hand: 0,
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is resident (does not arm the reference bit).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Looks `key` up, arming its second-chance bit on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let idx = *self.map.get(&key)?;
        // INVARIANT: map values are always valid slot indices — entries are
        // inserted with `slots.len()` or a swept in-bounds victim index.
        self.slots[idx].referenced = true;
        Some(&self.slots[idx].value)
    }

    /// Inserts (or refreshes) `key`, evicting a victim when full.
    /// Returns the evicted key, if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<u64> {
        if let Some(&idx) = self.map.get(&key) {
            // INVARIANT: map values are always valid slot indices.
            self.slots[idx].value = value;
            self.slots[idx].referenced = true;
            return None;
        }
        if self.slots.len() < self.capacity {
            // ALLOC: cache admission on a miss; the steady-state hit path never inserts.
            self.map.insert(key, self.slots.len());
            // New entries enter unarmed: only a subsequent hit earns the
            // second chance, so a one-shot scan can never flush the
            // re-referenced working set (scan resistance).
            self.slots.push(Slot {
                key,
                value,
                referenced: false,
            });
            return None;
        }
        // Sweep the hand: clear armed bits until an unarmed victim turns
        // up. Terminates within two revolutions — the first pass can at
        // worst clear every bit.
        loop {
            let idx = self.hand;
            // INVARIANT: this branch runs only when slots.len() == capacity,
            // and capacity >= 1 is asserted in `new`; `idx` wraps mod len.
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[idx].referenced {
                self.slots[idx].referenced = false;
                continue;
            }
            // INVARIANT: idx < slots.len() (wrapped above), so the victim
            // slot reads and rewrite stay in bounds.
            let old = self.slots[idx].key;
            self.slots[idx] = Slot {
                key,
                value,
                referenced: false,
            };
            self.map.remove(&old);
            // ALLOC: cache admission on a miss; the steady-state hit path never inserts.
            self.map.insert(key, idx);
            return Some(old);
        }
    }

    /// Drops every resident entry, returning how many were dropped. The
    /// capacity and hand position survive, so refill behaviour matches a
    /// fresh core.
    pub fn clear(&mut self) -> usize {
        let dropped = self.slots.len();
        self.slots.clear();
        self.map.clear();
        self.hand = 0;
        dropped
    }

    /// Presence probe: arms the bit on a hit, admits the key on a miss.
    pub fn touch(&mut self, key: u64) -> Touch
    where
        V: Default,
    {
        if self.get(key).is_some() {
            return Touch {
                hit: true,
                evicted: false,
            };
        }
        let evicted = self.insert(key, V::default()).is_some();
        Touch {
            hit: false,
            evicted,
        }
    }
}

/// A [`ClockCore`] behind one mutex — the unit of sharding. All lock
/// acquisitions go through `lock_ignore_poison` and every method drops
/// the guard before returning, so a shard can never participate in a
/// lock-order cycle.
pub struct CacheShard<V> {
    slots: Mutex<ClockCore<V>>,
}

impl<V> CacheShard<V> {
    /// An empty shard holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(ClockCore::new(capacity)),
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        let core = lock_ignore_poison(&self.slots);
        core.len()
    }

    /// Whether the shard holds nothing.
    pub fn is_empty(&self) -> bool {
        let core = lock_ignore_poison(&self.slots);
        core.is_empty()
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        let core = lock_ignore_poison(&self.slots);
        core.capacity()
    }

    /// Presence probe: hit arms the second-chance bit, miss admits the
    /// key (possibly evicting).
    pub fn touch(&self, key: u64) -> Touch
    where
        V: Default,
    {
        let mut core = lock_ignore_poison(&self.slots);
        core.touch(key)
    }

    /// Clones the value under `key`, arming its bit on a hit.
    pub fn get(&self, key: u64) -> Option<V>
    where
        V: Clone,
    {
        let mut core = lock_ignore_poison(&self.slots);
        core.get(key).cloned()
    }

    /// Inserts (or refreshes) `key`; returns true when a victim was
    /// evicted.
    pub fn insert(&self, key: u64, value: V) -> bool {
        let mut core = lock_ignore_poison(&self.slots);
        core.insert(key, value).is_some()
    }

    /// Drops every resident entry; returns how many were dropped.
    pub fn clear(&self) -> usize {
        let mut core = lock_ignore_poison(&self.slots);
        core.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_without_eviction() {
        let mut c = ClockCore::new(4);
        for k in 0..4u64 {
            assert_eq!(c.insert(k, k * 10), None);
        }
        assert_eq!(c.len(), 4);
        for k in 0..4u64 {
            assert_eq!(c.get(k), Some(&(k * 10)));
        }
    }

    #[test]
    fn evicts_exactly_one_when_full() {
        let mut c = ClockCore::new(2);
        c.insert(1, ());
        c.insert(2, ());
        let evicted = c.insert(3, ());
        assert!(evicted.is_some());
        assert_eq!(c.len(), 2);
        assert!(c.contains(3));
    }

    #[test]
    fn second_chance_protects_hot_entry() {
        let mut c = ClockCore::new(2);
        c.insert(1, ());
        c.insert(2, ());
        // Re-arm 1 repeatedly while streaming cold keys through: the hot
        // key must survive every sweep.
        for cold in 10..20u64 {
            assert!(c.get(1).is_some(), "hot key evicted at {cold}");
            c.insert(cold, ());
        }
        assert!(c.contains(1));
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = ClockCore::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.get(1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn touch_reports_hits_misses_evictions() {
        let mut c: ClockCore<()> = ClockCore::new(2);
        assert_eq!(
            c.touch(7),
            Touch {
                hit: false,
                evicted: false
            }
        );
        assert_eq!(
            c.touch(7),
            Touch {
                hit: true,
                evicted: false
            }
        );
        c.touch(8);
        // 7 and 8 are both armed; admitting 9 sweeps both bits clear and
        // evicts one of them.
        assert_eq!(
            c.touch(9),
            Touch {
                hit: false,
                evicted: true
            }
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_and_refills_cleanly() {
        let mut c = ClockCore::new(4);
        for k in 0..4u64 {
            c.insert(k, ());
        }
        assert_eq!(c.clear(), 4);
        assert!(c.is_empty());
        assert!(!c.contains(1));
        // Refill works exactly like a fresh core.
        for k in 10..14u64 {
            assert_eq!(c.insert(k, ()), None);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn shard_len_never_exceeds_capacity_under_threads() {
        use std::sync::Arc;
        let shard: Arc<CacheShard<()>> = Arc::new(CacheShard::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        shard.touch(t * 1000 + (i % 50));
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        assert!(shard.len() <= 8);
        assert!(!shard.is_empty());
    }
}
