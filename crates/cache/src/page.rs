//! The shared Starling page cache.
//!
//! A presence cache over 4 KiB page ids: the paged index asks
//! [`PageCache::probe`] before charging the simulated device latency for
//! a page read. Hits are free (the page is "resident in the block
//! cache"), misses admit the page and pay the device. Sharded so the
//! `QueryEngine` workers contend on different mutexes — consecutive page
//! ids land on different shards.
//!
//! Instrumented through `mqa-obs` under `cache.page.*`; metric handles
//! are resolved once at construction so the hot path never touches the
//! registry mutex, and they are recorded only after the shard guard has
//! been dropped.

use crate::clock::CacheShard;
use mqa_obs::{Counter, Gauge, Histogram, Stopwatch};
use std::sync::Arc;

/// Shard count (power of two; page id low bits select the shard).
const SHARDS: usize = 8;

/// A sharded presence cache over page ids, shared across search threads.
pub struct PageCache {
    shards: Vec<CacheShard<()>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    hit_rate: Gauge,
    lookup_us: Arc<Histogram>,
}

impl PageCache {
    /// Default total capacity in pages (≈ 16 MiB of simulated 4 KiB
    /// pages — a small fraction of any interesting corpus, but enough to
    /// hold the hot neighbourhoods dialogue rounds keep re-touching).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A cache holding at most ~`capacity` pages (rounded up to a
    /// multiple of the shard count; `capacity` is clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| CacheShard::new(per_shard)).collect(),
            capacity: per_shard * SHARDS,
            hits: mqa_obs::counter("cache.page.hits"),
            misses: mqa_obs::counter("cache.page.misses"),
            evictions: mqa_obs::counter("cache.page.evictions"),
            invalidations: mqa_obs::counter("cache.page.invalidations"),
            hit_rate: mqa_obs::gauge("cache.page.hit_rate"),
            lookup_us: mqa_obs::histogram("cache.page.lookup_us"),
        }
    }

    /// A cache with [`PageCache::DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }

    /// Total page capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(CacheShard::len).sum()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(CacheShard::is_empty)
    }

    /// Probes the cache for `page`. Returns `true` on a hit (the page is
    /// resident — no device read needed); on a miss the page is admitted
    /// (possibly evicting a cold one) and `false` says the caller must
    /// pay the device read.
    pub fn probe(&self, page: u32) -> bool {
        let sw = Stopwatch::start();
        // INVARIANT: `% SHARDS` keeps the index in 0..SHARDS and the const
        // divisor is non-zero, so shard selection cannot panic.
        let touch = self.shards[page as usize % SHARDS].touch(u64::from(page));
        // The shard guard is gone; record on pre-resolved handles.
        if touch.hit {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        if touch.evicted {
            self.evictions.inc();
        }
        let h = self.hits.get() as f64;
        let m = self.misses.get() as f64;
        // INVARIANT: f64 division — the `.max(1.0)` clamp avoids 0/0 NaN
        // and float division cannot panic.
        self.hit_rate.set(h / (h + m).max(1.0));
        self.lookup_us.record(sw.elapsed_us());
        touch.hit
    }

    /// Drops every resident page and returns how many were dropped. Used
    /// when the page *layout* changes underneath the cache (index
    /// compaction re-lays vertices onto pages), at which point resident
    /// page ids no longer name the same contents.
    pub fn invalidate_all(&self) -> usize {
        let dropped: usize = self.shards.iter().map(CacheShard::clear).sum();
        self.invalidations.add(dropped as u64);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_warm_hit() {
        let cache = PageCache::new(64);
        assert!(!cache.probe(3), "first touch must miss");
        assert!(cache.probe(3), "second touch must hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let cache = PageCache::new(16);
        for page in 0..1000u32 {
            cache.probe(page);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(!cache.is_empty());
    }

    #[test]
    fn tiny_capacity_still_works() {
        let cache = PageCache::new(1);
        assert_eq!(cache.capacity(), SHARDS); // one slot per shard
        for page in 0..100u32 {
            cache.probe(page);
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn metrics_move_on_probe() {
        let before_h = mqa_obs::counter("cache.page.hits").get();
        let before_m = mqa_obs::counter("cache.page.misses").get();
        let cache = PageCache::new(32);
        cache.probe(9);
        cache.probe(9);
        assert!(mqa_obs::counter("cache.page.hits").get() > before_h);
        assert!(mqa_obs::counter("cache.page.misses").get() > before_m);
    }

    #[test]
    fn invalidate_all_empties_and_counts() {
        let before = mqa_obs::counter("cache.page.invalidations").get();
        let cache = PageCache::new(64);
        for page in 0..10u32 {
            cache.probe(page);
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.invalidate_all(), 10);
        assert!(cache.is_empty());
        assert_eq!(
            mqa_obs::counter("cache.page.invalidations").get(),
            before + 10
        );
        // Every former resident now misses again.
        assert!(!cache.probe(3));
    }

    #[test]
    fn concurrent_probes_stay_bounded() {
        use std::sync::Arc;
        let cache = Arc::new(PageCache::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    for i in 0..2_000u32 {
                        if cache.probe((t * 37 + i) % 128) {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        let mut total_hits = 0;
        for h in handles {
            total_hits += h.join().unwrap_or(0);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(
            total_hits > 0,
            "a 128-page working set over 64 slots must hit"
        );
    }
}
