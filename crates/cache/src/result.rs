//! The turn-level result cache.
//!
//! Maps a query fingerprint to a cloned retrieval output so a repeated
//! dialogue turn (same text, image, weight override and knobs under the
//! same configuration) skips the search entirely. Invalidation is O(1):
//! a generation counter participates in every slot key, so
//! [`ResultCache::invalidate_all`] bumps it and all previous entries
//! become unreachable, aging out of the Clock shards naturally.
//!
//! Instrumented under `cache.result.*` with handles resolved at
//! construction; metrics are recorded after shard guards drop.

use crate::clock::CacheShard;
use crate::fingerprint::Fingerprint;
use mqa_obs::Counter;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard count (power of two; mixed-key low bits select the shard).
const SHARDS: usize = 4;

/// A sharded, generation-versioned value cache keyed by `u64`
/// fingerprints.
pub struct ResultCache<V> {
    shards: Vec<CacheShard<V>>,
    generation: AtomicU64,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl<V: Clone> ResultCache<V> {
    /// A cache holding at most ~`capacity` entries (rounded up to a
    /// multiple of the shard count; clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| CacheShard::new(per_shard)).collect(),
            generation: AtomicU64::new(0),
            capacity: per_shard * SHARDS,
            hits: mqa_obs::counter("cache.result.hits"),
            misses: mqa_obs::counter("cache.result.misses"),
            evictions: mqa_obs::counter("cache.result.evictions"),
            invalidations: mqa_obs::counter("cache.result.invalidations"),
        }
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident (stale generations included until they
    /// age out).
    pub fn len(&self) -> usize {
        self.shards.iter().map(CacheShard::len).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(CacheShard::is_empty)
    }

    /// The current generation (bumped by [`ResultCache::invalidate_all`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Drops every cached entry in O(1) by bumping the generation: keys
    /// from earlier generations can no longer be produced, so their
    /// entries are unreachable and get evicted by normal Clock pressure.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.invalidations.inc();
    }

    /// Mixes the caller's key with the live generation.
    fn slot_key(&self, key: u64) -> u64 {
        Fingerprint::new().u64(key).u64(self.generation()).finish()
    }

    fn shard(&self, slot_key: u64) -> &CacheShard<V> {
        // INVARIANT: `% SHARDS` keeps the index in 0..SHARDS and the const
        // divisor is non-zero, so shard selection cannot panic.
        &self.shards[(slot_key as usize) % SHARDS]
    }

    /// Looks `key` up in the current generation.
    pub fn get(&self, key: u64) -> Option<V> {
        let sk = self.slot_key(key);
        let found = self.shard(sk).get(sk);
        if found.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        found
    }

    /// Stores `value` under `key` in the current generation.
    pub fn insert(&self, key: u64, value: V) {
        let sk = self.slot_key(key);
        if self.shard(sk).insert(sk, value) {
            self.evictions.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cache: ResultCache<Vec<u32>> = ResultCache::new(16);
        assert_eq!(cache.get(1), None);
        cache.insert(1, vec![5, 6]);
        assert_eq!(cache.get(1), Some(vec![5, 6]));
    }

    #[test]
    fn invalidation_hides_every_entry() {
        let cache: ResultCache<u32> = ResultCache::new(16);
        for k in 0..8u64 {
            cache.insert(k, k as u32);
        }
        assert_eq!(cache.get(3), Some(3));
        let g0 = cache.generation();
        cache.invalidate_all();
        assert_eq!(cache.generation(), g0 + 1);
        for k in 0..8u64 {
            assert_eq!(cache.get(k), None, "stale entry visible for key {k}");
        }
        // The new generation works normally.
        cache.insert(3, 33);
        assert_eq!(cache.get(3), Some(33));
    }

    #[test]
    fn capacity_bounds_residency_across_generations() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        for round in 0..4u64 {
            for k in 0..20u64 {
                cache.insert(k, round * 100 + k);
            }
            cache.invalidate_all();
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn invalidation_counter_moves() {
        let before = mqa_obs::counter("cache.result.invalidations").get();
        let cache: ResultCache<u8> = ResultCache::new(4);
        cache.invalidate_all();
        assert!(mqa_obs::counter("cache.result.invalidations").get() > before);
    }
}
