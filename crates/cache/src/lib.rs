//! `mqa-cache` — sharded, concurrency-safe caches for the MQA workspace.
//!
//! Two cooperating layers, both built on one Clock (second-chance LRU
//! approximation) core:
//!
//! 1. **Page cache** ([`PageCache`]): a presence cache over Starling's
//!    4 KiB page ids, shared by every worker of the concurrent
//!    `QueryEngine`. The paged index consults it before charging the
//!    simulated [`DeviceProfile`] read latency, so repeated queries over
//!    hot graph neighbourhoods pay the device cost once — results stay
//!    bit-identical because only the *timing* of a page read changes,
//!    never the search decisions.
//! 2. **Result cache** ([`ResultCache`]): a turn-level value cache keyed
//!    on a query [`Fingerprint`] (text, image descriptor, weight
//!    override, `k`/`ef`, configuration). A generation counter makes
//!    [`ResultCache::invalidate_all`] O(1): re-learning session weights
//!    bumps the generation and every stale entry becomes unreachable.
//!
//! Concurrency discipline (checked by `mqa-xtask conc`): each shard owns
//! exactly one `Mutex` around its Clock core, acquired only through
//! [`lock_ignore_poison`]; no shard guard is ever held across another
//! lock acquisition, an observability call, or a blocking operation.
//! Metrics are recorded on handles cached at construction time, after
//! the shard guard has been dropped.
//!
//! [`DeviceProfile`]: https://docs.rs/ — see `mqa-graph`'s Starling module.

pub mod clock;
pub mod fingerprint;
pub mod page;
pub mod result;

pub use clock::{CacheShard, ClockCore, Touch};
pub use fingerprint::Fingerprint;
pub use page::PageCache;
pub use result::ResultCache;

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, recovering from poisoning: cache state is a performance
/// hint (presence bits and cloned values), so data written before a
/// panic elsewhere is still safe to serve — at worst a stale entry is
/// re-fetched.
pub fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
