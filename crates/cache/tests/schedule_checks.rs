//! Deterministic-schedule model checks for one cache shard.
//!
//! `mqa-check` drives concurrent `touch` traffic on a tiny shard through
//! seeded interleavings, so insert/evict races that the OS scheduler
//! would need millions of runs to produce are explored directly — and
//! any failure replays from its seed.

use mqa_cache::{CacheShard, Touch};
use mqa_check::{run_schedule, CheckOptions, ThreadBody};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions {
        stuck_timeout: Duration::from_millis(150),
        ..CheckOptions::default()
    }
}

/// Bookkeeping shared by the model's threads.
#[derive(Default)]
struct Tally {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Three threads hammer overlapping keys on a capacity-2 shard. In every
/// explored interleaving the shard's accounting must balance: each miss
/// admits exactly one entry, each eviction removes exactly one, so
/// `misses - evictions == len` and residency never exceeds capacity.
#[test]
fn insert_evict_races_keep_accounting_balanced() {
    let mut traces = std::collections::HashSet::new();
    for seed in 0xCAC4E_001u64..0xCAC4E_001 + 150 {
        let shard: Arc<CacheShard<()>> = Arc::new(CacheShard::new(2));
        let tally = Arc::new(Tally::default());
        let mut bodies: Vec<ThreadBody> = Vec::new();
        for t in 0..3u64 {
            let shard = Arc::clone(&shard);
            let tally = Arc::clone(&tally);
            bodies.push(Box::new(move |token| {
                // Overlapping key sets: thread t touches {t, t+1, t+2}.
                for key in t..t + 3 {
                    token.step();
                    let Touch { hit, evicted } = shard.touch(key);
                    if hit {
                        tally.hits.fetch_add(1, Ordering::SeqCst);
                    } else {
                        tally.misses.fetch_add(1, Ordering::SeqCst);
                    }
                    if evicted {
                        tally.evictions.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }

        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(outcome.is_ok(), "seed {seed} failed: {:?}", outcome.failure);
        let hits = tally.hits.load(Ordering::SeqCst);
        let misses = tally.misses.load(Ordering::SeqCst);
        let evictions = tally.evictions.load(Ordering::SeqCst);
        assert_eq!(hits + misses, 9, "every touch reports hit xor miss");
        assert!(shard.len() <= 2, "capacity exceeded (seed {seed})");
        assert_eq!(
            misses - evictions,
            shard.len() as u64,
            "admissions minus evictions must equal residency \
             (seed {seed}, trace {:?})",
            outcome.trace
        );
        traces.insert(outcome.trace);
    }
    assert!(
        traces.len() >= 40,
        "sweep barely explored: {}",
        traces.len()
    );
}

/// The same seed must replay to the same interleaving and therefore the
/// same hit/miss totals — the property that makes a failing seed a
/// reproducible bug report.
#[test]
fn same_seed_replays_to_identical_counts() {
    let run = |seed: u64| {
        let shard: Arc<CacheShard<()>> = Arc::new(CacheShard::new(2));
        let hits = Arc::new(AtomicU64::new(0));
        let mut bodies: Vec<ThreadBody> = Vec::new();
        for t in 0..3u64 {
            let shard = Arc::clone(&shard);
            let hits = Arc::clone(&hits);
            bodies.push(Box::new(move |token| {
                for key in t..t + 3 {
                    token.step();
                    if shard.touch(key).hit {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(outcome.is_ok(), "seed {seed}: {:?}", outcome.failure);
        (outcome.trace, hits.load(Ordering::SeqCst))
    };
    for seed in [1u64, 7, 42, 0xCAFE] {
        let (trace_a, hits_a) = run(seed);
        let (trace_b, hits_b) = run(seed);
        assert_eq!(trace_a, trace_b, "seed {seed} replayed a different trace");
        assert_eq!(hits_a, hits_b, "seed {seed} replayed different hit counts");
    }
}

/// Exactly-one-admission: when every thread touches the *same* key, one
/// interleaving position gets the miss and everyone else must hit — in
/// every explored schedule. A racy admit-check-insert would double-count
/// the miss; a lost insert would surface as a second miss.
#[test]
fn single_key_admitted_exactly_once_across_schedules() {
    let mut traces = std::collections::HashSet::new();
    for seed in 0xCAC4E_777u64..0xCAC4E_777 + 120 {
        let shard: Arc<CacheShard<()>> = Arc::new(CacheShard::new(2));
        let misses = Arc::new(AtomicU64::new(0));
        let mut bodies: Vec<ThreadBody> = Vec::new();
        for _ in 0..3 {
            let shard = Arc::clone(&shard);
            let misses = Arc::clone(&misses);
            bodies.push(Box::new(move |token| {
                for _ in 0..3 {
                    token.step();
                    if !shard.touch(7).hit {
                        misses.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        let outcome = run_schedule(seed, &opts(), bodies);
        assert!(outcome.is_ok(), "seed {seed} failed: {:?}", outcome.failure);
        assert_eq!(
            misses.load(Ordering::SeqCst),
            1,
            "the key must be admitted exactly once (seed {seed}, trace {:?})",
            outcome.trace
        );
        assert_eq!(shard.len(), 1);
        traces.insert(outcome.trace);
    }
    assert!(
        traces.len() >= 40,
        "sweep barely explored: {}",
        traces.len()
    );
}
