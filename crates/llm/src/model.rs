//! The pluggable language-model interface.

use crate::prompt::Prompt;
use serde::{Deserialize, Serialize};

/// A generated reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The reply text shown in the QA panel.
    pub text: String,
    /// Whether the reply was grounded in retrieved context (false =
    /// parametric-only generation, at risk of hallucination).
    pub grounded: bool,
    /// Rough token count of prompt + reply (whitespace tokens; the mock's
    /// accounting knob, mirroring usage metering of hosted models).
    pub tokens: usize,
}

/// A conversational model that turns a [`Prompt`] into a [`Completion`].
///
/// The configuration panel's "LLM" dropdown selects an implementation;
/// `None` is also valid system-wide (the paper: "in the absence of an
/// available LLM, users can still carry out a multi-modal QA procedure
/// through direct engagement with the query execution module").
pub trait LanguageModel: Send + Sync {
    /// Model name for the status panel.
    fn name(&self) -> &str;

    /// Generates a reply at the given temperature (`0.0` = deterministic).
    fn generate(&self, prompt: &Prompt, temperature: f32) -> Completion;
}

/// Serializable LLM selection for the configuration panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LlmChoice {
    /// No LLM: answers come straight from the query-execution module.
    None,
    /// The deterministic mock chat model with the given seed.
    Mock {
        /// Generation seed.
        seed: u64,
    },
}

impl LlmChoice {
    /// Panel display name.
    pub fn display_name(&self) -> &'static str {
        match self {
            LlmChoice::None => "none",
            LlmChoice::Mock { .. } => "mock-chat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_serde_round_trip() {
        for c in [LlmChoice::None, LlmChoice::Mock { seed: 3 }] {
            let j = serde_json::to_string(&c).unwrap();
            assert_eq!(serde_json::from_str::<LlmChoice>(&j).unwrap(), c);
        }
        assert_eq!(LlmChoice::Mock { seed: 0 }.display_name(), "mock-chat");
    }
}
