//! Prompt assembly: the user query plus retrieved context.
//!
//! The paper's answer-generation flow: "the user's query is simultaneously
//! dispatched to both the query execution module and the LLM as a prompt.
//! The search results from the query execution module are then redirected
//! to the LLM. The final user response is a summary from the LLM." The
//! [`Prompt`] type is that redirected bundle.

use serde::{Deserialize, Serialize};

/// One retrieved object as presented to the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextEntry {
    /// Object id in the knowledge base (for citation back-links).
    pub id: u32,
    /// Object title.
    pub title: String,
    /// Caption / synopsis snippet.
    pub snippet: String,
    /// Retrieval distance (lower = more relevant).
    pub distance: f32,
    /// Whether the user marked this object as preferred in an earlier
    /// round (the red-marked choice of Figure 5).
    pub preferred: bool,
}

/// The assembled prompt.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Prompt {
    /// The user's current request text.
    pub query: String,
    /// Retrieved context, rank order. Empty = knowledge base disabled.
    pub context: Vec<ContextEntry>,
    /// Texts of earlier dialogue turns, oldest first.
    pub history: Vec<String>,
}

impl Prompt {
    /// A prompt with no retrieval context (LLM-only mode).
    pub fn bare(query: impl Into<String>) -> Self {
        Self {
            query: query.into(),
            context: Vec::new(),
            history: Vec::new(),
        }
    }

    /// A prompt with retrieved context.
    pub fn with_context(query: impl Into<String>, context: Vec<ContextEntry>) -> Self {
        Self {
            query: query.into(),
            context,
            history: Vec::new(),
        }
    }

    /// Appends a dialogue-history turn.
    pub fn push_history(&mut self, turn: impl Into<String>) {
        self.history.push(turn.into());
    }

    /// Whether retrieval context is present.
    pub fn is_grounded(&self) -> bool {
        !self.context.is_empty()
    }

    /// Flat text rendering (what a hosted model would receive), used by
    /// the mock for token accounting and seeding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for h in &self.history {
            out.push_str("previous: ");
            out.push_str(h);
            out.push('\n');
        }
        out.push_str("user: ");
        out.push_str(&self.query);
        out.push('\n');
        for (i, e) in self.context.iter().enumerate() {
            out.push_str(&format!(
                "context[{i}] (d={:.3}{}): {} — {}\n",
                e.distance,
                if e.preferred { ", preferred" } else { "" },
                e.title,
                e.snippet
            ));
        }
        out
    }

    /// Whitespace token count of the rendered prompt.
    pub fn token_count(&self) -> usize {
        self.render().split_whitespace().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, preferred: bool) -> ContextEntry {
        ContextEntry {
            id,
            title: format!("object {id}"),
            snippet: "a caption".to_string(),
            distance: 0.5,
            preferred,
        }
    }

    #[test]
    fn bare_prompt_is_ungrounded() {
        let p = Prompt::bare("hello");
        assert!(!p.is_grounded());
        assert!(p.render().contains("user: hello"));
    }

    #[test]
    fn context_rendering_marks_preference() {
        let p = Prompt::with_context("q", vec![entry(1, false), entry(2, true)]);
        assert!(p.is_grounded());
        let r = p.render();
        assert!(r.contains("context[0]"));
        assert!(r.contains("preferred"));
        assert!(r.contains("object 2"));
    }

    #[test]
    fn history_precedes_query() {
        let mut p = Prompt::bare("second");
        p.push_history("first");
        let r = p.render();
        let hist_pos = r.find("previous: first").unwrap();
        let q_pos = r.find("user: second").unwrap();
        assert!(hist_pos < q_pos);
    }

    #[test]
    fn token_count_positive() {
        assert!(Prompt::bare("three word query").token_count() >= 4);
    }
}
