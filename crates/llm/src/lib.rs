//! # mqa-llm
//!
//! The Answer Generation layer of MQA: prompt assembly over retrieved
//! context, a pluggable [`LanguageModel`] trait with temperature control,
//! and the generative-image baseline the paper compares against
//! (GPT-4 + DALL·E 2 in Figure 5).
//!
//! ## Substitution note (see DESIGN.md §2)
//!
//! Commercial LLM endpoints are unavailable here, so [`mock::MockChatModel`]
//! stands in. It preserves the properties the system actually depends on:
//!
//! * **Grounded generation** — when the prompt carries retrieved context,
//!   the reply cites only retrieved objects (titles, captions, preference
//!   markers), i.e. it is *factually consistent* with the knowledge base;
//! * **Hallucination without retrieval** — with the knowledge base
//!   disabled (the paper's "external knowledge ingestion is optional"
//!   setting), replies are fabricated from the model's "parametric memory"
//!   (seeded vocabulary sampling) and measurably diverge from the corpus —
//!   the failure mode retrieval augmentation exists to fix;
//! * **Temperature** — `0.0` is deterministic; higher values sample among
//!   phrasing variants with a seeded RNG, like the panel's temperature
//!   slider.
//!
//! [`generative::GenerativeImageModel`] plays DALL·E 2: it "renders" query
//! text into an image *descriptor* via a seeded cross-modal projection. Its
//! outputs are deliberately not members of any knowledge base — Figure 5's
//! observation that generated images "miss a touch of realism" becomes a
//! measurable distance-to-corpus gap (F5 harness).

pub mod generative;
pub mod mock;
pub mod model;
pub mod prompt;
pub mod sampling;

pub use generative::GenerativeImageModel;
pub use mock::MockChatModel;
pub use model::{Completion, LanguageModel, LlmChoice};
pub use prompt::{ContextEntry, Prompt};
pub use sampling::TemperatureSampler;
