//! The generative-image baseline (DALL·E 2 stand-in of Figure 5).
//!
//! Given query text, produce an *image* — not retrieve one. The stand-in
//! "renders" the text through a seeded cross-modal projection from a hashed
//! token space into raw descriptor space, then adds generation noise. Two
//! properties matter for the comparison and both hold by construction:
//!
//! * determinism in `(seed, text)` at zero noise, variation with noise —
//!   like diffusion sampling;
//! * outputs are **not** members of any knowledge base: the F5 harness
//!   measures the distance from generated descriptors to their nearest
//!   corpus image and finds a gap no retrieved result has — the paper's
//!   "miss a touch of realism", made quantitative.

use mqa_encoders::ImageData;
use mqa_rng::StdRng;

/// Size of the hashed token space the renderer projects from.
const TOKEN_SPACE: usize = 1 << 16;

/// The text→image generator.
#[derive(Debug, Clone, Copy)]
pub struct GenerativeImageModel {
    seed: u64,
    raw_dim: usize,
    noise: f32,
}

impl GenerativeImageModel {
    /// Creates a generator producing `raw_dim`-length descriptors with the
    /// given generation-noise magnitude.
    ///
    /// # Panics
    /// Panics if `raw_dim == 0` or `noise` is negative.
    pub fn new(seed: u64, raw_dim: usize, noise: f32) -> Self {
        assert!(raw_dim > 0, "descriptor dimension must be non-zero");
        assert!(noise >= 0.0, "noise must be non-negative");
        Self {
            seed,
            raw_dim,
            noise,
        }
    }

    /// Output descriptor length.
    pub fn raw_dim(&self) -> usize {
        self.raw_dim
    }

    /// "Renders" `text` into an image descriptor. `sample` distinguishes
    /// multiple generations for the same text (DALL·E returns several
    /// candidates per prompt).
    pub fn generate(&self, text: &str, sample: u64) -> ImageData {
        let mut acc = vec![0.0f32; self.raw_dim];
        let mut n_tokens = 0usize;
        for token in text.to_lowercase().split(|c: char| !c.is_alphanumeric()) {
            if token.is_empty() {
                continue;
            }
            n_tokens += 1;
            let mut h = self.seed ^ 0x00DA_11E2;
            for b in token.as_bytes() {
                h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(*b as u64);
            }
            // INVARIANT: TOKEN_SPACE is a non-zero const.
            let tok_id = (h as usize) % TOKEN_SPACE;
            // Deterministic per-token direction in descriptor space.
            let mut rng = StdRng::seed_from_u64(self.seed ^ tok_id as u64);
            for a in acc.iter_mut() {
                *a += rng.gen_range(-1.0..1.0f32);
            }
        }
        if n_tokens > 0 {
            for a in acc.iter_mut() {
                *a /= n_tokens as f32;
            }
        }
        // Generation noise, varied by sample index.
        let mut noise_rng = StdRng::seed_from_u64(self.seed ^ 0x5A3F ^ sample);
        for a in acc.iter_mut() {
            *a += self.noise * noise_rng.gen_range(-1.0..1.0f32);
        }
        ImageData::new(acc)
    }

    /// Generates `n` candidate images for one prompt.
    pub fn generate_batch(&self, text: &str, n: usize) -> Vec<ImageData> {
        (0..n as u64).map(|s| self.generate(text, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_vector::ops;

    #[test]
    fn deterministic_per_sample() {
        let g = GenerativeImageModel::new(1, 16, 0.2);
        assert_eq!(g.generate("foggy clouds", 0), g.generate("foggy clouds", 0));
        assert_ne!(
            g.generate("foggy clouds", 0).features(),
            g.generate("foggy clouds", 1).features()
        );
    }

    #[test]
    fn same_text_different_noise_samples_stay_related() {
        let g = GenerativeImageModel::new(2, 32, 0.1);
        let a = g.generate("golden sunset coast", 0);
        let b = g.generate("golden sunset coast", 1);
        let c = g.generate("gritty western seventies", 0);
        let dab = ops::l2_sq(a.features(), b.features());
        let dac = ops::l2_sq(a.features(), c.features());
        assert!(
            dab < dac,
            "same-prompt samples should be closer ({dab} vs {dac})"
        );
    }

    #[test]
    fn empty_text_is_pure_noise() {
        let g = GenerativeImageModel::new(3, 8, 0.5);
        let img = g.generate("", 0);
        assert_eq!(img.raw_dim(), 8);
        assert!(img.features().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn batch_has_requested_size() {
        let g = GenerativeImageModel::new(4, 8, 0.3);
        assert_eq!(g.generate_batch("clouds", 3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        GenerativeImageModel::new(1, 0, 0.1);
    }
}
