//! Temperature-controlled choice among generation variants.

use mqa_rng::StdRng;

/// Deterministic, seeded variant sampler with a temperature knob.
///
/// Variants are implicitly preference-ordered (index 0 is the model's
/// argmax). At temperature `0` the sampler always picks index 0; as
/// temperature grows, the softmax over preference scores flattens and
/// later variants become reachable — the same control surface as a hosted
/// model's temperature parameter.
#[derive(Debug, Clone)]
pub struct TemperatureSampler {
    rng: StdRng,
    temperature: f32,
}

impl TemperatureSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    /// Panics if `temperature` is negative or not finite.
    pub fn new(seed: u64, temperature: f32) -> Self {
        assert!(
            temperature.is_finite() && temperature >= 0.0,
            "temperature must be a finite non-negative number"
        );
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x007E_3A11),
            temperature,
        }
    }

    /// The configured temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Picks an index in `0..n` (preference-ordered).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from zero variants");
        let sw = mqa_obs::Stopwatch::start();
        mqa_obs::counter("llm.sampler.draws").inc();
        let choice = self.pick_inner(n);
        mqa_obs::histogram("llm.sampler.pick_us").record(sw.elapsed_us());
        choice
    }

    fn pick_inner(&mut self, n: usize) -> usize {
        if n == 1 || self.temperature == 0.0 {
            return 0;
        }
        // Preference score of variant i is -i; softmax with temperature.
        let weights: Vec<f32> = (0..n)
            .map(|i| (-(i as f32) / self.temperature).exp())
            .collect();
        let total: f32 = weights.iter().sum();
        let mut x = self.rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        n - 1
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, variants: &'a [T]) -> &'a T {
        // INVARIANT: pick(n) returns an index < n.
        &variants[self.pick(variants.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_temperature_is_argmax() {
        let mut s = TemperatureSampler::new(1, 0.0);
        for _ in 0..20 {
            assert_eq!(s.pick(5), 0);
        }
    }

    #[test]
    fn high_temperature_spreads_choices() {
        let mut s = TemperatureSampler::new(2, 10.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.pick(4));
        }
        assert!(seen.len() >= 3, "high temperature stuck on {seen:?}");
    }

    #[test]
    fn low_temperature_prefers_early_variants() {
        let mut s = TemperatureSampler::new(3, 0.3);
        let mut counts = [0usize; 4];
        for _ in 0..500 {
            counts[s.pick(4)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] >= counts[3]);
    }

    #[test]
    fn deterministic_in_seed() {
        let picks = |seed| -> Vec<usize> {
            let mut s = TemperatureSampler::new(seed, 1.0);
            (0..10).map(|_| s.pick(5)).collect()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    #[should_panic(expected = "zero variants")]
    fn zero_variants_panics() {
        TemperatureSampler::new(1, 1.0).pick(0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_temperature_panics() {
        TemperatureSampler::new(1, -1.0);
    }
}
