//! The deterministic mock chat model.

use crate::model::{Completion, LanguageModel};
use crate::prompt::Prompt;
use crate::sampling::TemperatureSampler;

/// Vocabulary the mock draws on when it must answer *without* retrieval —
/// its "parametric memory". Deliberately generic and plausible-sounding:
/// ungrounded answers read fine but cite attributes no knowledge base ever
/// stored, which is precisely the hallucination failure retrieval
/// augmentation prevents.
const PARAMETRIC_WORDS: &[&str] = &[
    "vintage",
    "handcrafted",
    "limited",
    "signature",
    "premium",
    "bespoke",
    "artisanal",
    "iconic",
    "exclusive",
    "heritage",
    "curated",
    "timeless",
    "renowned",
    "celebrated",
];

/// Grounded reply openers, preference-ordered for temperature sampling.
const GROUNDED_OPENERS: &[&str] = &[
    "Here is what I found in the knowledge base",
    "These results from the knowledge base match your request",
    "I retrieved the following matching items",
    "Based on the indexed collection, these fit best",
];

/// Ungrounded reply openers.
const BARE_OPENERS: &[&str] = &[
    "Without a connected knowledge base, speaking from general knowledge",
    "I don't have your collection loaded, but generally",
    "From what I recall",
];

/// A deterministic retrieval-grounded chat model.
///
/// With context, the reply summarizes the retrieved objects in rank order,
/// echoes preference markers, and invites refinement (the paper's
/// "iterative refinement process"). Without context it fabricates — see
/// `PARAMETRIC_WORDS`.
#[derive(Debug, Clone, Copy)]
pub struct MockChatModel {
    seed: u64,
}

impl MockChatModel {
    /// Creates the model with a generation seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn prompt_seed(&self, prompt: &Prompt) -> u64 {
        // Mix the prompt text into the seed so different prompts sample
        // different variants at nonzero temperature.
        let mut h = self.seed ^ 0x00C0_FFEE;
        for b in prompt.render().bytes() {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        h
    }
}

impl LanguageModel for MockChatModel {
    fn name(&self) -> &str {
        "mock-chat"
    }

    fn generate(&self, prompt: &Prompt, temperature: f32) -> Completion {
        let _span = mqa_obs::span("llm.generate");
        mqa_obs::counter("llm.mock.calls").inc();
        mqa_obs::counter("llm.mock.prompt_tokens").add(prompt.token_count() as u64);
        let mut sampler = TemperatureSampler::new(self.prompt_seed(prompt), temperature);
        let mut text = String::new();
        if prompt.is_grounded() {
            text.push_str(sampler.choose::<&str>(GROUNDED_OPENERS));
            text.push_str(&format!(" for \"{}\":\n", prompt.query));
            for (rank, e) in prompt.context.iter().enumerate() {
                let marker = if e.preferred {
                    " ★ (your earlier pick)"
                } else {
                    ""
                };
                text.push_str(&format!(
                    "{}. {} — {}{}\n",
                    rank + 1,
                    e.title,
                    e.snippet,
                    marker
                ));
            }
            let closers = [
                "Click any result to refine the search with it.",
                "Select one and tell me what to adjust.",
                "Pick a favourite and I will find more like it.",
            ];
            text.push_str(sampler.choose::<&str>(&closers));
        } else {
            text.push_str(sampler.choose::<&str>(BARE_OPENERS));
            text.push_str(&format!(", regarding \"{}\": ", prompt.query));
            // Fabricate three *distinct* plausible-sounding attributes.
            let mut attrs: Vec<&str> = Vec::with_capacity(3);
            while attrs.len() < 3 {
                // INVARIANT: PARAMETRIC_WORDS is a non-empty const table;
                // `% len` keeps the index in bounds.
                let idx = (sampler.pick(PARAMETRIC_WORDS.len()) + attrs.len() * 5)
                    % PARAMETRIC_WORDS.len();
                let w = PARAMETRIC_WORDS[idx];
                if !attrs.contains(&w) {
                    attrs.push(w);
                }
            }
            text.push_str(&format!(
                "you might look for {} options, often described as {} or {}. \
                 (No knowledge base is connected, so I cannot cite real items.)",
                // INVARIANT: the loop above exits only once attrs has 3
                // entries.
                attrs[0],
                attrs[1],
                attrs[2]
            ));
        }
        let completion_tokens = text.split_whitespace().count() as u64;
        mqa_obs::counter("llm.mock.completion_tokens").add(completion_tokens);
        mqa_obs::trace::add_tokens(prompt.token_count() as u64, completion_tokens);
        Completion {
            grounded: prompt.is_grounded(),
            tokens: prompt.token_count() + text.split_whitespace().count(),
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::ContextEntry;

    fn context() -> Vec<ContextEntry> {
        vec![
            ContextEntry {
                id: 4,
                title: "foggy clouds mountain #4".into(),
                snippet: "foggy clouds over a mountain ridge".into(),
                distance: 0.2,
                preferred: false,
            },
            ContextEntry {
                id: 9,
                title: "foggy clouds coast #9".into(),
                snippet: "soft fog rolling over the coast".into(),
                distance: 0.3,
                preferred: true,
            },
        ]
    }

    #[test]
    fn grounded_reply_cites_all_results_in_order() {
        let m = MockChatModel::new(1);
        let p = Prompt::with_context("foggy clouds", context());
        let c = m.generate(&p, 0.0);
        assert!(c.grounded);
        let first = c.text.find("foggy clouds mountain #4").unwrap();
        let second = c.text.find("foggy clouds coast #9").unwrap();
        assert!(first < second);
        assert!(c.text.contains("★"), "preference marker missing");
        assert!(c.tokens > 0);
    }

    #[test]
    fn zero_temperature_is_deterministic() {
        let m = MockChatModel::new(1);
        let p = Prompt::with_context("q", context());
        assert_eq!(m.generate(&p, 0.0), m.generate(&p, 0.0));
    }

    #[test]
    fn high_temperature_varies_across_prompts() {
        let m = MockChatModel::new(1);
        let a = m.generate(&Prompt::with_context("query one", context()), 5.0);
        let b = m.generate(&Prompt::with_context("query two", context()), 5.0);
        // different prompts mix different seeds; the texts must differ
        // beyond the echoed query
        assert_ne!(
            a.text.replace("query one", ""),
            b.text.replace("query two", "")
        );
    }

    #[test]
    fn ungrounded_reply_hallucinates_parametric_words() {
        let m = MockChatModel::new(2);
        let c = m.generate(&Prompt::bare("long-sleeved top"), 0.0);
        assert!(!c.grounded);
        assert!(
            PARAMETRIC_WORDS.iter().any(|w| c.text.contains(w)),
            "expected fabricated attributes in: {}",
            c.text
        );
        assert!(c.text.contains("cannot cite real items"));
    }

    #[test]
    fn grounded_reply_does_not_fabricate() {
        let m = MockChatModel::new(3);
        let p = Prompt::with_context("foggy clouds", context());
        let c = m.generate(&p, 0.0);
        // No parametric vocabulary may leak into grounded replies.
        assert!(
            !PARAMETRIC_WORDS.iter().any(|w| c.text.contains(w)),
            "{}",
            c.text
        );
    }

    #[test]
    fn model_name() {
        assert_eq!(MockChatModel::new(0).name(), "mock-chat");
    }
}
