//! The five-stage navigation-graph construction pipeline, and the
//! [`IndexAlgorithm`] configurations built on it.
//!
//! The paper: *"We propose a general pipeline for constructing fine-grained
//! navigation graphs on CGraph … The pipeline consists of five flexible
//! parts, allowing any current navigation graph to be decomposed and
//! smoothly integrated."* The five parts here are:
//!
//! 1. **Initialization** ([`InitStage`]) — a starting graph: random regular
//!    or (approximate) kNN;
//! 2. **Entry selection** ([`EntryStage`]) — medoid, random, or fixed entry
//!    vertices;
//! 3. **Candidate acquisition + neighbour selection** ([`RefineStage`],
//!    [`SelectStage`]) — per vertex, gather a candidate pool (by searching
//!    the evolving graph from the entry, Vamana-style) and prune it to a
//!    bounded diverse out-neighbour set, inserting pruned reverse edges;
//! 4. **Connectivity repair** ([`RepairStage`]) — attach any vertex
//!    unreachable from the entry;
//! 5. **Finalization** — statistics and the [`BuildReport`].
//!
//! Each stage runs as a task of an `mqa-dag` [`mqa_dag::Pipeline`], so a
//! custom graph is literally a different stage configuration:
//!
//! * **NSG** = kNN init + single refine pass at `α = 1` + repair + medoid;
//! * **Vamana/DiskANN** = random init + two refine passes at `α > 1` +
//!   repair + medoid;
//! * **MQA-graph** (the paper's "novel indexing algorithm" combining
//!   state-of-the-art components, used on concatenated weighted vectors) =
//!   kNN init + two refine passes at `α > 1` + repair + medoid.

use crate::adjacency::Adjacency;
use crate::flat::FlatSearcher;
use crate::hnsw::{Hnsw, HnswParams};
use crate::knn::{knn_graph, KnnParams};
use crate::live::Tombstones;
use crate::prune::{robust_prune, select_nearest};
use crate::search::SearchOutput;
use crate::traits::{DistanceFn, FlatDistance, GraphSearcher};
use crate::util::medoid;
use crate::validate::InvariantViolation;
use mqa_dag::{Context, Pipeline};
use mqa_rng::StdRng;
use mqa_vector::{Candidate, Metric, VecId, VectorStore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Stage 1: the starting graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStage {
    /// Every vertex gets `degree` random out-neighbours.
    Random {
        /// Out-degree of the random graph.
        degree: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Approximate kNN graph (exact for small stores).
    Knn {
        /// Neighbours per vertex.
        k: usize,
        /// RNG seed for the NN-expansion initialization.
        seed: u64,
    },
}

/// Stage 2: entry-point selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryStage {
    /// The store's medoid (NSG / Vamana convention).
    Medoid,
    /// `count` uniformly random vertices.
    Random {
        /// Number of entry vertices.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Vertex 0.
    First,
    /// The medoid plus `extra` random vertices. Multiple spatially spread
    /// entries make beam search robust to *metric mismatch* — e.g. a
    /// text-only query walking a graph whose edges were selected under an
    /// image-heavy fused metric (the unified index's partial-query case).
    MedoidPlusRandom {
        /// Number of extra random entries.
        extra: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Stage 3a: per-vertex candidate pools come from searching the evolving
/// graph from the entry with beam width `l`, for `passes` passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineStage {
    /// Beam width (candidate pool size) of the construction searches.
    pub l: usize,
    /// Number of passes over all vertices.
    pub passes: usize,
}

/// Stage 3b: neighbour selection applied to each candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectStage {
    /// Keep the `r` nearest (no diversification).
    Nearest {
        /// Degree bound.
        r: usize,
    },
    /// α-robust pruning with degree bound `r` (`α = 1` ⇒ MRNG/NSG rule).
    RobustPrune {
        /// Diversification slack (≥ 1.0).
        alpha: f32,
        /// Degree bound.
        r: usize,
    },
}

impl SelectStage {
    fn degree_bound(&self) -> usize {
        match *self {
            SelectStage::Nearest { r } | SelectStage::RobustPrune { r, .. } => r,
        }
    }

    fn apply(
        &self,
        store: &VectorStore,
        metric: Metric,
        v: VecId,
        candidates: Vec<Candidate>,
    ) -> Vec<VecId> {
        match *self {
            SelectStage::Nearest { r } => {
                let mut c = candidates;
                c.retain(|x| x.id != v);
                select_nearest(c, r)
            }
            SelectStage::RobustPrune { alpha, r } => {
                robust_prune(store, metric, v, candidates, alpha, r)
            }
        }
    }
}

/// Stage 4: connectivity repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStage {
    /// Leave the graph as refined.
    None,
    /// Attach every vertex unreachable from the entry to its nearest
    /// reachable vertex (NSG's spanning-growth step).
    GrowFromEntry,
}

/// A full pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphPipeline {
    /// Stage 1.
    pub init: InitStage,
    /// Stage 2.
    pub entry: EntryStage,
    /// Stage 3a.
    pub refine: RefineStage,
    /// Stage 3b.
    pub select: SelectStage,
    /// Stage 4.
    pub repair: RepairStage,
}

/// Construction diagnostics, surfaced by the status-monitoring panel and
/// recorded by the E7 index experiments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildReport {
    /// Per-stage wall-clock timings, in execution order.
    pub stage_timings: Vec<(String, Duration)>,
    /// Mean out-degree of the final graph.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Fraction of vertices reachable from the first entry.
    pub connectivity: f64,
}

/// A pipeline-built navigation graph ready for search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NavGraph {
    graph: Adjacency,
    entries: Vec<VecId>,
    report: BuildReport,
    name: String,
}

impl NavGraph {
    /// The adjacency structure.
    pub fn graph(&self) -> &Adjacency {
        &self.graph
    }

    /// The entry vertices.
    pub fn entries(&self) -> &[VecId] {
        &self.entries
    }

    /// Construction diagnostics.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// Audits the structural invariants of the built graph and returns
    /// every violation found (empty = sound).
    ///
    /// Checked invariants:
    /// - a non-empty graph has at least one entry; entries are in range
    ///   and distinct;
    /// - adjacency lists have in-range endpoints, no self-loops, no
    ///   duplicates;
    /// - the recorded [`BuildReport`] matches the structure it describes
    ///   (max degree, edge count, connectivity recomputed from the first
    ///   entry).
    pub fn validate(&self) -> Vec<InvariantViolation> {
        let n = self.graph.len();
        let mut out =
            crate::validate::check_adjacency(&format!("navgraph {}", self.name), &self.graph);
        if n == 0 {
            return out;
        }
        if self.entries.is_empty() {
            out.push(InvariantViolation::BadEntry {
                detail: format!("navgraph {}: no entry vertices", self.name),
            });
            return out;
        }
        let mut seen = std::collections::HashSet::new();
        for &e in &self.entries {
            if e as usize >= n {
                out.push(InvariantViolation::IdOutOfRange {
                    context: format!("navgraph {} entries", self.name),
                    id: e,
                    n,
                });
            }
            if !seen.insert(e) {
                out.push(InvariantViolation::BadEntry {
                    detail: format!("navgraph {}: entry {e} listed twice", self.name),
                });
            }
        }
        if self.report.max_degree != self.graph.max_degree() {
            out.push(InvariantViolation::StaleReport {
                context: format!("navgraph {} max_degree", self.name),
                expected: self.graph.max_degree().to_string(),
                got: self.report.max_degree.to_string(),
            });
        }
        if self.report.edges != self.graph.edge_count() {
            out.push(InvariantViolation::StaleReport {
                context: format!("navgraph {} edges", self.name),
                expected: self.graph.edge_count().to_string(),
                got: self.report.edges.to_string(),
            });
        }
        let entry0 = self.entries.first().copied();
        if let Some(e0) = entry0.filter(|&e| (e as usize) < n) {
            let conn = self.graph.reachable_count(e0) as f64 / n as f64;
            if (conn - self.report.connectivity).abs() > 1e-9 {
                out.push(InvariantViolation::StaleReport {
                    context: format!("navgraph {} connectivity", self.name),
                    expected: format!("{conn:.6}"),
                    got: format!("{:.6}", self.report.connectivity),
                });
            }
        }
        out
    }

    /// Recomputes the structural diagnostics of the report from the graph
    /// (stage timings are kept — they describe the original build). Every
    /// online mutation ends with this so [`NavGraph::validate`]'s
    /// stale-report checks keep holding on mutated graphs.
    fn refresh_report(&mut self) {
        self.report.avg_degree = self.graph.avg_degree();
        self.report.max_degree = self.graph.max_degree();
        self.report.edges = self.graph.edge_count();
        self.report.connectivity = match self.entries.first() {
            Some(&e0) if !self.graph.is_empty() && (e0 as usize) < self.graph.len() => {
                self.graph.reachable_count(e0) as f64 / self.graph.len() as f64
            }
            _ => 0.0,
        };
    }

    /// Incrementally links every not-yet-indexed vector of `store` into
    /// the graph — the online-insert path for the pipeline-built family
    /// (NSG / Vamana / MQA-graph). Each new vertex runs one iteration of
    /// the refinement stage against the *current* graph: beam-search from
    /// the entries for a candidate pool, prune it with the family's own
    /// selection rule, install reverse edges with overflow re-pruning.
    pub fn extend_from(
        &mut self,
        store: &VectorStore,
        metric: Metric,
        l: usize,
        select: &SelectStage,
    ) {
        let start = self.graph.len();
        if store.len() <= start {
            return;
        }
        self.graph.grow(store.len());
        let r = select.degree_bound();
        let mut scratch = crate::scratch::SearchScratch::new();
        for v in start as VecId..store.len() as VecId {
            let mut pool = {
                let mut dist = FlatDistance::for_vertex(store, v, metric);
                crate::search::beam_search_collect_with(
                    &self.graph,
                    &self.entries,
                    &mut dist,
                    l,
                    &mut scratch,
                )
            };
            pool.retain(|c| c.id != v);
            let selected = select.apply(store, metric, v, pool);
            self.graph.set_neighbors(v, selected.clone());
            for u in selected {
                self.graph.add_edge(u, v);
                if self.graph.degree(u) > r {
                    let uv = store.get(u);
                    let cands: Vec<Candidate> = self
                        .graph
                        .neighbors(u)
                        .iter()
                        .map(|&w| Candidate::new(w, metric.distance(uv, store.get(w))))
                        .collect();
                    let pruned = select.apply(store, metric, u, cands);
                    self.graph.set_neighbors(u, pruned);
                }
            }
        }
        self.refresh_report();
    }

    /// Rewires the graph around the dead vertices of `tomb`: a live
    /// vertex with dead neighbours splices in those neighbours' live
    /// neighbours (re-pruned through `select`, so the degree bound
    /// holds); dead vertices not serving as entries are unlinked; a dead
    /// entry keeps live-spliced out-edges so it can continue to seed
    /// searches. After this pass no edge points *into* a dead vertex.
    pub fn compact(
        &mut self,
        store: &VectorStore,
        metric: Metric,
        select: &SelectStage,
        tomb: &Tombstones,
    ) {
        let old = self.graph.clone();
        for v in 0..self.graph.len() as VecId {
            let is_entry = self.entries.contains(&v);
            if tomb.is_dead(v) && !is_entry {
                self.graph.set_neighbors(v, Vec::new());
                continue;
            }
            let nb = old.neighbors(v);
            if !nb.iter().any(|&u| tomb.is_dead(u)) {
                continue;
            }
            let vv = store.get(v);
            let mut seen = std::collections::HashSet::new();
            let mut pool: Vec<Candidate> = Vec::new();
            for &u in nb {
                if tomb.is_dead(u) {
                    for &w in old.neighbors(u) {
                        if w != v && !tomb.is_dead(w) && seen.insert(w) {
                            pool.push(Candidate::new(w, metric.distance(vv, store.get(w))));
                        }
                    }
                } else if seen.insert(u) {
                    pool.push(Candidate::new(u, metric.distance(vv, store.get(u))));
                }
            }
            let selected = select.apply(store, metric, v, pool);
            self.graph.set_neighbors(v, selected);
        }
        self.refresh_report();
    }
}

impl GraphSearcher for NavGraph {
    fn search_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> SearchOutput {
        crate::search::beam_search_with(&self.graph, &self.entries, dist, k, ef, scratch)
    }

    fn len(&self) -> usize {
        self.graph.len()
    }

    fn avg_degree(&self) -> f64 {
        self.graph.avg_degree()
    }

    fn describe(&self) -> String {
        format!(
            "{} over {} vertices (avg degree {:.1}, {} entries)",
            self.name,
            self.graph.len(),
            self.graph.avg_degree(),
            self.entries.len()
        )
    }
}

impl GraphPipeline {
    /// Runs the five stages (as an `mqa-dag` pipeline) and returns the
    /// built graph.
    ///
    /// # Panics
    /// Panics if the store is empty.
    pub fn run(&self, store: &Arc<VectorStore>, metric: Metric, name: &str) -> NavGraph {
        assert!(!store.is_empty(), "pipeline requires a non-empty store");
        let cfg = self.clone();
        let mut ctx = Context::new();

        let s_init = Arc::clone(store);
        let s_entry = Arc::clone(store);
        let s_refine = Arc::clone(store);
        let s_repair = Arc::clone(store);

        let init_cfg = cfg.init.clone();
        let entry_cfg = cfg.entry.clone();
        let refine_cfg = cfg.refine;
        let select_cfg = cfg.select;
        let repair_cfg = cfg.repair;

        let trace = Pipeline::new()
            .stage("initialization", move |_| {
                let graph = run_init(&init_cfg, &s_init, metric);
                Ok(vec![("graph".to_string(), Box::new(graph) as _)])
            })
            .stage("entry_selection", move |c| {
                let _ = c; // entries depend only on the store
                let entries = run_entry(&entry_cfg, &s_entry, metric);
                Ok(vec![("entries".to_string(), Box::new(entries) as _)])
            })
            .stage("refinement", move |c| {
                let graph = c.get::<Adjacency>("graph").map_err(|e| e.to_string())?;
                let entries = c.get::<Vec<VecId>>("entries").map_err(|e| e.to_string())?;
                let refined = run_refine(
                    &refine_cfg,
                    &select_cfg,
                    &s_refine,
                    metric,
                    graph.clone(),
                    entries,
                );
                Ok(vec![("graph".to_string(), Box::new(refined) as _)])
            })
            .stage("connectivity_repair", move |c| {
                let graph = c.get::<Adjacency>("graph").map_err(|e| e.to_string())?;
                let entries = c.get::<Vec<VecId>>("entries").map_err(|e| e.to_string())?;
                let repaired = run_repair(&repair_cfg, &s_repair, metric, graph.clone(), entries);
                Ok(vec![("graph".to_string(), Box::new(repaired) as _)])
            })
            .stage("finalization", |c| {
                let graph = c.get::<Adjacency>("graph").map_err(|e| e.to_string())?;
                let entries = c.get::<Vec<VecId>>("entries").map_err(|e| e.to_string())?;
                let connectivity = match entries.first() {
                    Some(&e0) if !graph.is_empty() => {
                        graph.reachable_count(e0) as f64 / graph.len() as f64
                    }
                    _ => 0.0,
                };
                Ok(vec![(
                    "connectivity".to_string(),
                    Box::new(connectivity) as _,
                )])
            })
            .run(&mut ctx)
            .expect("construction pipeline is well-formed");

        let graph: Adjacency = ctx.take("graph").expect("graph artifact present");
        let entries: Vec<VecId> = ctx.take("entries").expect("entries artifact present");
        let connectivity: f64 = *ctx.get("connectivity").expect("connectivity present");
        let report = BuildReport {
            stage_timings: trace
                .tasks
                .iter()
                .map(|t| (t.name.clone(), t.elapsed))
                .collect(),
            avg_degree: graph.avg_degree(),
            max_degree: graph.max_degree(),
            edges: graph.edge_count(),
            connectivity,
        };
        NavGraph {
            graph,
            entries,
            report,
            name: name.to_string(),
        }
    }
}

fn run_init(cfg: &InitStage, store: &VectorStore, metric: Metric) -> Adjacency {
    let n = store.len();
    match *cfg {
        InitStage::Random { degree, seed } => {
            let degree = degree.min(n.saturating_sub(1));
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1217);
            let mut g = Adjacency::new(n);
            for v in 0..n {
                let mut nb = Vec::with_capacity(degree);
                while nb.len() < degree {
                    let u = rng.gen_range(0..n) as VecId;
                    if u as usize != v && !nb.contains(&u) {
                        nb.push(u);
                    }
                }
                g.set_neighbors(v as VecId, nb);
            }
            g
        }
        InitStage::Knn { k, seed } => knn_graph(
            store,
            metric,
            &KnnParams {
                k,
                seed,
                ..KnnParams::default()
            },
        ),
    }
}

fn run_entry(cfg: &EntryStage, store: &VectorStore, metric: Metric) -> Vec<VecId> {
    match *cfg {
        EntryStage::Medoid => vec![medoid(store, metric)],
        EntryStage::Random { count, seed } => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xE217);
            let n = store.len();
            let count = count.clamp(1, n);
            let mut out = Vec::with_capacity(count);
            while out.len() < count {
                let v = rng.gen_range(0..n) as VecId;
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            out
        }
        EntryStage::First => vec![0],
        EntryStage::MedoidPlusRandom { extra, seed } => {
            let mut out = vec![medoid(store, metric)];
            let mut rng = StdRng::seed_from_u64(seed ^ 0xE218);
            let n = store.len();
            while out.len() < (extra + 1).min(n) {
                let v = rng.gen_range(0..n) as VecId;
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            out
        }
    }
}

fn run_refine(
    refine: &RefineStage,
    select: &SelectStage,
    store: &VectorStore,
    metric: Metric,
    mut graph: Adjacency,
    entries: &[VecId],
) -> Adjacency {
    let n = store.len();
    let r = select.degree_bound();
    // One scratch serves every construction search of the stage.
    let mut scratch = crate::scratch::SearchScratch::new();
    for _pass in 0..refine.passes {
        for v in 0..n as VecId {
            // Candidate acquisition: search the evolving graph from the
            // entry for the vertex's own vector, keeping the full visited
            // list (path vertices supply long-range candidates).
            let pool = {
                let mut dist = FlatDistance::for_vertex(store, v, metric);
                let mut pool = crate::search::beam_search_collect_with(
                    &graph,
                    entries,
                    &mut dist,
                    refine.l,
                    &mut scratch,
                );
                // Merge current neighbours so established edges compete.
                let qv = store.get(v);
                for &u in graph.neighbors(v) {
                    pool.push(Candidate::new(u, metric.distance(qv, store.get(u))));
                }
                pool
            };
            let selected = select.apply(store, metric, v, pool);
            graph.set_neighbors(v, selected.clone());
            // Reverse edges with re-pruning past the degree bound.
            for u in selected {
                graph.add_edge(u, v);
                if graph.degree(u) > r {
                    let uv = store.get(u);
                    let cands: Vec<Candidate> = graph
                        .neighbors(u)
                        .iter()
                        .map(|&w| Candidate::new(w, metric.distance(uv, store.get(w))))
                        .collect();
                    let pruned = select.apply(store, metric, u, cands);
                    graph.set_neighbors(u, pruned);
                }
            }
        }
    }
    graph
}

fn run_repair(
    cfg: &RepairStage,
    store: &VectorStore,
    metric: Metric,
    mut graph: Adjacency,
    entries: &[VecId],
) -> Adjacency {
    match cfg {
        RepairStage::None => graph,
        RepairStage::GrowFromEntry => {
            // No entry vertex means nothing to grow from.
            let Some(&start) = entries.first() else {
                return graph;
            };
            let mut reachable = graph.reachable_from(start);
            let mut scratch = crate::scratch::SearchScratch::new();
            for v in 0..graph.len() as VecId {
                // INVARIANT: reachable_from returns one flag per vertex
                // and v iterates 0..len.
                if reachable[v as usize] {
                    continue;
                }
                // Route toward v through the reachable component; the
                // search can only return reachable vertices.
                let mut dist = FlatDistance::for_vertex(store, v, metric);
                let out = crate::search::beam_search_with(
                    &graph,
                    entries,
                    &mut dist,
                    1,
                    16,
                    &mut scratch,
                );
                // A non-empty graph with a valid entry always yields at
                // least one beam-search result; skip v defensively if not.
                let Some(first) = out.results.first() else {
                    continue;
                };
                graph.add_edge(first.id, v);
                // Everything v reaches is now reachable.
                let mut queue = std::collections::VecDeque::new();
                // INVARIANT: v < len, and neighbour ids of a well-formed
                // graph are < len (set_neighbors debug-rejects others).
                if !reachable[v as usize] {
                    reachable[v as usize] = true;
                    queue.push_back(v);
                }
                while let Some(x) = queue.pop_front() {
                    for &y in graph.neighbors(x) {
                        // INVARIANT: neighbour ids stay < len (as above).
                        if !reachable[y as usize] {
                            reachable[y as usize] = true;
                            queue.push_back(y);
                        }
                    }
                }
            }
            graph
        }
    }
}

/// The configuration-panel index choices. `build` dispatches to the
/// pipeline (NSG / Vamana / MQA-graph), to the direct HNSW implementation,
/// or to the exhaustive baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexAlgorithm {
    /// Exhaustive scan (exact).
    Flat,
    /// Hierarchical Navigable Small World graph.
    Hnsw(HnswParams),
    /// Navigating Spreading-out Graph.
    Nsg {
        /// Degree bound.
        r: usize,
        /// Construction beam width.
        l: usize,
        /// kNN-init neighbour count.
        knn_k: usize,
        /// Seed.
        seed: u64,
    },
    /// Inverted-file cluster index (the Milvus-default family).
    Ivf(crate::ivf::IvfParams),
    /// DiskANN's Vamana graph.
    Vamana {
        /// Degree bound.
        r: usize,
        /// Construction beam width.
        l: usize,
        /// Robust-pruning slack (≥ 1.0).
        alpha: f32,
        /// Seed.
        seed: u64,
    },
    /// The paper's combined algorithm: kNN init + α-robust refinement +
    /// repair, designed for concatenated weighted multi-vectors.
    MqaGraph {
        /// Degree bound.
        r: usize,
        /// Construction beam width.
        l: usize,
        /// Robust-pruning slack (≥ 1.0).
        alpha: f32,
        /// kNN-init neighbour count.
        knn_k: usize,
        /// Seed.
        seed: u64,
    },
}

/// A built navigation structure in concrete (serializable) form. This is
/// what [`IndexAlgorithm::build_graph`] produces and what index snapshots
/// persist; [`crate::traits::VectorIndex`] and [`crate::UnifiedIndex`]
/// search through it via the common [`GraphSearcher`] interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BuiltGraph {
    /// Exhaustive scan (no structure).
    Flat(FlatSearcher),
    /// Pipeline-built flat navigation graph (NSG / Vamana / MQA-graph).
    Nav(NavGraph),
    /// Layered HNSW.
    Hnsw(Hnsw),
    /// Inverted-file cluster index.
    Ivf(crate::ivf::IvfSearcher),
}

impl GraphSearcher for BuiltGraph {
    fn search_with(
        &self,
        dist: &mut dyn crate::traits::DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> crate::search::SearchOutput {
        match self {
            BuiltGraph::Flat(s) => s.search_with(dist, k, ef, scratch),
            BuiltGraph::Nav(s) => s.search_with(dist, k, ef, scratch),
            BuiltGraph::Hnsw(s) => s.search_with(dist, k, ef, scratch),
            BuiltGraph::Ivf(s) => s.search_with(dist, k, ef, scratch),
        }
    }

    fn len(&self) -> usize {
        match self {
            BuiltGraph::Flat(s) => s.len(),
            BuiltGraph::Nav(s) => GraphSearcher::len(s),
            BuiltGraph::Hnsw(s) => GraphSearcher::len(s),
            BuiltGraph::Ivf(s) => GraphSearcher::len(s),
        }
    }

    fn avg_degree(&self) -> f64 {
        match self {
            BuiltGraph::Flat(s) => s.avg_degree(),
            BuiltGraph::Nav(s) => GraphSearcher::avg_degree(s),
            BuiltGraph::Hnsw(s) => GraphSearcher::avg_degree(s),
            BuiltGraph::Ivf(s) => GraphSearcher::avg_degree(s),
        }
    }

    fn describe(&self) -> String {
        match self {
            BuiltGraph::Flat(s) => s.describe(),
            BuiltGraph::Nav(s) => s.describe(),
            BuiltGraph::Hnsw(s) => s.describe(),
            BuiltGraph::Ivf(s) => s.describe(),
        }
    }
}

impl BuiltGraph {
    /// Audits the inner structure and returns every invariant violation
    /// found (empty = sound). Dispatches to the per-index validators;
    /// `Flat` carries no structure to audit, and the IVF variant validates
    /// against its retained store copy.
    pub fn validate(&self) -> Vec<InvariantViolation> {
        match self {
            BuiltGraph::Flat(_) => Vec::new(),
            BuiltGraph::Nav(g) => g.validate(),
            BuiltGraph::Hnsw(h) => h.validate(),
            BuiltGraph::Ivf(s) => s.validate(),
        }
    }

    /// Extends the structure over every not-yet-indexed vector of `store`
    /// — the online-insert path. HNSW and the pipeline family link the new
    /// vertices incrementally (HNSW's growth is bit-identical to a batch
    /// build); `Flat` just widens its scan; IVF has no incremental form
    /// and is rebuilt from scratch.
    pub fn grow_to(&mut self, store: &Arc<VectorStore>, metric: Metric, algo: &IndexAlgorithm) {
        match self {
            BuiltGraph::Flat(s) => *s = FlatSearcher::new(store.len()),
            BuiltGraph::Hnsw(h) => h.extend_from(store, metric),
            BuiltGraph::Nav(g) => match algo.incremental_recipe() {
                Some((l, select)) => g.extend_from(store, metric, l, &select),
                // A Nav graph whose algorithm carries no recipe cannot be
                // extended in place; rebuild keeps the index correct.
                None => *self = algo.build_graph(store, metric),
            },
            BuiltGraph::Ivf(_) => *self = algo.build_graph(store, metric),
        }
    }

    /// Rewires the structure around the dead ids of `tomb`. Returns
    /// whether the dead ids were actually unlinked (and may therefore be
    /// marked compacted): `Flat` trivially succeeds (no edges exist), the
    /// graph families splice neighbours around the holes, and IVF returns
    /// `false` — its cell lists keep every id and deletion stays
    /// filter-only there.
    pub fn compact_live(
        &mut self,
        store: &Arc<VectorStore>,
        metric: Metric,
        algo: &IndexAlgorithm,
        tomb: &Tombstones,
    ) -> bool {
        match self {
            BuiltGraph::Flat(_) => true,
            BuiltGraph::Hnsw(h) => {
                h.compact(store, metric, tomb);
                true
            }
            BuiltGraph::Nav(g) => {
                let select = match algo.incremental_recipe() {
                    Some((_, select)) => select,
                    None => SelectStage::RobustPrune {
                        alpha: 1.0,
                        r: g.graph().max_degree().max(1),
                    },
                };
                g.compact(store, metric, &select, tomb);
                true
            }
            BuiltGraph::Ivf(_) => false,
        }
    }
}

impl IndexAlgorithm {
    /// Default NSG configuration.
    pub fn nsg() -> Self {
        IndexAlgorithm::Nsg {
            r: 24,
            l: 64,
            knn_k: 20,
            seed: 0,
        }
    }

    /// Default Vamana configuration.
    pub fn vamana() -> Self {
        IndexAlgorithm::Vamana {
            r: 24,
            l: 64,
            alpha: 1.2,
            seed: 0,
        }
    }

    /// Default HNSW configuration.
    pub fn hnsw() -> Self {
        IndexAlgorithm::Hnsw(HnswParams::default())
    }

    /// Default IVF configuration.
    pub fn ivf() -> Self {
        IndexAlgorithm::Ivf(crate::ivf::IvfParams::default())
    }

    /// Default MQA-graph configuration.
    pub fn mqa_graph() -> Self {
        IndexAlgorithm::MqaGraph {
            r: 24,
            l: 64,
            alpha: 1.2,
            knn_k: 20,
            seed: 0,
        }
    }

    /// Panel display name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexAlgorithm::Flat => "flat",
            IndexAlgorithm::Hnsw(_) => "hnsw",
            IndexAlgorithm::Ivf(_) => "ivf",
            IndexAlgorithm::Nsg { .. } => "nsg",
            IndexAlgorithm::Vamana { .. } => "vamana",
            IndexAlgorithm::MqaGraph { .. } => "mqa-graph",
        }
    }

    /// The per-vertex refinement recipe the family uses for *incremental*
    /// linking (online inserts and compaction re-pruning): construction
    /// beam width plus neighbour-selection rule. `None` for the families
    /// without an incremental form (Flat needs none, HNSW carries its own
    /// in [`Hnsw::extend_from`], IVF rebuilds).
    pub fn incremental_recipe(&self) -> Option<(usize, SelectStage)> {
        match *self {
            IndexAlgorithm::Nsg { r, l, .. } => {
                Some((l, SelectStage::RobustPrune { alpha: 1.0, r }))
            }
            IndexAlgorithm::Vamana { r, l, alpha, .. } => {
                Some((l, SelectStage::RobustPrune { alpha, r }))
            }
            IndexAlgorithm::MqaGraph { r, l, alpha, .. } => {
                Some((l, SelectStage::RobustPrune { alpha, r }))
            }
            IndexAlgorithm::Flat | IndexAlgorithm::Hnsw(_) | IndexAlgorithm::Ivf(_) => None,
        }
    }

    /// Builds a boxed searcher over the store.
    pub fn build(&self, store: &Arc<VectorStore>, metric: Metric) -> Box<dyn GraphSearcher> {
        Box::new(self.build_graph(store, metric))
    }

    /// Builds the concrete (serializable) navigation structure.
    pub fn build_graph(&self, store: &Arc<VectorStore>, metric: Metric) -> BuiltGraph {
        match self {
            IndexAlgorithm::Flat => BuiltGraph::Flat(FlatSearcher::new(store.len())),
            IndexAlgorithm::Hnsw(params) => BuiltGraph::Hnsw(Hnsw::build(store, metric, params)),
            IndexAlgorithm::Ivf(params) => {
                BuiltGraph::Ivf(crate::ivf::IvfSearcher::build(store, params))
            }
            IndexAlgorithm::Nsg { r, l, knn_k, seed } => {
                BuiltGraph::Nav(crate::nsg::build(store, metric, *r, *l, *knn_k, *seed))
            }
            IndexAlgorithm::Vamana { r, l, alpha, seed } => {
                BuiltGraph::Nav(crate::vamana::build(store, metric, *r, *l, *alpha, *seed))
            }
            IndexAlgorithm::MqaGraph {
                r,
                l,
                alpha,
                knn_k,
                seed,
            } => {
                // Multiple entries: the unified index must route *partial*
                // queries (text-only rounds) whose metric differs from the
                // fused build metric; spread entry points recover the
                // recall a single medoid start loses there.
                let pipeline = GraphPipeline {
                    init: InitStage::Knn {
                        k: *knn_k,
                        seed: *seed,
                    },
                    entry: EntryStage::MedoidPlusRandom {
                        extra: 4,
                        seed: *seed,
                    },
                    refine: RefineStage { l: *l, passes: 2 },
                    select: SelectStage::RobustPrune {
                        alpha: *alpha,
                        r: *r,
                    },
                    repair: RepairStage::GrowFromEntry,
                };
                BuiltGraph::Nav(pipeline.run(store, metric, "mqa-graph"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;

    fn clustered_store(n: usize, dim: usize, clusters: usize, seed: u64) -> Arc<VectorStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| {
                (0..dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0) * 4.0)
                    .collect()
            })
            .collect();
        let mut s = VectorStore::new(dim);
        for i in 0..n {
            let c = &centers[i % clusters];
            let v: Vec<f32> = c.iter().map(|x| x + rng.gen_range(-0.3f32..0.3)).collect();
            s.push(&v);
        }
        Arc::new(s)
    }

    fn recall_of(algo: &IndexAlgorithm, store: &Arc<VectorStore>, queries: usize) -> f64 {
        let metric = Metric::L2;
        let searcher = algo.build(store, metric);
        let flat = FlatSearcher::new(store.len());
        let mut rng = StdRng::seed_from_u64(77);
        let dim = store.dim();
        let k = 10;
        let mut hits = 0usize;
        for _ in 0..queries {
            let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let mut d1 = FlatDistance::new(store, &q, metric).unwrap();
            let truth = flat.search(&mut d1, k, 0).ids();
            let mut d2 = FlatDistance::new(store, &q, metric).unwrap();
            let got = searcher.search(&mut d2, k, 64).ids();
            hits += got.iter().filter(|id| truth.contains(id)).count();
        }
        hits as f64 / (queries * k) as f64
    }

    #[test]
    fn nsg_reaches_high_recall() {
        let store = clustered_store(800, 16, 10, 1);
        let r = recall_of(&IndexAlgorithm::nsg(), &store, 20);
        assert!(r > 0.9, "nsg recall {r}");
    }

    #[test]
    fn vamana_reaches_high_recall() {
        let store = clustered_store(800, 16, 10, 2);
        let r = recall_of(&IndexAlgorithm::vamana(), &store, 20);
        assert!(r > 0.9, "vamana recall {r}");
    }

    #[test]
    fn mqa_graph_reaches_high_recall() {
        let store = clustered_store(800, 16, 10, 3);
        let r = recall_of(&IndexAlgorithm::mqa_graph(), &store, 20);
        assert!(r >= 0.85, "mqa-graph recall {r}");
    }

    #[test]
    fn pipeline_graphs_are_fully_connected() {
        let store = clustered_store(500, 8, 25, 4);
        for algo in [
            IndexAlgorithm::nsg(),
            IndexAlgorithm::vamana(),
            IndexAlgorithm::mqa_graph(),
        ] {
            // Rebuild through the pipeline to read the report.
            let nav = match &algo {
                IndexAlgorithm::Nsg { r, l, knn_k, seed } => {
                    crate::nsg::pipeline(*r, *l, *knn_k, *seed).run(&store, Metric::L2, "nsg")
                }
                IndexAlgorithm::Vamana { r, l, alpha, seed } => {
                    crate::vamana::pipeline(*r, *l, *alpha, *seed).run(&store, Metric::L2, "vamana")
                }
                IndexAlgorithm::MqaGraph {
                    r,
                    l,
                    alpha,
                    knn_k,
                    seed,
                } => GraphPipeline {
                    init: InitStage::Knn {
                        k: *knn_k,
                        seed: *seed,
                    },
                    entry: EntryStage::Medoid,
                    refine: RefineStage { l: *l, passes: 2 },
                    select: SelectStage::RobustPrune {
                        alpha: *alpha,
                        r: *r,
                    },
                    repair: RepairStage::GrowFromEntry,
                }
                .run(&store, Metric::L2, "mqa-graph"),
                _ => unreachable!(),
            };
            assert!(
                (nav.report().connectivity - 1.0).abs() < 1e-9,
                "{} connectivity {}",
                algo.name(),
                nav.report().connectivity
            );
            assert!(nav.report().max_degree > 0);
        }
    }

    #[test]
    fn degree_bound_is_respected() {
        let store = clustered_store(400, 8, 8, 5);
        let nav = GraphPipeline {
            init: InitStage::Random {
                degree: 12,
                seed: 0,
            },
            entry: EntryStage::Medoid,
            refine: RefineStage { l: 32, passes: 2 },
            select: SelectStage::RobustPrune { alpha: 1.2, r: 12 },
            repair: RepairStage::None,
        }
        .run(&store, Metric::L2, "test");
        // Repair can add one extra edge per unreachable vertex; without
        // repair the bound holds strictly.
        assert!(
            nav.report().max_degree <= 12,
            "max degree {}",
            nav.report().max_degree
        );
    }

    #[test]
    fn report_has_all_stage_timings() {
        let store = clustered_store(300, 4, 5, 6);
        let nav = GraphPipeline {
            init: InitStage::Knn { k: 8, seed: 0 },
            entry: EntryStage::First,
            refine: RefineStage { l: 16, passes: 1 },
            select: SelectStage::Nearest { r: 8 },
            repair: RepairStage::GrowFromEntry,
        }
        .run(&store, Metric::L2, "test");
        let names: Vec<&str> = nav
            .report()
            .stage_timings
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "initialization",
                "entry_selection",
                "refinement",
                "connectivity_repair",
                "finalization"
            ]
        );
    }

    #[test]
    fn entry_stage_variants() {
        let store = clustered_store(50, 4, 5, 7);
        assert_eq!(run_entry(&EntryStage::First, &store, Metric::L2), vec![0]);
        let rnd = run_entry(
            &EntryStage::Random { count: 3, seed: 1 },
            &store,
            Metric::L2,
        );
        assert_eq!(rnd.len(), 3);
        let m = run_entry(&EntryStage::Medoid, &store, Metric::L2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn flat_algorithm_is_exact() {
        let store = clustered_store(200, 8, 4, 8);
        let r = recall_of(&IndexAlgorithm::Flat, &store, 10);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn algorithm_serde_round_trip() {
        for algo in [
            IndexAlgorithm::Flat,
            IndexAlgorithm::nsg(),
            IndexAlgorithm::vamana(),
            IndexAlgorithm::mqa_graph(),
            IndexAlgorithm::hnsw(),
            IndexAlgorithm::ivf(),
        ] {
            let j = serde_json::to_string(&algo).unwrap();
            let back: IndexAlgorithm = serde_json::from_str(&j).unwrap();
            assert_eq!(algo, back);
        }
    }

    fn built_navgraph(seed: u64) -> NavGraph {
        let store = clustered_store(300, 8, 6, seed);
        crate::nsg::pipeline(24, 48, 12, seed).run(&store, Metric::L2, "nsg")
    }

    #[test]
    fn nav_extend_links_new_vertices() {
        let full = clustered_store(400, 8, 8, 31);
        let mut half = VectorStore::new(8);
        for id in 0..300u32 {
            half.push(full.get(id));
        }
        let algo = IndexAlgorithm::vamana();
        let mut built = algo.build_graph(&Arc::new(half), Metric::L2);
        built.grow_to(&full, Metric::L2, &algo);
        assert_eq!(GraphSearcher::len(&built), 400);
        assert!(built.validate().is_empty(), "{:?}", built.validate());
        // New objects are discoverable through the grown graph.
        let mut found = 0usize;
        for id in 300..400u32 {
            let mut d = FlatDistance::for_vertex(&full, id, Metric::L2);
            let mut scratch = crate::scratch::SearchScratch::new();
            let out = built.search_with(&mut d, 5, 64, &mut scratch);
            if out.results.iter().any(|c| c.id == id) {
                found += 1;
            }
        }
        assert!(found >= 90, "only {found}/100 grown objects discoverable");
    }

    #[test]
    fn nav_compact_unlinks_dead_vertices() {
        let store = clustered_store(400, 8, 8, 32);
        let algo = IndexAlgorithm::nsg();
        let mut built = algo.build_graph(&store, Metric::L2);
        let mut tomb = Tombstones::new(400);
        for id in (0..400u32).step_by(5) {
            tomb.kill(id);
        }
        assert!(built.compact_live(&store, Metric::L2, &algo, &tomb));
        let BuiltGraph::Nav(nav) = &built else {
            panic!("nsg builds a Nav graph");
        };
        for (v, u) in nav.graph().edges() {
            assert!(!tomb.is_dead(u), "edge {v}->{u} into dead vertex");
        }
        // The report was refreshed, so validate sees no staleness; only
        // entry-membership defects would remain, and there are none.
        assert!(
            nav.validate().is_empty(),
            "post-compaction violations: {:?}",
            nav.validate()
        );
    }

    #[test]
    fn grow_to_rebuild_families_cover_new_vectors() {
        let full = clustered_store(250, 8, 5, 33);
        let mut half = VectorStore::new(8);
        for id in 0..200u32 {
            half.push(full.get(id));
        }
        for algo in [IndexAlgorithm::Flat, IndexAlgorithm::ivf()] {
            let mut built = algo.build_graph(&Arc::new(half.clone()), Metric::L2);
            built.grow_to(&full, Metric::L2, &algo);
            assert_eq!(GraphSearcher::len(&built), 250, "{}", algo.name());
        }
    }

    #[test]
    fn incremental_recipes_match_families() {
        assert!(IndexAlgorithm::Flat.incremental_recipe().is_none());
        assert!(IndexAlgorithm::hnsw().incremental_recipe().is_none());
        assert!(IndexAlgorithm::ivf().incremental_recipe().is_none());
        let Some((l, SelectStage::RobustPrune { alpha, r })) =
            IndexAlgorithm::nsg().incremental_recipe()
        else {
            panic!("nsg has a recipe");
        };
        assert_eq!((l, r), (64, 24));
        assert_eq!(alpha, 1.0);
        let Some((_, SelectStage::RobustPrune { alpha, .. })) =
            IndexAlgorithm::vamana().incremental_recipe()
        else {
            panic!("vamana has a recipe");
        };
        assert!(alpha > 1.0);
    }

    #[test]
    fn validate_accepts_pipeline_graphs() {
        let g = built_navgraph(11);
        let violations = g.validate();
        assert!(violations.is_empty(), "sound graph flagged: {violations:?}");
    }

    #[test]
    fn validate_detects_corruption() {
        use crate::validate::InvariantViolation as V;
        let sound = built_navgraph(12);

        // Adjacency defects surface through the shared checker.
        let mut g = sound.clone();
        g.graph.lists_mut()[0].push(0);
        // The edit also desynchronizes the report, so look specifically
        // for the self-loop.
        assert!(g
            .validate()
            .iter()
            .any(|x| matches!(x, V::SelfLoop { id: 0, .. })));

        // No entries.
        let mut g = sound.clone();
        g.entries.clear();
        assert!(g.validate().iter().any(|x| matches!(x, V::BadEntry { .. })));

        // Duplicate entries.
        let mut g = sound.clone();
        g.entries.push(g.entries[0]);
        assert!(g.validate().iter().any(|x| matches!(x, V::BadEntry { .. })));

        // Forged report: edge count no longer matches the structure.
        let mut g = sound.clone();
        g.report.edges += 7;
        assert!(g
            .validate()
            .iter()
            .any(|x| matches!(x, V::StaleReport { .. })));

        // Forged connectivity.
        let mut g = sound;
        g.report.connectivity /= 2.0;
        assert!(g
            .validate()
            .iter()
            .any(|x| matches!(x, V::StaleReport { .. })));
    }
}
