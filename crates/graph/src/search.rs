//! The shared beam-search routine (greedy best-first graph traversal).
//!
//! This is the paper's Query Execution core: start from entry vertices,
//! repeatedly expand the closest unexpanded candidate, keep the best `ef`
//! results, stop when the closest frontier candidate is no better than the
//! worst retained result. Distance evaluations go through
//! [`crate::traits::DistanceFn`] with the current result bound, so fused
//! multi-modal evaluations can abandon early (incremental scanning); a
//! candidate whose evaluation is abandoned is provably outside the beam and
//! is dropped — the exact same decision a full evaluation would reach.
//!
//! Both public entry points — the pruning query search and the
//! exact-collecting construction search — are instances of one frontier
//! walk ([`WalkMode`] selects the evaluation policy), and both run on a
//! caller-supplied [`SearchScratch`] so the steady state performs no O(n)
//! allocation; the `*_with`-less wrappers borrow a thread-pooled scratch.

use crate::adjacency::Adjacency;
use crate::scratch::SearchScratch;
use crate::traits::DistanceFn;
use mqa_vector::{Candidate, MinCandidate, TopK, VecId};

/// Work counters of one search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices expanded (frontier pops whose neighbours were visited).
    pub hops: u64,
    /// Distance evaluations that ran to completion.
    pub evals: u64,
    /// Distance evaluations abandoned by incremental scanning.
    pub pruned: u64,
    /// Distinct 4 KiB page reads that went to the (simulated) device
    /// (populated only by the Starling paged index; zero elsewhere).
    pub pages_read: u64,
    /// Distinct page touches served by the shared page cache instead of
    /// the device (zero unless a cache is attached).
    pub pages_cached: u64,
}

impl SearchStats {
    /// Accumulates another record.
    pub fn merge(&mut self, other: &SearchStats) {
        self.hops += other.hops;
        self.evals += other.evals;
        self.pruned += other.pruned;
        self.pages_read += other.pages_read;
        self.pages_cached += other.pages_cached;
    }

    /// Total distance-evaluation work: completed plus abandoned
    /// evaluations (each abandoned evaluation still scanned a prefix).
    pub fn total_distance_work(&self) -> u64 {
        self.evals + self.pruned
    }

    /// Folds this record into the global `mqa-obs` registry under the
    /// index algorithm name `algo`: workspace-wide `graph.search.*`
    /// counters plus per-algorithm latency and per-query work histograms,
    /// so paged (Starling) and resident indexes are comparable in one
    /// report.
    pub fn record(&self, algo: &str, elapsed_us: u64) {
        let reg = mqa_obs::global();
        reg.counter("graph.search.queries").inc();
        reg.counter("graph.search.hops").add(self.hops);
        reg.counter("graph.search.evals").add(self.evals);
        reg.counter("graph.search.pruned").add(self.pruned);
        reg.counter("graph.search.pages_read").add(self.pages_read);
        reg.counter("graph.search.pages_cached")
            .add(self.pages_cached);
        let (latency_name, work_name) = per_algo_histogram_names(algo);
        reg.histogram(latency_name).record(elapsed_us);
        reg.histogram(work_name).record(self.total_distance_work());
        // Attribute the same work to the active query trace, if any.
        mqa_obs::trace::add_search_work(
            self.hops,
            self.evals,
            self.pruned,
            self.pages_read,
            self.pages_cached,
        );
    }
}

/// The per-algorithm histogram names for `algo`, precomputed for every
/// index algorithm the workspace ships so the per-query record path never
/// formats a metric name. Unknown algorithm names (external `GraphIndex`
/// impls) fall back to the unlabeled workspace-wide histograms rather
/// than allocating.
fn per_algo_histogram_names(algo: &str) -> (&'static str, &'static str) {
    match algo {
        "flat" => ("graph.flat.search_us", "graph.flat.evals"),
        "hnsw" => ("graph.hnsw.search_us", "graph.hnsw.evals"),
        "ivf" => ("graph.ivf.search_us", "graph.ivf.evals"),
        "nsg" => ("graph.nsg.search_us", "graph.nsg.evals"),
        "vamana" => ("graph.vamana.search_us", "graph.vamana.evals"),
        "mqa-graph" => ("graph.mqa-graph.search_us", "graph.mqa-graph.evals"),
        "starling" => ("graph.starling.search_us", "graph.starling.evals"),
        _ => ("graph.other.search_us", "graph.other.evals"),
    }
}

/// Result of one search: the `k` best candidates (ascending distance) and
/// the work performed.
#[derive(Debug, Clone, Default)]
pub struct SearchOutput {
    /// Nearest candidates, ascending by distance.
    pub results: Vec<Candidate>,
    /// Work counters.
    pub stats: SearchStats,
}

impl SearchOutput {
    /// Ids of the results, in rank order.
    pub fn ids(&self) -> Vec<VecId> {
        self.results.iter().map(|c| c.id).collect()
    }
}

/// Evaluation policy of the shared frontier walk.
enum WalkMode {
    /// Query mode: evaluate against the running bound so fused scans can
    /// abandon early; abandoned candidates are counted as pruned.
    Prune,
    /// Construction mode: every touched vertex gets an exact distance and
    /// lands in the scratch's evaluated pool (NSG/Vamana's "visited list"
    /// supplies long-range edge candidates).
    CollectExact,
}

/// The one frontier loop behind both public searches. Runs entirely on
/// `scratch`; results are the top-`ef` beam, work lands in `stats`, and in
/// [`WalkMode::CollectExact`] every evaluated candidate is appended to
/// `scratch.evaluated`.
fn frontier_walk(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    ef: usize,
    mode: WalkMode,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> TopK {
    scratch.begin(graph.len());
    let SearchScratch {
        visited,
        frontier,
        evaluated,
        ..
    } = scratch;
    let mut results = TopK::new(ef);

    for &e in entries {
        if !visited.insert(e) {
            continue;
        }
        let d = dist.exact(e);
        stats.evals += 1;
        let c = Candidate::new(e, d);
        if matches!(mode, WalkMode::CollectExact) {
            evaluated.push(c);
        }
        results.offer(c);
        frontier.push(MinCandidate(c));
    }

    while let Some(MinCandidate(current)) = frontier.pop() {
        if current.dist > results.bound() {
            break;
        }
        stats.hops += 1;
        for &nb in graph.neighbors(current.id) {
            if !visited.insert(nb) {
                continue;
            }
            match mode {
                WalkMode::Prune => match dist.eval(nb, results.bound()) {
                    Some(d) => {
                        stats.evals += 1;
                        let c = Candidate::new(nb, d);
                        if results.offer(c) {
                            frontier.push(MinCandidate(c));
                        }
                    }
                    None => {
                        // Abandoned: distance >= bound, cannot enter the beam.
                        stats.pruned += 1;
                    }
                },
                WalkMode::CollectExact => {
                    // Construction needs exact distances for the pool, so
                    // no early abandonment here.
                    let c = Candidate::new(nb, dist.exact(nb));
                    stats.evals += 1;
                    evaluated.push(c);
                    if results.offer(c) {
                        frontier.push(MinCandidate(c));
                    }
                }
            }
        }
    }
    results
}

/// Beam search over `graph` from `entries` on a caller-supplied scratch,
/// returning the `k` best candidates using beam width `ef` (clamped to at
/// least `k`).
///
/// # Panics
/// Panics if `entries` is empty or `k == 0`.
pub fn beam_search_with(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    k: usize,
    ef: usize,
    scratch: &mut SearchScratch,
) -> SearchOutput {
    assert!(
        !entries.is_empty(),
        "beam search requires at least one entry vertex"
    );
    assert!(k > 0, "beam search requires k >= 1");
    let ef = ef.max(k);
    let mut stats = SearchStats::default();
    let results = frontier_walk(
        graph,
        entries,
        dist,
        ef,
        WalkMode::Prune,
        scratch,
        &mut stats,
    );
    let mut out: Vec<Candidate> = results.into_sorted();
    out.truncate(k);
    SearchOutput {
        results: out,
        stats,
    }
}

/// Beam search on the calling thread's pooled scratch — identical results
/// to [`beam_search_with`], no scratch to thread through.
///
/// # Panics
/// Panics if `entries` is empty or `k == 0`.
pub fn beam_search(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    k: usize,
    ef: usize,
) -> SearchOutput {
    crate::scratch::with_pooled(|scratch| beam_search_with(graph, entries, dist, k, ef, scratch))
}

/// Beam search that also returns **every candidate evaluated** along the
/// way (the "visited list" of the NSG/Vamana papers), on a caller-supplied
/// scratch. Construction uses this pool for neighbour selection: path
/// vertices crossed en route give each vertex long-range edge candidates
/// that the final top-`ef` alone would not contain — without them, tightly
/// clustered data yields graphs whose clusters are mutually unreachable in
/// practice.
///
/// # Panics
/// Panics if `entries` is empty or `ef == 0`.
pub fn beam_search_collect_with(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    ef: usize,
    scratch: &mut SearchScratch,
) -> Vec<Candidate> {
    assert!(
        !entries.is_empty(),
        "beam search requires at least one entry vertex"
    );
    assert!(ef > 0, "beam search requires ef >= 1");
    let mut stats = SearchStats::default();
    let _ = frontier_walk(
        graph,
        entries,
        dist,
        ef,
        WalkMode::CollectExact,
        scratch,
        &mut stats,
    );
    std::mem::take(&mut scratch.evaluated)
}

/// [`beam_search_collect_with`] on the calling thread's pooled scratch.
///
/// # Panics
/// Panics if `entries` is empty or `ef == 0`.
pub fn beam_search_collect(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    ef: usize,
) -> Vec<Candidate> {
    crate::scratch::with_pooled(|scratch| {
        beam_search_collect_with(graph, entries, dist, ef, scratch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FlatDistance;
    use mqa_vector::{Metric, VectorStore};

    /// A line of points 0..n at x = id; fully connected chain.
    fn chain(n: usize) -> (VectorStore, Adjacency) {
        let mut store = VectorStore::new(1);
        let mut g = Adjacency::new(n);
        for i in 0..n {
            store.push(&[i as f32]);
        }
        for i in 0..n {
            let mut nb = Vec::new();
            if i > 0 {
                nb.push((i - 1) as VecId);
            }
            if i + 1 < n {
                nb.push((i + 1) as VecId);
            }
            g.set_neighbors(i as VecId, nb);
        }
        (store, g)
    }

    fn dist_to<'a>(store: &'a VectorStore, q: &'a [f32]) -> FlatDistance<'a> {
        FlatDistance::new(store, q, Metric::L2).expect("test query dims match")
    }

    #[test]
    fn finds_nearest_on_chain() {
        let (store, g) = chain(50);
        let q = [31.4f32];
        let mut d = dist_to(&store, &q);
        let out = beam_search(&g, &[0], &mut d, 3, 10);
        assert_eq!(out.ids(), vec![31, 32, 30]);
    }

    #[test]
    fn results_sorted_ascending() {
        let (store, g) = chain(30);
        let q = [12.0f32];
        let mut d = dist_to(&store, &q);
        let out = beam_search(&g, &[29], &mut d, 5, 8);
        for w in out.results.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(out.results[0].id, 12);
    }

    #[test]
    fn k_larger_than_population() {
        let (store, g) = chain(4);
        let q = [0.0f32];
        let mut d = dist_to(&store, &q);
        let out = beam_search(&g, &[3], &mut d, 10, 10);
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn multiple_entries_deduplicated() {
        let (store, g) = chain(10);
        let q = [5.0f32];
        let mut d = dist_to(&store, &q);
        let out = beam_search(&g, &[0, 0, 9], &mut d, 1, 4);
        assert_eq!(out.results[0].id, 5);
    }

    #[test]
    fn isolated_entry_returns_only_itself() {
        let mut store = VectorStore::new(1);
        for i in 0..3 {
            store.push(&[i as f32]);
        }
        let g = Adjacency::new(3); // no edges
        let q = [2.0f32];
        let mut d = dist_to(&store, &q);
        let out = beam_search(&g, &[0], &mut d, 2, 4);
        assert_eq!(out.ids(), vec![0]);
    }

    #[test]
    fn stats_count_work() {
        let (store, g) = chain(20);
        let q = [10.0f32];
        let mut d = dist_to(&store, &q);
        let out = beam_search(&g, &[0], &mut d, 1, 2);
        assert!(out.stats.evals > 0);
        assert!(out.stats.hops > 0);
        assert_eq!(out.stats.pruned, 0); // flat distance never abandons
    }

    #[test]
    #[should_panic(expected = "entry vertex")]
    fn empty_entries_panics() {
        let (store, g) = chain(3);
        let q = [0.0f32];
        let mut d = dist_to(&store, &q);
        beam_search(&g, &[], &mut d, 1, 1);
    }

    #[test]
    fn ef_widens_exploration() {
        // With a misleading graph shape, a wider beam reaches a better
        // result set; at minimum it never shrinks the evaluation count.
        let (store, g) = chain(100);
        let q = [99.0f32];
        let mut d1 = dist_to(&store, &q);
        let narrow = beam_search(&g, &[0], &mut d1, 1, 1);
        let mut d2 = dist_to(&store, &q);
        let wide = beam_search(&g, &[0], &mut d2, 1, 16);
        assert!(wide.stats.evals >= narrow.stats.evals);
        assert_eq!(wide.results[0].id, 99);
    }

    /// Pins the exact output of `beam_search_collect` after the dedup into
    /// the shared frontier walk: the walk from vertex 0 toward 5.0 on a
    /// chain of 10 with ef = 3 touches exactly vertices 0..=7 in id order
    /// (the beam dies two steps past the optimum), each with its exact
    /// squared distance. Computed by hand against the pre-refactor loop.
    #[test]
    fn collect_pins_evaluated_pool() {
        let (store, g) = chain(10);
        let q = [5.0f32];
        let mut d = dist_to(&store, &q);
        let pool = beam_search_collect(&g, &[0], &mut d, 3);
        let ids: Vec<VecId> = pool.iter().map(|c| c.id).collect();
        let dists: Vec<f32> = pool.iter().map(|c| c.dist).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(dists, vec![25.0, 16.0, 9.0, 4.0, 1.0, 0.0, 1.0, 4.0]);
    }

    /// Both entry points must be bit-identical to their `_with` variants
    /// on a reused scratch (the dedup satellite's pin).
    #[test]
    fn entry_points_match_scratch_variants() {
        let (store, g) = chain(64);
        let mut scratch = SearchScratch::new();
        for q in [3.3f32, 41.0, 63.0, 0.2] {
            let query = [q];
            let mut d1 = dist_to(&store, &query);
            let pooled = beam_search(&g, &[0, 63], &mut d1, 4, 12);
            let mut d2 = dist_to(&store, &query);
            let scratched = beam_search_with(&g, &[0, 63], &mut d2, 4, 12, &mut scratch);
            assert_eq!(pooled.results, scratched.results);
            assert_eq!(pooled.stats, scratched.stats);

            let mut d3 = dist_to(&store, &query);
            let pool_a = beam_search_collect(&g, &[0], &mut d3, 6);
            let mut d4 = dist_to(&store, &query);
            let pool_b = beam_search_collect_with(&g, &[0], &mut d4, 6, &mut scratch);
            assert_eq!(pool_a, pool_b);
        }
    }
}
