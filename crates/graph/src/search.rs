//! The shared beam-search routine (greedy best-first graph traversal).
//!
//! This is the paper's Query Execution core: start from entry vertices,
//! repeatedly expand the closest unexpanded candidate, keep the best `ef`
//! results, stop when the closest frontier candidate is no better than the
//! worst retained result. Distance evaluations go through
//! [`crate::traits::DistanceFn`] with the current result bound, so fused
//! multi-modal evaluations can abandon early (incremental scanning); a
//! candidate whose evaluation is abandoned is provably outside the beam and
//! is dropped — the exact same decision a full evaluation would reach.

use crate::adjacency::Adjacency;
use crate::traits::DistanceFn;
use mqa_vector::{Candidate, MinCandidate, TopK, VecId};
use std::collections::BinaryHeap;

/// Work counters of one search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices expanded (frontier pops whose neighbours were visited).
    pub hops: u64,
    /// Distance evaluations that ran to completion.
    pub evals: u64,
    /// Distance evaluations abandoned by incremental scanning.
    pub pruned: u64,
    /// Distinct 4 KiB page reads (populated only by the Starling paged
    /// index; zero elsewhere).
    pub pages_read: u64,
}

impl SearchStats {
    /// Accumulates another record.
    pub fn merge(&mut self, other: &SearchStats) {
        self.hops += other.hops;
        self.evals += other.evals;
        self.pruned += other.pruned;
        self.pages_read += other.pages_read;
    }

    /// Total distance-evaluation work: completed plus abandoned
    /// evaluations (each abandoned evaluation still scanned a prefix).
    pub fn total_distance_work(&self) -> u64 {
        self.evals + self.pruned
    }

    /// Folds this record into the global `mqa-obs` registry under the
    /// index algorithm name `algo`: workspace-wide `graph.search.*`
    /// counters plus per-algorithm latency and per-query work histograms,
    /// so paged (Starling) and resident indexes are comparable in one
    /// report.
    pub fn record(&self, algo: &str, elapsed_us: u64) {
        let reg = mqa_obs::global();
        reg.counter("graph.search.queries").inc();
        reg.counter("graph.search.hops").add(self.hops);
        reg.counter("graph.search.evals").add(self.evals);
        reg.counter("graph.search.pruned").add(self.pruned);
        reg.counter("graph.search.pages_read").add(self.pages_read);
        reg.histogram(&format!("graph.{algo}.search_us"))
            .record(elapsed_us);
        reg.histogram(&format!("graph.{algo}.evals"))
            .record(self.total_distance_work());
    }
}

/// Result of one search: the `k` best candidates (ascending distance) and
/// the work performed.
#[derive(Debug, Clone, Default)]
pub struct SearchOutput {
    /// Nearest candidates, ascending by distance.
    pub results: Vec<Candidate>,
    /// Work counters.
    pub stats: SearchStats,
}

impl SearchOutput {
    /// Ids of the results, in rank order.
    pub fn ids(&self) -> Vec<VecId> {
        self.results.iter().map(|c| c.id).collect()
    }
}

/// Beam search over `graph` from `entries`, returning the `k` best
/// candidates using beam width `ef` (clamped to at least `k`).
///
/// # Panics
/// Panics if `entries` is empty or `k == 0`.
pub fn beam_search(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    k: usize,
    ef: usize,
) -> SearchOutput {
    assert!(
        !entries.is_empty(),
        "beam search requires at least one entry vertex"
    );
    assert!(k > 0, "beam search requires k >= 1");
    let ef = ef.max(k);
    let mut stats = SearchStats::default();
    let mut visited = vec![false; graph.len()];
    let mut results = TopK::new(ef);
    let mut frontier: BinaryHeap<MinCandidate> = BinaryHeap::new();

    for &e in entries {
        if visited[e as usize] {
            continue;
        }
        visited[e as usize] = true;
        let d = dist.exact(e);
        stats.evals += 1;
        let c = Candidate::new(e, d);
        results.offer(c);
        frontier.push(MinCandidate(c));
    }

    while let Some(MinCandidate(current)) = frontier.pop() {
        if current.dist > results.bound() {
            break;
        }
        stats.hops += 1;
        for &nb in graph.neighbors(current.id) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            match dist.eval(nb, results.bound()) {
                Some(d) => {
                    stats.evals += 1;
                    let c = Candidate::new(nb, d);
                    if results.offer(c) {
                        frontier.push(MinCandidate(c));
                    }
                }
                None => {
                    // Abandoned: distance >= bound, cannot enter the beam.
                    stats.pruned += 1;
                }
            }
        }
    }

    let mut out: Vec<Candidate> = results.into_sorted();
    out.truncate(k);
    SearchOutput {
        results: out,
        stats,
    }
}

/// Beam search that also returns **every candidate evaluated** along the
/// way (the "visited list" of the NSG/Vamana papers). Construction uses
/// this pool for neighbour selection: path vertices crossed en route give
/// each vertex long-range edge candidates that the final top-`ef` alone
/// would not contain — without them, tightly clustered data yields graphs
/// whose clusters are mutually unreachable in practice.
pub fn beam_search_collect(
    graph: &Adjacency,
    entries: &[VecId],
    dist: &mut dyn DistanceFn,
    ef: usize,
) -> Vec<Candidate> {
    assert!(
        !entries.is_empty(),
        "beam search requires at least one entry vertex"
    );
    assert!(ef > 0, "beam search requires ef >= 1");
    let mut visited = vec![false; graph.len()];
    let mut results = TopK::new(ef);
    let mut frontier: BinaryHeap<MinCandidate> = BinaryHeap::new();
    let mut evaluated: Vec<Candidate> = Vec::with_capacity(ef * 4);

    for &e in entries {
        if visited[e as usize] {
            continue;
        }
        visited[e as usize] = true;
        let c = Candidate::new(e, dist.exact(e));
        evaluated.push(c);
        results.offer(c);
        frontier.push(MinCandidate(c));
    }
    while let Some(MinCandidate(current)) = frontier.pop() {
        if current.dist > results.bound() {
            break;
        }
        for &nb in graph.neighbors(current.id) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            // Construction needs exact distances for the pool, so no
            // early abandonment here.
            let c = Candidate::new(nb, dist.exact(nb));
            evaluated.push(c);
            if results.offer(c) {
                frontier.push(MinCandidate(c));
            }
        }
    }
    evaluated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FlatDistance;
    use mqa_vector::{Metric, VectorStore};

    /// A line of points 0..n at x = id; fully connected chain.
    fn chain(n: usize) -> (VectorStore, Adjacency) {
        let mut store = VectorStore::new(1);
        let mut g = Adjacency::new(n);
        for i in 0..n {
            store.push(&[i as f32]);
        }
        for i in 0..n {
            let mut nb = Vec::new();
            if i > 0 {
                nb.push((i - 1) as VecId);
            }
            if i + 1 < n {
                nb.push((i + 1) as VecId);
            }
            g.set_neighbors(i as VecId, nb);
        }
        (store, g)
    }

    #[test]
    fn finds_nearest_on_chain() {
        let (store, g) = chain(50);
        let q = [31.4f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        let out = beam_search(&g, &[0], &mut d, 3, 10);
        assert_eq!(out.ids(), vec![31, 32, 30]);
    }

    #[test]
    fn results_sorted_ascending() {
        let (store, g) = chain(30);
        let q = [12.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        let out = beam_search(&g, &[29], &mut d, 5, 8);
        for w in out.results.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(out.results[0].id, 12);
    }

    #[test]
    fn k_larger_than_population() {
        let (store, g) = chain(4);
        let q = [0.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        let out = beam_search(&g, &[3], &mut d, 10, 10);
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn multiple_entries_deduplicated() {
        let (store, g) = chain(10);
        let q = [5.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        let out = beam_search(&g, &[0, 0, 9], &mut d, 1, 4);
        assert_eq!(out.results[0].id, 5);
    }

    #[test]
    fn isolated_entry_returns_only_itself() {
        let mut store = VectorStore::new(1);
        for i in 0..3 {
            store.push(&[i as f32]);
        }
        let g = Adjacency::new(3); // no edges
        let q = [2.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        let out = beam_search(&g, &[0], &mut d, 2, 4);
        assert_eq!(out.ids(), vec![0]);
    }

    #[test]
    fn stats_count_work() {
        let (store, g) = chain(20);
        let q = [10.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        let out = beam_search(&g, &[0], &mut d, 1, 2);
        assert!(out.stats.evals > 0);
        assert!(out.stats.hops > 0);
        assert_eq!(out.stats.pruned, 0); // flat distance never abandons
    }

    #[test]
    #[should_panic(expected = "entry vertex")]
    fn empty_entries_panics() {
        let (store, g) = chain(3);
        let q = [0.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        beam_search(&g, &[], &mut d, 1, 1);
    }

    #[test]
    fn ef_widens_exploration() {
        // With a misleading graph shape, a wider beam reaches a better
        // result set; at minimum it never shrinks the evaluation count.
        let (store, g) = chain(100);
        let q = [99.0f32];
        let mut d1 = FlatDistance::new(&store, &q, Metric::L2);
        let narrow = beam_search(&g, &[0], &mut d1, 1, 1);
        let mut d2 = FlatDistance::new(&store, &q, Metric::L2);
        let wide = beam_search(&g, &[0], &mut d2, 1, 16);
        assert!(wide.stats.evals >= narrow.stats.evals);
        assert_eq!(wide.results[0].id, 99);
    }
}
