//! Vamana — the DiskANN graph — as a pipeline instance.
//!
//! Vamana starts from a *random* regular graph (no kNN precomputation),
//! then makes two passes in which every vertex re-acquires candidates by
//! searching the current graph from the medoid and prunes them with the
//! α-robust rule (`α > 1` keeps a fraction of longer "highway" edges,
//! which is what gives DiskANN its low hop counts). The same stages as NSG,
//! differently configured — the point of the five-stage decomposition.

use crate::pipeline::{
    EntryStage, GraphPipeline, InitStage, NavGraph, RefineStage, RepairStage, SelectStage,
};
use mqa_vector::{Metric, VectorStore};
use std::sync::Arc;

/// The canonical Vamana pipeline configuration.
///
/// * `r` — degree bound;
/// * `l` — construction beam width;
/// * `alpha` — robust-pruning slack (DiskANN defaults to `1.2`);
/// * `seed` — randomness of the initial graph.
pub fn pipeline(r: usize, l: usize, alpha: f32, seed: u64) -> GraphPipeline {
    GraphPipeline {
        init: InitStage::Random { degree: r, seed },
        entry: EntryStage::Medoid,
        refine: RefineStage { l, passes: 2 },
        select: SelectStage::RobustPrune { alpha, r },
        repair: RepairStage::GrowFromEntry,
    }
}

/// Builds a Vamana graph over `store`.
pub fn build(
    store: &Arc<VectorStore>,
    metric: Metric,
    r: usize,
    l: usize,
    alpha: f32,
    seed: u64,
) -> NavGraph {
    pipeline(r, l, alpha, seed).run(store, metric, "vamana")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{FlatDistance, GraphSearcher};
    use mqa_rng::StdRng;

    fn store(n: usize, dim: usize, seed: u64) -> Arc<VectorStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        Arc::new(s)
    }

    #[test]
    fn vamana_is_connected() {
        let s = store(600, 8, 1);
        let nav = build(&s, Metric::L2, 16, 40, 1.2, 0);
        assert!((nav.report().connectivity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vamana_self_search_finds_self() {
        let s = store(400, 6, 2);
        let nav = build(&s, Metric::L2, 16, 40, 1.2, 0);
        for v in (0..400u32).step_by(41) {
            let mut d = FlatDistance::for_vertex(&s, v, Metric::L2);
            let out = nav.search(&mut d, 1, 32);
            assert_eq!(out.results[0].id, v, "vertex {v} should find itself");
        }
    }

    #[test]
    fn alpha_above_one_yields_denser_graph_than_nsg_rule() {
        let s = store(500, 8, 3);
        let tight = build(&s, Metric::L2, 16, 40, 1.0, 0);
        let loose = build(&s, Metric::L2, 16, 40, 1.6, 0);
        assert!(
            loose.report().avg_degree >= tight.report().avg_degree,
            "alpha 1.6 degree {} < alpha 1.0 degree {}",
            loose.report().avg_degree,
            tight.report().avg_degree
        );
    }

    #[test]
    fn two_refine_passes_configured() {
        assert_eq!(pipeline(10, 20, 1.2, 0).refine.passes, 2);
    }
}
