//! Index persistence: snapshot a built [`UnifiedIndex`] to JSON and restore
//! it without rebuilding the graph.
//!
//! The paper's Flexibility feature includes index *deployment*: once a
//! navigation graph is built over a knowledge base it should be reusable
//! across sessions. A [`UnifiedSnapshot`] captures everything search needs
//! — the multi-vector store, the weights, the metric, the algorithm
//! configuration, and the built navigation structure
//! ([`crate::pipeline::BuiltGraph`]) — so a restored index answers queries
//! identically to the original, with none of the build cost.

use crate::live::Tombstones;
use crate::pipeline::{BuiltGraph, IndexAlgorithm};
use crate::unified::UnifiedIndex;
use mqa_vector::{Metric, MultiVectorStore, Weights};
use serde::{Deserialize, Serialize};

/// A complete persisted unified index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifiedSnapshot {
    /// The multi-vector object store.
    pub store: MultiVectorStore,
    /// The build-time modality weights.
    pub weights: Weights,
    /// The metric.
    pub metric: Metric,
    /// The algorithm configuration (for provenance / re-builds).
    pub algorithm: IndexAlgorithm,
    /// The built navigation structure.
    pub graph: BuiltGraph,
    /// The deletion state at snapshot time (all-live for an index that
    /// was never mutated).
    pub tombstones: Tombstones,
}

impl UnifiedSnapshot {
    /// Serializes to JSON.
    ///
    /// Validates the snapshot first: the serializer emits `null` for
    /// non-finite floats, which parses back but fails to restore into an
    /// `f32` — a snapshot that *looks* saved and then silently refuses to
    /// load. (The previous implementation went further and swallowed any
    /// serialization failure into an empty string.)
    ///
    /// # Errors
    /// Names the offending field when the snapshot holds a non-finite
    /// value; propagates the serializer message otherwise.
    pub fn to_json(&self) -> Result<String, String> {
        for (m, &w) in self.weights.as_slice().iter().enumerate() {
            if !w.is_finite() {
                return Err(format!("snapshot weight for modality {m} is {w}"));
            }
        }
        for id in 0..mqa_vector::cast::vec_id(self.store.len()) {
            if let Some(x) = self.store.concat_of(id).iter().find(|x| !x.is_finite()) {
                return Err(format!("snapshot vector {id} holds non-finite {x}"));
            }
        }
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Restores from JSON.
    ///
    /// # Errors
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Reconstructs the live index, deletion state included: a restored
    /// index keeps filtering the same tombstoned ids as the original.
    pub fn restore(self) -> UnifiedIndex {
        UnifiedIndex::from_parts_with_tombstones(
            self.store,
            self.weights,
            self.metric,
            self.graph,
            self.algorithm,
            self.tombstones,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;
    use mqa_vector::{MultiVector, Schema};

    fn store(n: usize, seed: u64) -> MultiVectorStore {
        let schema = Schema::text_image(6, 6);
        let mut s = MultiVectorStore::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let parts: Vec<Vec<f32>> = (0..2)
                .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            s.push(&MultiVector::complete(&schema, parts));
        }
        s
    }

    fn query(seed: u64) -> MultiVector {
        let schema = Schema::text_image(6, 6);
        let mut rng = StdRng::seed_from_u64(seed);
        MultiVector::complete(
            &schema,
            (0..2)
                .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect(),
        )
    }

    #[test]
    fn snapshot_round_trip_preserves_search_results() {
        for algo in [
            IndexAlgorithm::Flat,
            IndexAlgorithm::hnsw(),
            IndexAlgorithm::nsg(),
            IndexAlgorithm::vamana(),
            IndexAlgorithm::mqa_graph(),
        ] {
            let idx = UnifiedIndex::build(
                store(300, 1),
                Weights::normalized(&[1.3, 0.7]),
                Metric::L2,
                &algo,
            );
            let q = query(9);
            let before = idx.search(&q, None, 10, 48).ids();
            let snapshot = idx.snapshot();
            let json = snapshot.to_json().expect("finite snapshot serializes");
            let restored = UnifiedSnapshot::from_json(&json)
                .expect("round trips")
                .restore();
            let after = restored.search(&q, None, 10, 48).ids();
            assert_eq!(before, after, "algorithm {}", algo.name());
            assert_eq!(restored.algorithm(), &algo);
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_tombstones() {
        let idx = UnifiedIndex::build(
            store(200, 8),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::hnsw(),
        );
        idx.remove_objects(&[3, 64, 127]).expect("in range");
        let q = query(10);
        let before = idx.search(&q, None, 10, 48).ids();
        let json = idx.snapshot().to_json().expect("finite snapshot");
        let restored = UnifiedSnapshot::from_json(&json)
            .expect("round trips")
            .restore();
        assert_eq!(restored.live_len(), 197);
        let snap = restored.current();
        for id in [3u32, 64, 127] {
            assert!(snap.tombstones().is_dead(id), "id {id} lost its tombstone");
        }
        let after = restored.search(&q, None, 10, 48).ids();
        assert_eq!(before, after, "restored search must keep filtering");
    }

    #[test]
    fn restored_index_has_zero_build_time() {
        let idx = UnifiedIndex::build(
            store(100, 2),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::Flat,
        );
        let restored = idx.snapshot().restore();
        assert_eq!(restored.build_time(), std::time::Duration::ZERO);
        assert_eq!(restored.len(), 100);
    }

    #[test]
    #[should_panic(expected = "does not match the store")]
    fn mismatched_parts_rejected() {
        let idx = UnifiedIndex::build(
            store(50, 3),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::Flat,
        );
        let mut snap = idx.snapshot();
        snap.store = store(10, 4); // wrong population
        snap.restore();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(UnifiedSnapshot::from_json("{nope").is_err());
    }

    /// Regression: a snapshot holding a non-finite value used to
    /// serialize "successfully" (the value became JSON `null`, or any
    /// failure became `""`), producing a snapshot that silently refused
    /// to restore later. It must fail loudly at save time instead.
    #[test]
    fn non_finite_store_value_fails_at_save_time() {
        let idx = UnifiedIndex::build(
            store(20, 5),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::Flat,
        );
        let mut snap = idx.snapshot();
        let schema = Schema::text_image(6, 6);
        snap.store.push(&MultiVector::complete(
            &schema,
            vec![vec![f32::NAN; 6], vec![0.0; 6]],
        ));
        let err = snap.to_json().expect_err("NaN must not serialize");
        assert!(err.contains("non-finite"), "uninformative error: {err}");
        assert!(err.contains("20"), "error must name the vector: {err}");
    }

    /// And a healthy snapshot keeps round-tripping — the validation pass
    /// rejects nothing finite.
    #[test]
    fn finite_snapshot_serializes_ok() {
        let idx = UnifiedIndex::build(
            store(20, 6),
            Weights::normalized(&[0.4, 1.6]),
            Metric::L2,
            &IndexAlgorithm::Flat,
        );
        let json = idx.snapshot().to_json().expect("finite snapshot");
        assert!(UnifiedSnapshot::from_json(&json).is_ok());
    }
}
