//! Starling-style disk-resident layout (reference 9 of the paper).
//!
//! Starling's contribution is an **I/O-efficient layout** for graph indexes
//! that live on disk: vertices (vector + adjacency) are packed into fixed
//! 4 KiB pages, and the packing is chosen so that graph *neighbourhoods*
//! share pages. During search, fetching a vertex costs one page read unless
//! its page is already cached for this query — and once a page is in, every
//! other vertex on it is evaluated for free (block-level expansion).
//!
//! ## Substitution note (see DESIGN.md §2)
//!
//! We simulate the block device: a [`PageLayout`] maps vertices to page
//! ids, and [`PagedIndex::search`] counts distinct page reads per query.
//! The measured quantity — page reads at matched recall, clustered vs
//! insertion-order layout — is exactly the metric the Starling paper
//! optimizes; only the physical SSD is replaced by counters.

use crate::adjacency::Adjacency;
use crate::live::Tombstones;
use crate::scratch::{SearchScratch, VisitedSet};
use crate::search::{SearchOutput, SearchStats};
use crate::traits::{DistanceFn, GraphSearcher};
use mqa_cache::PageCache;
use mqa_vector::{Candidate, MinCandidate, TopK, VecId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Timing profile of the simulated block device. The default profile is
/// free (pure counters, exactly the pre-existing behaviour); a non-zero
/// [`DeviceProfile::read_latency`] charges wall-clock time per distinct
/// page read, which is what makes paged search I/O-bound — and what the
/// concurrent engine overlaps across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Latency charged (slept) per distinct 4 KiB page read.
    pub read_latency: Duration,
}

impl DeviceProfile {
    /// A device profile with the given per-page read latency.
    pub fn with_read_latency(read_latency: Duration) -> Self {
        Self { read_latency }
    }
}

/// How vertices are assigned to pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutStrategy {
    /// Vertices packed in insertion (id) order — the naive baseline.
    InsertionOrder,
    /// BFS neighbourhood clustering: pages are filled by walking the graph
    /// breadth-first, so a page holds a connected patch (Starling's
    /// in-memory navigation-graph/page-layout idea distilled).
    BfsCluster,
}

/// A vertex → page assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLayout {
    page_of: Vec<u32>,
    pages: usize,
    per_page: usize,
    strategy: LayoutStrategy,
}

impl PageLayout {
    /// Builds a layout for `graph` with `per_page` vertices per 4 KiB page.
    ///
    /// `per_page` models `page_size / (vector bytes + adjacency bytes)`;
    /// callers compute it from their dimensionality (see
    /// [`PageLayout::vertices_per_page`]).
    ///
    /// # Panics
    /// Panics if `per_page == 0` or the graph is empty.
    pub fn build(graph: &Adjacency, per_page: usize, strategy: LayoutStrategy) -> Self {
        assert!(per_page > 0, "a page must hold at least one vertex");
        assert!(!graph.is_empty(), "layout over an empty graph");
        let n = graph.len();
        let order: Vec<VecId> = match strategy {
            LayoutStrategy::InsertionOrder => (0..n as VecId).collect(),
            LayoutStrategy::BfsCluster => {
                let mut order = Vec::with_capacity(n);
                let mut seen = VisitedSet::new(n);
                seen.next_epoch();
                for start in 0..n as VecId {
                    if !seen.insert(start) {
                        continue;
                    }
                    let mut queue = std::collections::VecDeque::new();
                    queue.push_back(start);
                    while let Some(v) = queue.pop_front() {
                        order.push(v);
                        for &u in graph.neighbors(v) {
                            if seen.insert(u) {
                                queue.push_back(u);
                            }
                        }
                    }
                }
                order
            }
        };
        let mut page_of = vec![0u32; n];
        for (pos, &v) in order.iter().enumerate() {
            // INVARIANT: order permutes 0..n and per_page >= 1 (clamped
            // at construction); page numbers fit u32 since pos < n.
            page_of[v as usize] = mqa_vector::cast::vec_id(pos / per_page);
        }
        let pages = n.div_ceil(per_page);
        Self {
            page_of,
            pages,
            per_page,
            strategy,
        }
    }

    /// Vertices that fit a 4 KiB page given vector dimensionality and a
    /// degree bound (f32 vector + u32 neighbour ids + u32 header).
    pub fn vertices_per_page(dim: usize, max_degree: usize) -> usize {
        const PAGE: usize = 4096;
        // INVARIANT: the +4 header byte term keeps per_vertex nonzero.
        let per_vertex = 4 * dim + 4 * max_degree + 4;
        (PAGE / per_vertex).max(1)
    }

    /// Page of vertex `v`.
    #[inline]
    pub fn page(&self, v: VecId) -> u32 {
        // INVARIANT: `page_of` is sized to the vertex count and ids come
        // from the layout's own graph.
        self.page_of[v as usize]
    }

    /// Total number of pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Vertices per page.
    pub fn per_page(&self) -> usize {
        self.per_page
    }

    /// The strategy this layout was built with.
    pub fn strategy(&self) -> LayoutStrategy {
        self.strategy
    }
}

/// A graph index with a paged on-"disk" layout and per-query I/O counting.
pub struct PagedIndex {
    graph: Adjacency,
    entries: Vec<VecId>,
    layout: PageLayout,
    device: DeviceProfile,
    cache: Option<Arc<PageCache>>,
}

impl PagedIndex {
    /// Wraps a built graph with a layout.
    ///
    /// # Panics
    /// Panics if `entries` is empty or layout size mismatches the graph.
    pub fn new(graph: Adjacency, entries: Vec<VecId>, layout: PageLayout) -> Self {
        assert!(!entries.is_empty(), "paged index requires entry vertices");
        assert_eq!(
            layout.page_of.len(),
            graph.len(),
            "layout/graph size mismatch"
        );
        Self {
            graph,
            entries,
            layout,
            device: DeviceProfile::default(),
            cache: None,
        }
    }

    /// Attaches a timing profile to the simulated device; every distinct
    /// page read then costs [`DeviceProfile::read_latency`] of wall-clock
    /// time on the searching thread.
    pub fn with_device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// The device timing profile in use.
    pub fn device(&self) -> DeviceProfile {
        self.device
    }

    /// Attaches a shared block cache over the paged layout: a page whose
    /// id is resident in `cache` costs no device read (it is counted in
    /// [`SearchStats::pages_cached`] instead of
    /// [`SearchStats::pages_read`]). Search *decisions* never consult the
    /// cache, so results are bit-identical with and without one — only
    /// where the time goes changes, exactly like a real block cache.
    pub fn with_page_cache(mut self, cache: Arc<PageCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The shared page cache, if one is attached.
    pub fn page_cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.as_ref()
    }

    /// The layout in use.
    pub fn layout(&self) -> &PageLayout {
        &self.layout
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Adjacency {
        &self.graph
    }

    /// Reads the page of `v` unless already resident this query: a page
    /// found in the shared block cache is free, otherwise the read is
    /// counted and the device latency charged.
    fn read_page(&self, v: VecId, pages: &mut VisitedSet, stats: &mut SearchStats) {
        let page = self.layout.page(v);
        if !pages.insert(page) {
            return; // already touched by this query
        }
        if let Some(cache) = &self.cache {
            if cache.probe(page) {
                stats.pages_cached += 1;
                return;
            }
        }
        stats.pages_read += 1;
        if !self.device.read_latency.is_zero() {
            std::thread::sleep(self.device.read_latency);
        }
    }

    /// Beam search that counts page reads: touching a vertex whose page has
    /// not been read this query costs one read; page residents are then
    /// free. Returns results plus stats with `pages_read` populated.
    pub fn search_paged(&self, dist: &mut dyn DistanceFn, k: usize, ef: usize) -> SearchOutput {
        crate::scratch::with_pooled(|scratch| self.search_paged_with(dist, k, ef, scratch))
    }

    /// [`PagedIndex::search_paged`] on a caller-supplied scratch: both the
    /// vertex-visited set and the per-query page cache live there, so the
    /// steady state allocates nothing.
    pub fn search_paged_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> SearchOutput {
        // ALLOC: materializes the returned hit list (at most k entries);
        // allocation-averse callers use `search_paged_into` with a
        // caller-owned buffer instead.
        let mut results = Vec::with_capacity(k.min(ef.max(k)));
        let stats = self.search_paged_into(dist, k, ef, scratch, &mut results);
        SearchOutput { results, stats }
    }

    /// [`PagedIndex::search_paged_with`] writing the hits into a
    /// caller-owned buffer instead of returning a fresh `Vec`: the beam
    /// collector, frontier, and both visited sets all live on `scratch`,
    /// so a warmed `(scratch, out)` pair serves a query with **zero heap
    /// allocations** — the property the `alloc-witness` counting
    /// allocator pins in the engine gate. Returns the work stats.
    pub fn search_paged_into(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
        out: &mut Vec<Candidate>,
    ) -> SearchStats {
        assert!(k > 0, "search requires k >= 1");
        let sw = mqa_obs::Stopwatch::start();
        let ef = ef.max(k);
        let mut stats = SearchStats::default();
        scratch.begin(self.graph.len());
        scratch.begin_pages(self.layout.pages());
        let SearchScratch {
            visited,
            pages,
            frontier,
            beam,
            ..
        } = scratch;
        beam.reset(ef);
        for &e in &self.entries {
            if !visited.insert(e) {
                continue;
            }
            self.read_page(e, pages, &mut stats);
            let d = dist.exact(e);
            stats.evals += 1;
            let c = Candidate::new(e, d);
            beam.offer(c);
            frontier.push(MinCandidate(c));
        }
        while let Some(MinCandidate(current)) = frontier.pop() {
            if current.dist > beam.bound() {
                break;
            }
            stats.hops += 1;
            for &nb in self.graph.neighbors(current.id) {
                if !visited.insert(nb) {
                    continue;
                }
                self.read_page(nb, pages, &mut stats);
                match dist.eval(nb, beam.bound()) {
                    Some(d) => {
                        stats.evals += 1;
                        let c = Candidate::new(nb, d);
                        if beam.offer(c) {
                            frontier.push(MinCandidate(c));
                        }
                    }
                    None => stats.pruned += 1,
                }
            }
        }
        beam.drain_sorted_into(out);
        out.truncate(k);
        stats.record("starling", sw.elapsed_us());
        stats
    }

    /// [`PagedIndex::search_paged`] over a mutated index: tombstoned
    /// vertices still route the walk but are filtered at
    /// result-collection time (never mid-traversal), with the beam
    /// over-fetched by the dead count so `k` live results can still fill.
    /// With zero dead this is exactly `search_paged`.
    pub fn search_paged_live(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        tomb: &Tombstones,
    ) -> SearchOutput {
        crate::scratch::with_pooled(|scratch| {
            self.search_paged_live_with(dist, k, ef, tomb, scratch)
        })
    }

    /// [`PagedIndex::search_paged_live`] on a caller-supplied scratch.
    pub fn search_paged_live_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        tomb: &Tombstones,
        scratch: &mut SearchScratch,
    ) -> SearchOutput {
        let dead = tomb.dead_count();
        if dead == 0 {
            return self.search_paged_with(dist, k, ef, scratch);
        }
        let k_eff = (k + dead).min(self.graph.len());
        let ef_eff = ef.max(k_eff);
        let mut out = self.search_paged_with(dist, k_eff, ef_eff, scratch);
        out.results.retain(|c| !tomb.is_dead(c.id));
        out.results.truncate(k);
        out
    }

    /// Rewires the paged graph around tombstoned vertices and re-lays the
    /// pages: live vertices splice dead neighbours' live neighbours into
    /// their own lists (degree never grows), dead non-entry vertices are
    /// fully unlinked, dead entries keep live-spliced out-edges so they
    /// can still route. The page layout is rebuilt with the same strategy
    /// and density — page ids change meaning wholesale, so an attached
    /// shared [`PageCache`] is fully invalidated. Returns the number of
    /// cached pages dropped.
    pub fn apply_compaction(&mut self, tomb: &Tombstones) -> usize {
        let old = self.graph.clone();
        for v in 0..old.len() as VecId {
            let is_entry = self.entries.contains(&v);
            if tomb.is_dead(v) && !is_entry {
                self.graph.set_neighbors(v, Vec::new());
                continue;
            }
            let nbrs = old.neighbors(v);
            if !nbrs.iter().any(|&u| tomb.is_dead(u)) {
                continue;
            }
            let cap = nbrs.len();
            let mut next: Vec<VecId> = Vec::with_capacity(cap);
            let push = |next: &mut Vec<VecId>, w: VecId| {
                if w != v && !tomb.is_dead(w) && !next.contains(&w) && next.len() < cap {
                    next.push(w);
                }
            };
            for &u in nbrs {
                if !tomb.is_dead(u) {
                    push(&mut next, u);
                }
            }
            for &u in nbrs {
                if tomb.is_dead(u) {
                    for &w in old.neighbors(u) {
                        push(&mut next, w);
                    }
                }
            }
            self.graph.set_neighbors(v, next);
        }
        self.layout = PageLayout::build(&self.graph, self.layout.per_page, self.layout.strategy);
        match &self.cache {
            Some(cache) => cache.invalidate_all(),
            None => 0,
        }
    }
}

/// A disk-resident index with **PQ-routed two-phase search** — the full
/// DiskANN/Starling architecture:
///
/// * RAM holds the graph topology and the PQ codes (a few bytes/vector);
/// * "disk" (the paged layout) holds the full vectors;
/// * **phase 1** walks the graph scoring candidates from the PQ lookup
///   table — *zero page reads*;
/// * **phase 2** reads only the pages of the beam's survivors and reranks
///   them with exact distances.
///
/// Page reads therefore scale with the *result* candidate count, not with
/// the number of vertices the walk touches — the I/O reduction E7 measures.
pub struct PqPagedIndex {
    graph: Adjacency,
    entries: Vec<VecId>,
    layout: PageLayout,
    codebook: mqa_vector::PqCodebook,
    codes: mqa_vector::PqCodes,
}

/// Phase-1 evaluator: asymmetric PQ distances from the in-RAM codes.
struct PqDistance<'a> {
    table: mqa_vector::PqTable,
    codes: &'a mqa_vector::PqCodes,
}

impl DistanceFn for PqDistance<'_> {
    fn eval(&mut self, id: VecId, _bound: f32) -> Option<f32> {
        Some(self.table.distance(self.codes.code(id)))
    }
}

impl PqPagedIndex {
    /// Wraps a built graph: trains nothing (pass a trained codebook and the
    /// store's codes).
    ///
    /// # Panics
    /// Panics on size mismatches or empty entries.
    pub fn new(
        graph: Adjacency,
        entries: Vec<VecId>,
        layout: PageLayout,
        codebook: mqa_vector::PqCodebook,
        codes: mqa_vector::PqCodes,
    ) -> Self {
        assert!(!entries.is_empty(), "paged index requires entry vertices");
        assert_eq!(
            layout.page_of.len(),
            graph.len(),
            "layout/graph size mismatch"
        );
        assert_eq!(codes.len(), graph.len(), "codes/graph size mismatch");
        Self {
            graph,
            entries,
            layout,
            codebook,
            codes,
        }
    }

    /// Builds codebook + codes from the store and wraps everything.
    pub fn build(
        graph: Adjacency,
        entries: Vec<VecId>,
        layout: PageLayout,
        store: &mqa_vector::VectorStore,
        params: &mqa_vector::PqParams,
    ) -> Self {
        let codebook = mqa_vector::PqCodebook::train(store, params);
        let codes = codebook.encode_store(store);
        Self::new(graph, entries, layout, codebook, codes)
    }

    /// RAM resident bytes of the routing state (codes only; the graph is
    /// common to all variants).
    pub fn code_bytes(&self) -> usize {
        self.codes.bytes()
    }

    /// The page layout in use.
    pub fn layout(&self) -> &PageLayout {
        &self.layout
    }

    /// Two-phase search: PQ-routed beam (no I/O), then exact rerank of the
    /// beam's `ef` survivors with counted page reads.
    ///
    /// `store` plays the disk: it is only consulted for vertices whose
    /// pages phase 2 reads.
    pub fn search_two_phase(
        &self,
        query: &[f32],
        store: &mqa_vector::VectorStore,
        k: usize,
        ef: usize,
    ) -> SearchOutput {
        crate::scratch::with_pooled(|scratch| {
            self.search_two_phase_with(query, store, k, ef, scratch)
        })
    }

    /// [`PqPagedIndex::search_two_phase`] on a caller-supplied scratch.
    pub fn search_two_phase_with(
        &self,
        query: &[f32],
        store: &mqa_vector::VectorStore,
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> SearchOutput {
        assert!(k > 0, "search requires k >= 1");
        let ef = ef.max(k);
        // Phase 1: route on codes.
        let mut pq_dist = PqDistance {
            table: self.codebook.table(query),
            codes: &self.codes,
        };
        let phase1 = crate::search::beam_search_with(
            &self.graph,
            &self.entries,
            &mut pq_dist,
            ef,
            ef,
            scratch,
        );
        let mut stats = phase1.stats;

        // Phase 2: read survivors' pages, rerank exactly.
        scratch.begin_pages(self.layout.pages());
        let mut top = TopK::new(k);
        for c in &phase1.results {
            if scratch.pages.insert(self.layout.page(c.id)) {
                stats.pages_read += 1;
            }
            let exact = mqa_vector::Metric::L2.distance(query, store.get(c.id));
            stats.evals += 1;
            top.offer(Candidate::new(c.id, exact));
        }
        SearchOutput {
            results: top.into_sorted(),
            stats,
        }
    }
}

impl GraphSearcher for PagedIndex {
    fn search_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> SearchOutput {
        self.search_paged_with(dist, k, ef, scratch)
    }

    fn len(&self) -> usize {
        self.graph.len()
    }

    fn avg_degree(&self) -> f64 {
        self.graph.avg_degree()
    }

    fn describe(&self) -> String {
        format!(
            "starling paged index: {} vertices on {} pages ({:?}, {}/page)",
            self.graph.len(),
            self.layout.pages(),
            self.layout.strategy(),
            self.layout.per_page()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FlatDistance;
    use crate::vamana;
    use mqa_rng::StdRng;
    use mqa_vector::{Metric, VectorStore};
    use std::sync::Arc;

    fn store(n: usize, dim: usize, seed: u64) -> Arc<VectorStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        Arc::new(s)
    }

    #[test]
    fn layout_assigns_every_vertex() {
        let mut g = Adjacency::new(10);
        for v in 0..9u32 {
            g.add_edge(v, v + 1);
        }
        for strategy in [LayoutStrategy::InsertionOrder, LayoutStrategy::BfsCluster] {
            let l = PageLayout::build(&g, 3, strategy);
            assert_eq!(l.pages(), 4);
            let mut counts = vec![0usize; l.pages()];
            for v in 0..10u32 {
                counts[l.page(v) as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c <= 3), "{strategy:?}: {counts:?}");
            assert_eq!(counts.iter().sum::<usize>(), 10);
        }
    }

    #[test]
    fn vertices_per_page_reasonable() {
        // 128-dim f32 vector (512 B) + 32 neighbours (128 B) -> 6 per page
        assert_eq!(PageLayout::vertices_per_page(128, 32), 6);
        // enormous vertices still get one slot
        assert_eq!(PageLayout::vertices_per_page(4096, 64), 1);
    }

    #[test]
    fn paged_search_matches_unpaged_results() {
        let s = store(500, 8, 1);
        let nav = vamana::build(&s, Metric::L2, 12, 32, 1.2, 0);
        let layout = PageLayout::build(nav.graph(), 4, LayoutStrategy::BfsCluster);
        let paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout);
        let q: Vec<f32> = vec![0.1; 8];
        let mut d1 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
        let plain = nav.search(&mut d1, 5, 32);
        let mut d2 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
        let paged_out = paged.search_paged(&mut d2, 5, 32);
        assert_eq!(plain.ids(), paged_out.ids());
        assert!(paged_out.stats.pages_read > 0);
    }

    #[test]
    fn bfs_layout_reads_fewer_pages_than_insertion_order() {
        let s = store(2_000, 16, 2);
        let nav = vamana::build(&s, Metric::L2, 16, 48, 1.2, 0);
        // Scramble ids' spatial meaning by hashing: insertion order in this
        // synthetic store is random, so BFS clustering should win clearly.
        let per_page = 4;
        let naive = PagedIndex::new(
            nav.graph().clone(),
            nav.entries().to_vec(),
            PageLayout::build(nav.graph(), per_page, LayoutStrategy::InsertionOrder),
        );
        let clustered = PagedIndex::new(
            nav.graph().clone(),
            nav.entries().to_vec(),
            PageLayout::build(nav.graph(), per_page, LayoutStrategy::BfsCluster),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut naive_reads = 0u64;
        let mut clustered_reads = 0u64;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut d1 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
            naive_reads += naive.search_paged(&mut d1, 10, 48).stats.pages_read;
            let mut d2 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
            clustered_reads += clustered.search_paged(&mut d2, 10, 48).stats.pages_read;
        }
        assert!(
            clustered_reads < naive_reads,
            "clustered {clustered_reads} >= naive {naive_reads}"
        );
    }

    #[test]
    fn two_phase_pq_search_cuts_page_reads() {
        let s = store(2_000, 16, 5);
        let nav = vamana::build(&s, Metric::L2, 16, 48, 1.2, 0);
        let per_page = 4;
        let layout = PageLayout::build(nav.graph(), per_page, LayoutStrategy::BfsCluster);
        let one_phase =
            PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout.clone());
        let two_phase = PqPagedIndex::build(
            nav.graph().clone(),
            nav.entries().to_vec(),
            layout,
            &s,
            &mqa_vector::PqParams {
                m: 8,
                iters: 8,
                train_sample: 2_000,
                seed: 0,
            },
        );
        // The routing state is tiny relative to raw vectors.
        assert!(two_phase.code_bytes() * 4 <= s.bytes());

        let mut rng = StdRng::seed_from_u64(11);
        let mut reads_1p = 0u64;
        let mut reads_2p = 0u64;
        let mut hits = 0usize;
        let queries = 15;
        let k = 10;
        for _ in 0..queries {
            let id = rng.gen_range(0..s.len()) as u32;
            let q: Vec<f32> = s
                .get(id)
                .iter()
                .map(|x| x + rng.gen_range(-0.05f32..0.05))
                .collect();
            let mut d = FlatDistance::new(&s, &q, Metric::L2).unwrap();
            let exact = one_phase.search_paged(&mut d, k, 48);
            reads_1p += exact.stats.pages_read;
            let approx = two_phase.search_two_phase(&q, &s, k, 48);
            reads_2p += approx.stats.pages_read;
            hits += approx
                .ids()
                .iter()
                .filter(|x| exact.ids().contains(x))
                .count();
        }
        let recall = hits as f64 / (queries * k) as f64;
        assert!(recall >= 0.85, "two-phase recall {recall}");
        assert!(
            reads_2p * 2 <= reads_1p,
            "expected >=2x I/O reduction: two-phase {reads_2p} vs one-phase {reads_1p}"
        );
    }

    #[test]
    fn page_cache_keeps_results_bit_identical_and_absorbs_warm_reads() {
        let s = store(800, 8, 7);
        let nav = vamana::build(&s, Metric::L2, 12, 32, 1.2, 0);
        let layout = PageLayout::build(nav.graph(), 4, LayoutStrategy::BfsCluster);
        let uncached = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout.clone());
        let cached = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout)
            .with_page_cache(Arc::new(mqa_cache::PageCache::new(4096)));
        let mut rng = StdRng::seed_from_u64(13);
        let queries: Vec<Vec<f32>> = (0..10)
            .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        // Cold pass: every page misses, so device reads match the
        // uncached index exactly and results are bit-identical.
        for q in &queries {
            let mut d1 = FlatDistance::new(&s, q, Metric::L2).unwrap();
            let plain = uncached.search_paged(&mut d1, 5, 32);
            let mut d2 = FlatDistance::new(&s, q, Metric::L2).unwrap();
            let warm = cached.search_paged(&mut d2, 5, 32);
            assert_eq!(plain.results, warm.results);
            assert_eq!(
                plain.stats.pages_read,
                warm.stats.pages_read + warm.stats.pages_cached,
                "every page touch must be either a device read or a cache hit"
            );
        }
        // Warm pass: the same queries touch only resident pages.
        let mut warm_device_reads = 0u64;
        let mut warm_cache_hits = 0u64;
        for q in &queries {
            let mut d1 = FlatDistance::new(&s, q, Metric::L2).unwrap();
            let plain = uncached.search_paged(&mut d1, 5, 32);
            let mut d2 = FlatDistance::new(&s, q, Metric::L2).unwrap();
            let warm = cached.search_paged(&mut d2, 5, 32);
            assert_eq!(plain.results, warm.results);
            warm_device_reads += warm.stats.pages_read;
            warm_cache_hits += warm.stats.pages_cached;
        }
        assert_eq!(warm_device_reads, 0, "warm repeat queries must be I/O-free");
        assert!(warm_cache_hits > 0);
    }

    #[test]
    fn live_filtered_search_never_surfaces_dead() {
        let s = store(600, 8, 17);
        let nav = vamana::build(&s, Metric::L2, 12, 32, 1.2, 0);
        let layout = PageLayout::build(nav.graph(), 4, LayoutStrategy::BfsCluster);
        let paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout);
        let mut tomb = Tombstones::new(600);
        // Quiesced: live-filtered search is exactly the plain path.
        let q: Vec<f32> = vec![0.2; 8];
        let mut d0 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
        let plain = paged.search_paged(&mut d0, 5, 32);
        let mut d1 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
        let quiesced = paged.search_paged_live(&mut d1, 5, 32, &tomb);
        assert_eq!(plain.results, quiesced.results);
        // Kill the whole top-5 and search again: none may surface, and
        // the beam still fills k with live objects.
        for &id in &plain.ids() {
            tomb.kill(id);
        }
        let mut d2 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
        let filtered = paged.search_paged_live(&mut d2, 5, 32, &tomb);
        assert_eq!(filtered.ids().len(), 5);
        for id in filtered.ids() {
            assert!(!tomb.is_dead(id), "dead id {id} surfaced");
        }
    }

    #[test]
    fn compaction_relays_pages_and_invalidates_cache() {
        let s = store(600, 8, 19);
        let nav = vamana::build(&s, Metric::L2, 12, 32, 1.2, 0);
        let layout = PageLayout::build(nav.graph(), 4, LayoutStrategy::BfsCluster);
        let cache = Arc::new(mqa_cache::PageCache::new(4096));
        let mut paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout)
            .with_page_cache(Arc::clone(&cache));
        // Warm the cache.
        let q: Vec<f32> = vec![-0.1; 8];
        let mut d0 = FlatDistance::new(&s, &q, Metric::L2).unwrap();
        paged.search_paged(&mut d0, 5, 32);
        assert!(!cache.is_empty());
        let mut tomb = Tombstones::new(600);
        for id in (0..600u32).step_by(5) {
            tomb.kill(id);
        }
        let dropped = paged.apply_compaction(&tomb);
        assert!(dropped > 0, "warm cache must be invalidated");
        assert!(cache.is_empty());
        // No surviving edge points at a dead vertex (entries excepted as
        // sources, never as targets).
        for v in 0..600u32 {
            for &u in paged.graph().neighbors(v) {
                assert!(!tomb.is_dead(u), "edge {v} -> dead {u} survived");
            }
            if tomb.is_dead(v) && !paged.entries.contains(&v) {
                assert!(
                    paged.graph().neighbors(v).is_empty(),
                    "dead non-entry {v} still linked"
                );
            }
        }
        // Live objects stay discoverable through the rewired pages.
        let mut found = 0usize;
        let mut probed = 0usize;
        for id in (1..600u32).step_by(13).filter(|&id| !tomb.is_dead(id)) {
            probed += 1;
            let mut d = FlatDistance::new(&s, s.get(id), Metric::L2).unwrap();
            if paged
                .search_paged_live(&mut d, 5, 32, &tomb)
                .ids()
                .contains(&id)
            {
                found += 1;
            }
        }
        assert!(
            found * 10 >= probed * 9,
            "post-compaction discoverability {found}/{probed}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn zero_per_page_panics() {
        let g = Adjacency::new(1);
        PageLayout::build(&g, 0, LayoutStrategy::InsertionOrder);
    }
}
