//! IVF — inverted-file (cluster-probe) index.
//!
//! The index family behind Milvus's default configuration (the system the
//! paper's MR baseline is modelled on): k-means partitions the vectors
//! into `nlist` cells; a query scores the `nprobe` nearest cell centroids
//! and scans only those cells' member lists. No graph, no hierarchical
//! routing — a useful contrast point for E7 because its recall/efficiency
//! knob (`nprobe`) behaves very differently from a beam width: cost is
//! proportional to the *fraction of the corpus probed* rather than to a
//! traversal depth.
//!
//! Plugs into the same [`GraphSearcher`] interface as the graph family, so
//! it is selectable from the configuration panel and composable with the
//! unified multi-vector store like every other algorithm. The search maps
//! `ef` onto `nprobe` (clamped to `[nprobe_min, nlist]`) so the common
//! "raise ef for more recall" workflow applies unchanged.

use crate::search::{SearchOutput, SearchStats};
use crate::traits::{DistanceFn, GraphSearcher};
use crate::validate::InvariantViolation;
use mqa_rng::StdRng;
use mqa_vector::{ops, Candidate, Metric, TopK, VecId, VectorStore};
use serde::{Deserialize, Serialize};

/// IVF hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IvfParams {
    /// Number of k-means cells. The usual heuristic is `~sqrt(n)`;
    /// [`IvfParams::auto`] applies it.
    pub nlist: usize,
    /// k-means iterations.
    pub iters: usize,
    /// Training sample cap.
    pub train_sample: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self {
            nlist: 128,
            iters: 10,
            train_sample: 20_000,
            seed: 0,
        }
    }
}

impl IvfParams {
    /// The `nlist ≈ sqrt(n)` heuristic.
    pub fn auto(n: usize) -> Self {
        Self {
            nlist: ((n as f64).sqrt() as usize).max(1),
            ..Self::default()
        }
    }
}

/// A built IVF index: centroids plus per-cell member lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ivf {
    dim: usize,
    /// Row-major `(nlist, dim)` centroid matrix.
    centroids: Vec<f32>,
    /// Member ids per cell.
    cells: Vec<Vec<VecId>>,
    params: IvfParams,
    n: usize,
}

impl Ivf {
    /// Builds the index by k-means over the store.
    ///
    /// # Panics
    /// Panics on an empty store or `nlist == 0`.
    pub fn build(store: &VectorStore, params: &IvfParams) -> Self {
        assert!(!store.is_empty(), "IVF over an empty store");
        assert!(params.nlist > 0, "IVF requires nlist >= 1");
        let n = store.len();
        let dim = store.dim();
        let nlist = params.nlist.min(n);
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1BF0);

        // Training sample.
        let sample: Vec<VecId> = if n <= params.train_sample {
            (0..n as VecId).collect()
        } else {
            (0..params.train_sample)
                .map(|_| rng.gen_range(0..n) as VecId)
                .collect()
        };

        // Init centroids from spread sample rows.
        let mut centroids = vec![0.0f32; nlist * dim];
        for c in 0..nlist {
            // INVARIANT: sample is non-empty (the store is) and c < nlist
            // keeps the destination row inside the centroid matrix.
            let id = sample[(c * 6151 + 7) % sample.len()];
            centroids[c * dim..(c + 1) * dim].copy_from_slice(store.get(id));
        }

        // Lloyd iterations on the sample.
        let mut assign = vec![0usize; sample.len()];
        for _ in 0..params.iters {
            for (i, &id) in sample.iter().enumerate() {
                // INVARIANT: assign has one slot per sample row.
                assign[i] = nearest_centroid(&centroids, dim, nlist, store.get(id)).0;
            }
            let mut sums = vec![0.0f32; nlist * dim];
            let mut counts = vec![0usize; nlist];
            for (i, &id) in sample.iter().enumerate() {
                // INVARIANT: assignments are cell ids < nlist; counts has
                // nlist slots and sums nlist rows of dim floats.
                let c = assign[i];
                counts[c] += 1;
                ops::axpy(1.0, store.get(id), &mut sums[c * dim..(c + 1) * dim]);
            }
            for c in 0..nlist {
                // INVARIANT: c < nlist indexes counts and centroid rows.
                if counts[c] == 0 {
                    // INVARIANT: re-seed an empty cell from a random row
                    // of the non-empty sample; c < nlist stays in bounds.
                    let id = sample[rng.gen_range(0..sample.len())];
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(store.get(id));
                } else {
                    for j in 0..dim {
                        // INVARIANT: counts[c] > 0 in this branch and
                        // c * dim + j < nlist * dim.
                        centroids[c * dim + j] =
                            sums[c * dim + j] / mqa_vector::cast::count_f32(counts[c]);
                    }
                }
            }
        }

        // Final full assignment into cells.
        let mut cells = vec![Vec::new(); nlist];
        for (id, v) in store.iter() {
            // INVARIANT: nearest_centroid returns a cell id < nlist.
            let (c, _) = nearest_centroid(&centroids, dim, nlist, v);
            cells[c].push(id);
        }
        Self {
            dim,
            centroids,
            cells,
            params: IvfParams { nlist, ..*params },
            n,
        }
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.cells.len()
    }

    /// Mean cell population.
    pub fn avg_cell_size(&self) -> f64 {
        self.n as f64 / self.cells.len() as f64
    }

    /// Searches with an explicit probe count.
    pub fn search_nprobe(
        &self,
        dist: &mut dyn DistanceFn,
        query_for_cells: &[f32],
        k: usize,
        nprobe: usize,
    ) -> SearchOutput {
        assert!(k > 0, "search requires k >= 1");
        assert_eq!(query_for_cells.len(), self.dim, "query dimension mismatch");
        let nprobe = nprobe.clamp(1, self.cells.len());
        // Rank cells by centroid distance.
        let mut cell_rank: Vec<(usize, f32)> = (0..self.cells.len())
            .map(|c| {
                (
                    c,
                    Metric::L2.distance(
                        query_for_cells,
                        // INVARIANT: c < nlist rows of dim floats each.
                        &self.centroids[c * self.dim..(c + 1) * self.dim],
                    ),
                )
            })
            .collect();
        cell_rank.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut stats = SearchStats::default();
        let mut top = TopK::new(k);
        for &(c, _) in cell_rank.iter().take(nprobe) {
            stats.hops += 1; // one "hop" per probed cell
                             // INVARIANT: cell_rank enumerates 0..cells.len().
            for &id in &self.cells[c] {
                match dist.eval(id, top.bound()) {
                    Some(d) => {
                        stats.evals += 1;
                        top.offer(Candidate::new(id, d));
                    }
                    None => stats.pruned += 1,
                }
            }
        }
        SearchOutput {
            results: top.into_sorted(),
            stats,
        }
    }
}

impl Ivf {
    /// Audits the structural invariants of the built index against the
    /// store it was built over and returns every violation found (empty =
    /// sound).
    ///
    /// Checked invariants:
    /// - the recorded population and dimension match the store;
    /// - the centroid matrix has exactly `nlist × dim` finite entries;
    /// - the cell member lists exactly partition `0..n` (every id in
    ///   exactly one cell, none out of range);
    /// - every member sits in the cell of its nearest centroid (the final
    ///   assignment pass is deterministic, so this recheck is exact).
    pub fn validate(&self, store: &VectorStore) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        if self.n != store.len() {
            out.push(InvariantViolation::SizeMismatch {
                context: "ivf population".to_string(),
                expected: store.len(),
                got: self.n,
            });
        }
        if self.dim != store.dim() {
            out.push(InvariantViolation::SizeMismatch {
                context: "ivf dimension".to_string(),
                expected: store.dim(),
                got: self.dim,
            });
        }
        let nlist = self.cells.len();
        if self.centroids.len() != nlist * self.dim {
            out.push(InvariantViolation::SizeMismatch {
                context: "ivf centroid matrix".to_string(),
                expected: nlist * self.dim,
                got: self.centroids.len(),
            });
            return out; // centroid-dependent checks would index out of bounds
        }
        for (i, x) in self.centroids.iter().enumerate() {
            if !x.is_finite() {
                out.push(InvariantViolation::NonFinite {
                    // INVARIANT: dim mismatch (incl. zero) returned above.
                    context: format!("ivf centroid {} component {}", i / self.dim, i % self.dim),
                });
            }
        }
        let mut counts = vec![0usize; self.n];
        for (c, members) in self.cells.iter().enumerate() {
            for &id in members {
                match counts.get_mut(id as usize) {
                    Some(k) => *k += 1,
                    None => out.push(InvariantViolation::IdOutOfRange {
                        context: format!("ivf cell {c}"),
                        id,
                        n: self.n,
                    }),
                }
            }
        }
        for (id, &k) in counts.iter().enumerate() {
            if k != 1 {
                out.push(InvariantViolation::BrokenPartition {
                    detail: format!("vector {id} appears in {k} cells, expected exactly 1"),
                });
            }
        }
        if self.dim == store.dim() && self.n == store.len() {
            for (c, members) in self.cells.iter().enumerate() {
                for &id in members {
                    if (id as usize) >= store.len() {
                        continue; // already reported above
                    }
                    let (best, _) =
                        nearest_centroid(&self.centroids, self.dim, nlist, store.get(id));
                    if best != c {
                        out.push(InvariantViolation::MisassignedCell {
                            id,
                            cell: c,
                            nearest: best,
                        });
                    }
                }
            }
        }
        out
    }
}

fn nearest_centroid(centroids: &[f32], dim: usize, nlist: usize, v: &[f32]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..nlist {
        // INVARIANT: centroids holds nlist rows of dim floats.
        let d = ops::l2_sq(v, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// [`GraphSearcher`] adapter: pairs the IVF structure with its store so
/// cell ranking can reuse the stored vectors. `ef` maps to `nprobe` as
/// `max(1, ef / 8)` — at the conventional ef range (16–256) this probes
/// 2–32 cells, spanning the same recall band the graph family covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvfSearcher {
    ivf: Ivf,
    /// The query vector must be reconstructible for cell ranking; the
    /// adapter keeps its own copy of the store's vectors (centroid ranking
    /// only needs the query, which [`DistanceFn`] hides, so the adapter
    /// requires callers to use [`crate::traits::FlatDistance`]-compatible
    /// stores — see `search`).
    store: VectorStore,
}

impl IvfSearcher {
    /// Builds IVF over `store` and retains the store for cell ranking.
    pub fn build(store: &VectorStore, params: &IvfParams) -> Self {
        Self {
            ivf: Ivf::build(store, params),
            store: store.clone(),
        }
    }

    /// The underlying structure.
    pub fn ivf(&self) -> &Ivf {
        &self.ivf
    }

    /// Audits the adapter: delegates to [`Ivf::validate`] against the
    /// retained store copy.
    pub fn validate(&self) -> Vec<InvariantViolation> {
        self.ivf.validate(&self.store)
    }
}

impl GraphSearcher for IvfSearcher {
    fn search_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        _scratch: &mut crate::scratch::SearchScratch,
    ) -> SearchOutput {
        // Cell probing visits each member exactly once by construction;
        // no visited set is needed, so the scratch goes unused.
        // Reconstruct the query's cell ranking through the evaluator: rank
        // cells by the distance of their *medoid member* under `dist`.
        // This keeps the DistanceFn abstraction intact (the evaluator owns
        // the query) at the cost of one evaluation per cell.
        let nprobe = (ef / 8).max(1);
        let mut cell_rank: Vec<(usize, f32)> = self
            .ivf
            .cells
            .iter()
            .enumerate()
            .filter(|(_, members)| !members.is_empty())
            .map(|(c, members)| {
                // INVARIANT: members is non-empty (filtered above), so the
                // median index is in bounds.
                let probe = members[members.len() / 2];
                (c, dist.exact(probe))
            })
            // ALLOC: per-query cell ranking, one entry per non-empty IVF cell.
            .collect();
        cell_rank.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut stats = SearchStats {
            evals: cell_rank.len() as u64,
            ..Default::default()
        };
        let mut top = TopK::new(k);
        for &(c, _) in cell_rank.iter().take(nprobe.min(cell_rank.len())) {
            stats.hops += 1;
            // INVARIANT: c was produced by enumerate() over cells above.
            for &id in &self.ivf.cells[c] {
                match dist.eval(id, top.bound()) {
                    Some(d) => {
                        stats.evals += 1;
                        top.offer(Candidate::new(id, d));
                    }
                    None => stats.pruned += 1,
                }
            }
        }
        SearchOutput {
            results: top.into_sorted(),
            stats,
        }
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn avg_degree(&self) -> f64 {
        0.0
    }

    fn describe(&self) -> String {
        format!(
            "ivf over {} vectors ({} cells, ~{:.0}/cell)",
            self.store.len(),
            self.ivf.nlist(),
            self.ivf.avg_cell_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FlatDistance;

    fn clustered_store(n: usize, dim: usize, clusters: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
            .collect();
        let mut s = VectorStore::new(dim);
        for i in 0..n {
            let c = &centers[i % clusters];
            let v: Vec<f32> = c.iter().map(|x| x + rng.gen_range(-0.2f32..0.2)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn cells_partition_the_store() {
        let store = clustered_store(500, 8, 10, 1);
        let ivf = Ivf::build(
            &store,
            &IvfParams {
                nlist: 16,
                ..Default::default()
            },
        );
        let total: usize = ivf.cells.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        assert_eq!(ivf.nlist(), 16);
    }

    #[test]
    fn full_probe_is_exact() {
        let store = clustered_store(300, 8, 6, 2);
        let ivf = Ivf::build(
            &store,
            &IvfParams {
                nlist: 12,
                ..Default::default()
            },
        );
        let q = store.get(5).to_vec();
        let mut d = FlatDistance::new(&store, &q, Metric::L2).unwrap();
        let out = ivf.search_nprobe(&mut d, &q, 10, 12);
        assert_eq!(out.results[0].id, 5);
        assert_eq!(out.stats.evals, 300);
    }

    #[test]
    fn fewer_probes_less_work() {
        let store = clustered_store(600, 8, 12, 3);
        let ivf = Ivf::build(
            &store,
            &IvfParams {
                nlist: 24,
                ..Default::default()
            },
        );
        let q = store.get(0).to_vec();
        let mut d1 = FlatDistance::new(&store, &q, Metric::L2).unwrap();
        let narrow = ivf.search_nprobe(&mut d1, &q, 10, 2);
        let mut d2 = FlatDistance::new(&store, &q, Metric::L2).unwrap();
        let wide = ivf.search_nprobe(&mut d2, &q, 10, 24);
        assert!(narrow.stats.evals < wide.stats.evals);
        // the query's own cell is probed first, so the self-match holds
        assert_eq!(narrow.results[0].id, 0);
    }

    #[test]
    fn searcher_adapter_reaches_high_recall() {
        let store = clustered_store(800, 12, 16, 4);
        let searcher = IvfSearcher::build(&store, &IvfParams::auto(800));
        let flat = crate::flat::FlatSearcher::new(store.len());
        let mut rng = StdRng::seed_from_u64(9);
        let mut hits = 0usize;
        let (queries, k) = (25, 10);
        for _ in 0..queries {
            let base = rng.gen_range(0..800) as u32;
            let q: Vec<f32> = store
                .get(base)
                .iter()
                .map(|x| x + rng.gen_range(-0.1f32..0.1))
                .collect();
            let mut d1 = FlatDistance::new(&store, &q, Metric::L2).unwrap();
            let truth = flat.search(&mut d1, k, k).ids();
            let mut d2 = FlatDistance::new(&store, &q, Metric::L2).unwrap();
            let got = searcher.search(&mut d2, k, 64).ids();
            hits += got.iter().filter(|id| truth.contains(id)).count();
        }
        let recall = hits as f64 / (queries * k) as f64;
        assert!(recall > 0.85, "ivf recall {recall}");
    }

    #[test]
    fn describe_reports_cells() {
        let store = clustered_store(100, 4, 4, 5);
        let s = IvfSearcher::build(
            &store,
            &IvfParams {
                nlist: 8,
                ..Default::default()
            },
        );
        assert!(s.describe().contains("8 cells"));
        assert_eq!(GraphSearcher::len(&s), 100);
    }

    #[test]
    fn nlist_capped_by_population() {
        let store = clustered_store(5, 4, 2, 6);
        let ivf = Ivf::build(
            &store,
            &IvfParams {
                nlist: 64,
                ..Default::default()
            },
        );
        assert_eq!(ivf.nlist(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let store = clustered_store(60, 4, 3, 7);
        let s = IvfSearcher::build(
            &store,
            &IvfParams {
                nlist: 6,
                ..Default::default()
            },
        );
        let back: IvfSearcher = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn empty_store_panics() {
        Ivf::build(&VectorStore::new(4), &IvfParams::default());
    }

    #[test]
    fn validate_accepts_built_index() {
        let store = clustered_store(150, 4, 5, 8);
        let ivf = Ivf::build(
            &store,
            &IvfParams {
                nlist: 10,
                ..Default::default()
            },
        );
        let violations = ivf.validate(&store);
        assert!(violations.is_empty(), "sound index flagged: {violations:?}");
        let s = IvfSearcher::build(
            &store,
            &IvfParams {
                nlist: 10,
                ..Default::default()
            },
        );
        assert!(s.validate().is_empty());
    }

    #[test]
    fn validate_detects_corruption() {
        use crate::validate::InvariantViolation as V;
        let store = clustered_store(150, 4, 5, 9);
        let sound = Ivf::build(
            &store,
            &IvfParams {
                nlist: 10,
                ..Default::default()
            },
        );

        // A vector moved to the wrong cell: misassigned AND (since it now
        // appears twice) a broken partition.
        let mut ivf = sound.clone();
        let moved = ivf.cells[0][0];
        ivf.cells[1].push(moved);
        let v = ivf.validate(&store);
        assert!(
            v.iter().any(|x| matches!(x, V::BrokenPartition { .. })),
            "{v:?}"
        );

        // A vector dropped from its cell: partition hole.
        let mut ivf = sound.clone();
        ivf.cells[0].remove(0);
        assert!(ivf
            .validate(&store)
            .iter()
            .any(|x| matches!(x, V::BrokenPartition { .. })));

        // An out-of-range member id.
        let mut ivf = sound.clone();
        ivf.cells[2].push(9_999);
        assert!(ivf
            .validate(&store)
            .iter()
            .any(|x| matches!(x, V::IdOutOfRange { id: 9_999, .. })));

        // A perturbed centroid: its members are no longer nearest to it.
        let mut ivf = sound.clone();
        for x in &mut ivf.centroids[0..4] {
            *x += 100.0;
        }
        assert!(ivf
            .validate(&store)
            .iter()
            .any(|x| matches!(x, V::MisassignedCell { .. })));

        // A NaN centroid component.
        let mut ivf = sound.clone();
        ivf.centroids[5] = f32::NAN;
        assert!(ivf
            .validate(&store)
            .iter()
            .any(|x| matches!(x, V::NonFinite { .. })));

        // A store of the wrong shape.
        let other = clustered_store(40, 4, 2, 10);
        assert!(sound
            .validate(&other)
            .iter()
            .any(|x| matches!(x, V::SizeMismatch { .. })));
    }
}
