//! The unified multi-vector navigation graph — the paper's Index
//! Construction + Query Execution core.
//!
//! One graph vertex per *object*, even though each object carries several
//! vectors (one per modality). Construction runs any [`IndexAlgorithm`]
//! over the **weighted concatenation** of the modality vectors: scaling
//! each block by `sqrt(w_m)` makes plain L2 on the concatenation equal to
//! the fused weighted distance `Σ w_m‖q_m − o_m‖²`, so every existing graph
//! algorithm works unchanged on multi-modal data.
//!
//! Search is **merging-free**: a query (possibly missing modalities) walks
//! the graph once. Distances are computed by [`FusedDistance`], which wraps
//! `mqa_vector::FusedScanner` — modality-by-modality incremental scanning
//! with early abandonment against the beam bound. Per-modality result
//! merging (the MR baseline) never happens.
//!
//! Query-time weights default to the build weights but can be overridden
//! ("user-specific inputs for search refinement" in the paper); overrides
//! change the scoring, not the graph, so extreme overrides trade recall
//! for control — measured in E6.

use crate::pipeline::{BuiltGraph, IndexAlgorithm};
use crate::search::SearchOutput;
use crate::traits::{DistanceFn, GraphSearcher};
use mqa_vector::{FusedScanner, Metric, MultiVector, MultiVectorStore, ScanStats, VecId, Weights};
use std::sync::Arc;
use std::time::Duration;

/// [`DistanceFn`] adapter: fused weighted distance from a fixed query to
/// objects of a [`MultiVectorStore`], with incremental scanning.
pub struct FusedDistance<'a> {
    store: &'a MultiVectorStore,
    scanner: FusedScanner,
    prune: bool,
}

impl<'a> FusedDistance<'a> {
    /// Creates the evaluator for `query` under `weights`.
    pub fn new(
        store: &'a MultiVectorStore,
        query: &MultiVector,
        weights: &Weights,
        metric: Metric,
    ) -> Self {
        let scanner = FusedScanner::new(store.schema(), query, weights, metric);
        Self {
            store,
            scanner,
            prune: true,
        }
    }

    /// Disables early abandonment (every evaluation runs to completion).
    /// The E8 ablation uses this to measure what incremental scanning
    /// saves; search results are identical either way (see
    /// `mqa_vector::scan` for the soundness argument).
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Scanner work counters (terms computed vs skipped).
    pub fn scan_stats(&self) -> ScanStats {
        self.scanner.stats()
    }
}

impl DistanceFn for FusedDistance<'_> {
    fn eval(&mut self, id: VecId, bound: f32) -> Option<f32> {
        let bound = if self.prune { bound } else { f32::INFINITY };
        self.scanner.distance(self.store.concat_of(id), bound)
    }
}

/// The unified index over a multi-modal object collection.
///
/// ```
/// use mqa_graph::{IndexAlgorithm, UnifiedIndex};
/// use mqa_vector::{Metric, MultiVector, MultiVectorStore, Schema, Weights};
///
/// let schema = Schema::text_image(4, 4);
/// let mut store = MultiVectorStore::new(schema.clone());
/// for i in 0..64 {
///     let x = i as f32 / 64.0;
///     store.push(&MultiVector::complete(&schema, vec![vec![x; 4], vec![-x; 4]]));
/// }
/// let index = UnifiedIndex::build(
///     store,
///     Weights::normalized(&[1.2, 0.8]),
///     Metric::L2,
///     &IndexAlgorithm::hnsw(),
/// );
///
/// // A text-only (partial) query: one merging-free traversal.
/// let query = MultiVector::partial(&schema, vec![Some(vec![0.25; 4]), None]);
/// let out = index.search(&query, None, 3, 16);
/// assert_eq!(out.ids()[0], 16); // x = 16/64 = 0.25
/// ```
pub struct UnifiedIndex {
    store: MultiVectorStore,
    weights: Weights,
    metric: Metric,
    searcher: BuiltGraph,
    algorithm: IndexAlgorithm,
    build_time: Duration,
}

impl UnifiedIndex {
    /// Builds the index: weights each object's concatenated representation,
    /// then constructs the chosen navigation graph over it.
    ///
    /// # Panics
    /// Panics if the store is empty or the weights' arity mismatches the
    /// store schema.
    pub fn build(
        store: MultiVectorStore,
        weights: Weights,
        metric: Metric,
        algorithm: &IndexAlgorithm,
    ) -> Self {
        assert!(!store.is_empty(), "cannot index an empty object collection");
        assert_eq!(
            weights.arity(),
            store.schema().arity(),
            "weights arity must match the schema"
        );
        let build_span = mqa_obs::span(format!("graph.{}.build", algorithm.name()));
        let weighted = Arc::new(store.weighted_store(&weights));
        let searcher = algorithm.build_graph(&weighted, metric);
        let build_time = build_span.finish();
        Self {
            store,
            weights,
            metric,
            searcher,
            algorithm: algorithm.clone(),
            build_time,
        }
    }

    /// Reassembles an index from persisted parts (see
    /// [`crate::persist::UnifiedSnapshot`]); the reported build time is
    /// zero since nothing was built.
    pub fn from_parts(
        store: MultiVectorStore,
        weights: Weights,
        metric: Metric,
        searcher: BuiltGraph,
        algorithm: IndexAlgorithm,
    ) -> Self {
        assert_eq!(
            GraphSearcher::len(&searcher),
            store.len(),
            "navigation structure does not match the store"
        );
        Self {
            store,
            weights,
            metric,
            searcher,
            algorithm,
            build_time: Duration::ZERO,
        }
    }

    /// Captures a serializable snapshot of the whole index.
    pub fn snapshot(&self) -> crate::persist::UnifiedSnapshot {
        crate::persist::UnifiedSnapshot {
            store: self.store.clone(),
            weights: self.weights.clone(),
            metric: self.metric,
            algorithm: self.algorithm.clone(),
            graph: self.searcher.clone(),
        }
    }

    /// Merging-free multi-modal search.
    ///
    /// `query` may miss modalities (e.g. text-only); `weight_override`
    /// replaces the learned weights for *scoring* this query. Returns the
    /// ranked results plus work statistics (including incremental-scanning
    /// savings in `scan`).
    pub fn search(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
    ) -> UnifiedSearchOutput {
        self.search_with_pruning(query, weight_override, k, ef, true)
    }

    /// [`UnifiedIndex::search`] with an explicit incremental-scanning
    /// switch (`prune = false` evaluates every fused distance in full —
    /// the E8 ablation baseline; result sets are identical either way).
    pub fn search_with_pruning(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
        prune: bool,
    ) -> UnifiedSearchOutput {
        crate::scratch::with_pooled(|scratch| {
            self.search_scratch_pruning(query, weight_override, k, ef, prune, scratch)
        })
    }

    /// [`UnifiedIndex::search`] on a caller-supplied scratch — what engine
    /// workers drive so each thread reuses its own per-query state.
    pub fn search_scratch(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> UnifiedSearchOutput {
        self.search_scratch_pruning(query, weight_override, k, ef, true, scratch)
    }

    fn search_scratch_pruning(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
        prune: bool,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> UnifiedSearchOutput {
        let sw = mqa_obs::Stopwatch::start();
        let weights = weight_override.unwrap_or(&self.weights);
        let mut dist = FusedDistance::new(&self.store, query, weights, self.metric);
        if !prune {
            dist = dist.without_pruning();
        }
        let out = self.searcher.search_with(&mut dist, k, ef, scratch);
        out.stats.record(self.algorithm.name(), sw.elapsed_us());
        UnifiedSearchOutput {
            output: out,
            scan: dist.scan_stats(),
        }
    }

    /// Exact (exhaustive) fused search — the recall oracle.
    pub fn search_exact(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
    ) -> UnifiedSearchOutput {
        let sw = mqa_obs::Stopwatch::start();
        let weights = weight_override.unwrap_or(&self.weights);
        let mut dist = FusedDistance::new(&self.store, query, weights, self.metric);
        let flat = crate::flat::FlatSearcher::new(self.store.len());
        let out = flat.search(&mut dist, k, k);
        out.stats.record("flat", sw.elapsed_us());
        UnifiedSearchOutput {
            output: out,
            scan: dist.scan_stats(),
        }
    }

    /// The object collection.
    pub fn store(&self) -> &MultiVectorStore {
        &self.store
    }

    /// The build-time (learned) weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The graph algorithm configuration.
    pub fn algorithm(&self) -> &IndexAlgorithm {
        &self.algorithm
    }

    /// Wall-clock build time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Status-panel description.
    pub fn describe(&self) -> String {
        format!(
            "unified multi-vector index ({} modalities): {}",
            self.store.schema().arity(),
            self.searcher.describe()
        )
    }
}

/// Search output plus incremental-scanning counters.
#[derive(Debug, Clone)]
pub struct UnifiedSearchOutput {
    /// Ranked results and graph-walk statistics.
    pub output: SearchOutput,
    /// Fused-scan term counters (E8 reads `scan.savings()`).
    pub scan: ScanStats,
}

impl UnifiedSearchOutput {
    /// Ids of the results in rank order.
    pub fn ids(&self) -> Vec<VecId> {
        self.output.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;
    use mqa_vector::Schema;

    /// Clustered multi-modal store: objects around per-class centers in
    /// both modalities, with the image modality noisier.
    fn clustered(
        n: usize,
        classes: usize,
        text_noise: f32,
        image_noise: f32,
        seed: u64,
    ) -> (MultiVectorStore, Vec<u32>) {
        let schema = Schema::text_image(8, 8);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<(Vec<f32>, Vec<f32>)> = (0..classes)
            .map(|_| {
                (
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                )
            })
            .collect();
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let t: Vec<f32> = centers[c]
                .0
                .iter()
                .map(|x| x + rng.gen_range(-text_noise..text_noise))
                .collect();
            let im: Vec<f32> = centers[c]
                .1
                .iter()
                .map(|x| x + rng.gen_range(-image_noise..image_noise))
                .collect();
            store.push(&MultiVector::complete(&schema, vec![t, im]));
            labels.push(c as u32);
        }
        (store, labels)
    }

    fn build_default(seed: u64) -> (UnifiedIndex, Vec<u32>) {
        let (store, labels) = clustered(600, 12, 0.2, 0.6, seed);
        let weights = Weights::normalized(&[1.5, 0.5]);
        let idx = UnifiedIndex::build(store, weights, Metric::L2, &IndexAlgorithm::mqa_graph());
        (idx, labels)
    }

    #[test]
    fn graph_search_matches_exact_search() {
        let (idx, _) = build_default(1);
        let schema = idx.store().schema().clone();
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0usize;
        let queries = 20;
        let k = 10;
        for _ in 0..queries {
            let q = MultiVector::complete(
                &schema,
                vec![
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                ],
            );
            let truth = idx.search_exact(&q, None, k).ids();
            let got = idx.search(&q, None, k, 64).ids();
            hits += got.iter().filter(|id| truth.contains(id)).count();
        }
        let recall = hits as f64 / (queries * k) as f64;
        assert!(recall > 0.9, "unified recall {recall}");
    }

    #[test]
    fn partial_query_searches_present_modality_only() {
        let (idx, labels) = build_default(2);
        let schema = idx.store().schema().clone();
        // text part of object 0, no image
        let text = idx.store().part_of(0, 0).unwrap().to_vec();
        let q = MultiVector::partial(&schema, vec![Some(text), None]);
        let out = idx.search(&q, None, 10, 64);
        // the top results should share object 0's class (text is informative)
        let target = labels[0];
        let same = out
            .ids()
            .iter()
            .filter(|&&id| labels[id as usize] == target)
            .count();
        assert!(
            same >= 7,
            "text-only search matched {same}/10 of class {target}"
        );
    }

    #[test]
    fn incremental_scanning_saves_terms_at_equal_results() {
        let (idx, _) = build_default(3);
        let schema = idx.store().schema().clone();
        let q = MultiVector::complete(&schema, vec![vec![0.3; 8], vec![-0.2; 8]]);
        let pruned = idx.search(&q, None, 10, 64);
        assert!(pruned.scan.terms_skipped > 0, "expected scan savings");
        // exact scan agrees on the result set at full ef
        let exact = idx.search_exact(&q, None, 10);
        let graph_ids = pruned.ids();
        let overlap = exact
            .ids()
            .iter()
            .filter(|id| graph_ids.contains(id))
            .count();
        assert!(overlap >= 9, "overlap {overlap}");
    }

    #[test]
    fn weight_override_changes_ranking() {
        let (store, _) = clustered(300, 6, 0.2, 0.2, 4);
        let idx = UnifiedIndex::build(
            store,
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::mqa_graph(),
        );
        let schema = idx.store().schema().clone();
        // query: text like object 0, image like object 1
        let t = idx.store().part_of(0, 0).unwrap().to_vec();
        let im = idx.store().part_of(1, 1).unwrap().to_vec();
        let q = MultiVector::complete(&schema, vec![t, im]);
        let text_heavy = idx.search_exact(&q, Some(&Weights::normalized(&[1.0, 0.0])), 1);
        let image_heavy = idx.search_exact(&q, Some(&Weights::normalized(&[0.0, 1.0])), 1);
        assert_eq!(text_heavy.ids()[0], 0);
        assert_eq!(image_heavy.ids()[0], 1);
    }

    #[test]
    fn three_modality_schema_works() {
        let schema = mqa_vector::Schema::new(vec![
            mqa_vector::Modality {
                name: "a".into(),
                kind: mqa_vector::ModalityKind::Text,
                dim: 4,
            },
            mqa_vector::Modality {
                name: "b".into(),
                kind: mqa_vector::ModalityKind::Image,
                dim: 4,
            },
            mqa_vector::Modality {
                name: "c".into(),
                kind: mqa_vector::ModalityKind::Video,
                dim: 4,
            },
        ]);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let parts: Vec<Vec<f32>> = (0..3)
                .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            store.push(&MultiVector::complete(&schema, parts));
        }
        let idx = UnifiedIndex::build(
            store,
            Weights::uniform(3),
            Metric::L2,
            &IndexAlgorithm::nsg(),
        );
        let q = MultiVector::partial(&schema, vec![Some(vec![0.0; 4]), None, Some(vec![0.1; 4])]);
        let out = idx.search(&q, None, 5, 32);
        assert_eq!(out.ids().len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty object collection")]
    fn empty_store_panics() {
        let schema = Schema::text_image(2, 2);
        UnifiedIndex::build(
            MultiVectorStore::new(schema),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::Flat,
        );
    }

    #[test]
    fn pruning_toggle_preserves_results() {
        let (idx, _) = build_default(8);
        let schema = idx.store().schema().clone();
        let q = MultiVector::complete(&schema, vec![vec![0.1; 8], vec![-0.3; 8]]);
        let pruned = idx.search_with_pruning(&q, None, 10, 64, true);
        let full = idx.search_with_pruning(&q, None, 10, 64, false);
        assert_eq!(pruned.ids(), full.ids());
        assert_eq!(full.scan.terms_skipped, 0);
        assert!(pruned.scan.terms < full.scan.terms);
    }

    #[test]
    fn describe_mentions_modalities() {
        let (idx, _) = build_default(7);
        assert!(idx.describe().contains("2 modalities"));
        assert!(!idx.is_empty());
        assert_eq!(idx.len(), 600);
    }
}
