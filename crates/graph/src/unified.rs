//! The unified multi-vector navigation graph — the paper's Index
//! Construction + Query Execution core.
//!
//! One graph vertex per *object*, even though each object carries several
//! vectors (one per modality). Construction runs any [`IndexAlgorithm`]
//! over the **weighted concatenation** of the modality vectors: scaling
//! each block by `sqrt(w_m)` makes plain L2 on the concatenation equal to
//! the fused weighted distance `Σ w_m‖q_m − o_m‖²`, so every existing graph
//! algorithm works unchanged on multi-modal data.
//!
//! Search is **merging-free**: a query (possibly missing modalities) walks
//! the graph once. Distances are computed by [`FusedDistance`], which wraps
//! `mqa_vector::FusedScanner` — modality-by-modality incremental scanning
//! with early abandonment against the beam bound. Per-modality result
//! merging (the MR baseline) never happens.
//!
//! Query-time weights default to the build weights but can be overridden
//! ("user-specific inputs for search refinement" in the paper); overrides
//! change the scoring, not the graph, so extreme overrides trade recall
//! for control — measured in E6.
//!
//! ## Online mutation
//!
//! The index is *snapshot-published-and-mutable*: searchers pin an
//! immutable [`IndexSnapshot`] through an epoch-stamped
//! [`crate::live::SnapshotCell`], while a single writer (serialized by an
//! internal writer lock) applies [`UnifiedIndex::add_objects`] /
//! [`UnifiedIndex::remove_objects`] against a private copy and publishes
//! the result atomically. Deletes are tombstones filtered at
//! result-collection time — dead vertices keep routing until the pending
//! dead fraction crosses the compaction threshold, at which point the
//! graph is rewired around them (see [`crate::live`]).

use crate::live::{
    lock_ignore_poison, MutationError, MutationReport, SnapshotCell, SnapshotGuard, Tombstones,
};
use crate::pipeline::{BuiltGraph, IndexAlgorithm};
use crate::search::SearchOutput;
use crate::traits::{DistanceFn, GraphSearcher};
use crate::validate::InvariantViolation;
use mqa_vector::{FusedScanner, Metric, MultiVector, MultiVectorStore, ScanStats, VecId, Weights};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// [`DistanceFn`] adapter: fused weighted distance from a fixed query to
/// objects of a [`MultiVectorStore`], with incremental scanning.
pub struct FusedDistance<'a> {
    store: &'a MultiVectorStore,
    scanner: FusedScanner,
    prune: bool,
}

impl<'a> FusedDistance<'a> {
    /// Creates the evaluator for `query` under `weights`.
    pub fn new(
        store: &'a MultiVectorStore,
        query: &MultiVector,
        weights: &Weights,
        metric: Metric,
    ) -> Self {
        let scanner = FusedScanner::new(store.schema(), query, weights, metric);
        Self {
            store,
            scanner,
            prune: true,
        }
    }

    /// Disables early abandonment (every evaluation runs to completion).
    /// The E8 ablation uses this to measure what incremental scanning
    /// saves; search results are identical either way (see
    /// `mqa_vector::scan` for the soundness argument).
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Scanner work counters (terms computed vs skipped).
    pub fn scan_stats(&self) -> ScanStats {
        self.scanner.stats()
    }
}

impl DistanceFn for FusedDistance<'_> {
    fn eval(&mut self, id: VecId, bound: f32) -> Option<f32> {
        let bound = if self.prune { bound } else { f32::INFINITY };
        self.scanner.distance(self.store.concat_of(id), bound)
    }
}

/// One published generation of the index: the object collection, the
/// navigation structure built over it, and the deletion state. Immutable
/// once published — the writer clones it, mutates the clone, and publishes
/// the clone as the next generation.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    store: MultiVectorStore,
    searcher: BuiltGraph,
    tombstones: Tombstones,
}

impl IndexSnapshot {
    /// The object collection of this generation (live + dead slots).
    pub fn store(&self) -> &MultiVectorStore {
        &self.store
    }

    /// The navigation structure of this generation.
    pub fn searcher(&self) -> &BuiltGraph {
        &self.searcher
    }

    /// The deletion state of this generation.
    pub fn tombstones(&self) -> &Tombstones {
        &self.tombstones
    }

    /// Audits the snapshot's cross-structure invariants and returns every
    /// violation found (empty = sound):
    ///
    /// - the navigation structure covers exactly the store population;
    /// - the tombstone bitmaps are internally consistent
    ///   ([`crate::validate::check_tombstones`]);
    /// - no edge points into a compacted-away id
    ///   ([`crate::validate::check_edges_live`]).
    ///
    /// The per-family structural validators run only while no id has been
    /// compacted: compaction legitimately unlinks dead vertices, which the
    /// quiesced-shape validators (HNSW's reachability floor in particular)
    /// would misread as corruption.
    pub fn validate(&self) -> Vec<InvariantViolation> {
        let n = self.store.len();
        let mut out = Vec::new();
        if GraphSearcher::len(&self.searcher) != n {
            out.push(InvariantViolation::SizeMismatch {
                context: "unified snapshot population".to_string(),
                expected: n,
                got: GraphSearcher::len(&self.searcher),
            });
        }
        out.extend(crate::validate::check_tombstones(
            "unified snapshot",
            n,
            &self.tombstones,
        ));
        if self.tombstones.compacted_count() == 0 {
            out.extend(self.searcher.validate());
        } else {
            match &self.searcher {
                BuiltGraph::Nav(g) => out.extend(crate::validate::check_edges_live(
                    "unified snapshot navgraph",
                    g.graph().edges(),
                    &self.tombstones,
                )),
                BuiltGraph::Hnsw(h) => {
                    let mut edges = Vec::new();
                    h.for_each_edge(|_, v, u| edges.push((v, u)));
                    out.extend(crate::validate::check_edges_live(
                        "unified snapshot hnsw",
                        edges.into_iter(),
                        &self.tombstones,
                    ));
                }
                // Flat has no edges; IVF never compacts (filter-only).
                BuiltGraph::Flat(_) | BuiltGraph::Ivf(_) => {}
            }
        }
        out
    }
}

/// A pinned, immutable view of the published object collection.
/// Dereferences to the [`MultiVectorStore`]; the underlying snapshot stays
/// alive (and unchanged) for as long as the guard is held, even across
/// concurrent publishes.
pub struct StoreGuard {
    guard: SnapshotGuard<IndexSnapshot>,
}

impl std::ops::Deref for StoreGuard {
    type Target = MultiVectorStore;

    fn deref(&self) -> &MultiVectorStore {
        self.guard.store()
    }
}

/// The unified index over a multi-modal object collection.
///
/// ```
/// use mqa_graph::{IndexAlgorithm, UnifiedIndex};
/// use mqa_vector::{Metric, MultiVector, MultiVectorStore, Schema, Weights};
///
/// let schema = Schema::text_image(4, 4);
/// let mut store = MultiVectorStore::new(schema.clone());
/// for i in 0..64 {
///     let x = i as f32 / 64.0;
///     store.push(&MultiVector::complete(&schema, vec![vec![x; 4], vec![-x; 4]]));
/// }
/// let index = UnifiedIndex::build(
///     store,
///     Weights::normalized(&[1.2, 0.8]),
///     Metric::L2,
///     &IndexAlgorithm::hnsw(),
/// );
///
/// // A text-only (partial) query: one merging-free traversal.
/// let query = MultiVector::partial(&schema, vec![Some(vec![0.25; 4]), None]);
/// let out = index.search(&query, None, 3, 16);
/// assert_eq!(out.ids()[0], 16); // x = 16/64 = 0.25
///
/// // Online mutation: retire an object and insert a new one while any
/// // concurrent searcher keeps reading its pinned snapshot.
/// index.remove_objects(&[16]).unwrap();
/// assert!(!index.search(&query, None, 3, 16).ids().contains(&16));
/// let obj = MultiVector::complete(&schema, vec![vec![0.25; 4], vec![-0.25; 4]]);
/// let report = index.add_objects(std::slice::from_ref(&obj)).unwrap();
/// assert_eq!(index.search(&query, None, 3, 16).ids()[0], 64);
/// assert_eq!(report.epoch, 2);
/// ```
pub struct UnifiedIndex {
    weights: Weights,
    metric: Metric,
    algorithm: IndexAlgorithm,
    build_time: Duration,
    /// The published generation searchers read through an epoch guard.
    published: SnapshotCell<IndexSnapshot>,
    /// Serializes mutators; never held by searchers.
    writer: Mutex<()>,
    /// Raised while a mutation batch is being applied (traces use it to
    /// distinguish quiesced from concurrent-mutation queries).
    mutating: AtomicBool,
    compact_threshold: f64,
}

impl UnifiedIndex {
    /// Pending-dead fraction past which a delete batch triggers graph
    /// compaction (FreshDiskANN-style consolidation territory).
    pub const DEFAULT_COMPACT_THRESHOLD: f64 = 0.2;

    /// Builds the index: weights each object's concatenated representation,
    /// then constructs the chosen navigation graph over it.
    ///
    /// # Panics
    /// Panics if the store is empty or the weights' arity mismatches the
    /// store schema.
    pub fn build(
        store: MultiVectorStore,
        weights: Weights,
        metric: Metric,
        algorithm: &IndexAlgorithm,
    ) -> Self {
        assert!(!store.is_empty(), "cannot index an empty object collection");
        assert_eq!(
            weights.arity(),
            store.schema().arity(),
            "weights arity must match the schema"
        );
        let build_span = mqa_obs::span(format!("graph.{}.build", algorithm.name()));
        let weighted = Arc::new(store.weighted_store(&weights));
        let searcher = algorithm.build_graph(&weighted, metric);
        let build_time = build_span.finish();
        let tombstones = Tombstones::new(store.len());
        Self {
            weights,
            metric,
            algorithm: algorithm.clone(),
            build_time,
            published: SnapshotCell::new(IndexSnapshot {
                store,
                searcher,
                tombstones,
            }),
            writer: Mutex::new(()),
            mutating: AtomicBool::new(false),
            compact_threshold: Self::DEFAULT_COMPACT_THRESHOLD,
        }
    }

    /// Overrides the pending-dead fraction that triggers compaction
    /// (clamped to `(0, 1]`; the default is
    /// [`UnifiedIndex::DEFAULT_COMPACT_THRESHOLD`]).
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Self {
        self.compact_threshold = threshold.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Reassembles an index from persisted parts (see
    /// [`crate::persist::UnifiedSnapshot`]) with all-live tombstones; the
    /// reported build time is zero since nothing was built.
    pub fn from_parts(
        store: MultiVectorStore,
        weights: Weights,
        metric: Metric,
        searcher: BuiltGraph,
        algorithm: IndexAlgorithm,
    ) -> Self {
        let tombstones = Tombstones::new(store.len());
        Self::from_parts_with_tombstones(store, weights, metric, searcher, algorithm, tombstones)
    }

    /// [`UnifiedIndex::from_parts`] with explicit deletion state — what
    /// snapshot restoration uses so persisted tombstones survive the
    /// round trip.
    pub fn from_parts_with_tombstones(
        store: MultiVectorStore,
        weights: Weights,
        metric: Metric,
        searcher: BuiltGraph,
        algorithm: IndexAlgorithm,
        mut tombstones: Tombstones,
    ) -> Self {
        assert_eq!(
            GraphSearcher::len(&searcher),
            store.len(),
            "navigation structure does not match the store"
        );
        tombstones.grow(store.len());
        Self {
            weights,
            metric,
            algorithm,
            build_time: Duration::ZERO,
            published: SnapshotCell::new(IndexSnapshot {
                store,
                searcher,
                tombstones,
            }),
            writer: Mutex::new(()),
            mutating: AtomicBool::new(false),
            compact_threshold: Self::DEFAULT_COMPACT_THRESHOLD,
        }
    }

    /// Captures a serializable snapshot of the whole index.
    pub fn snapshot(&self) -> crate::persist::UnifiedSnapshot {
        let snap = self.published.load();
        crate::persist::UnifiedSnapshot {
            store: snap.store().clone(),
            weights: self.weights.clone(),
            metric: self.metric,
            algorithm: self.algorithm.clone(),
            graph: snap.searcher().clone(),
            tombstones: snap.tombstones().clone(),
        }
    }

    /// Pins the current published generation. The guard stays valid (and
    /// immutable) across concurrent mutations; its epoch identifies the
    /// generation.
    pub fn current(&self) -> SnapshotGuard<IndexSnapshot> {
        self.published.load()
    }

    /// The current publication epoch (0 = as built; each mutation batch
    /// publishes one epoch).
    pub fn epoch(&self) -> u64 {
        self.published.epoch()
    }

    /// Inserts a batch of complete multi-vector objects, assigning them
    /// the next dense ids. The new generation is published atomically
    /// after the navigation structure has been grown over the batch;
    /// concurrent searchers keep their pinned snapshots.
    ///
    /// # Errors
    /// Rejects the whole batch (publishing nothing) on an empty batch, an
    /// arity mismatch, or an incomplete object.
    pub fn add_objects(&self, objects: &[MultiVector]) -> Result<MutationReport, MutationError> {
        if objects.is_empty() {
            return Err(MutationError::EmptyBatch);
        }
        let _writer = lock_ignore_poison(&self.writer);
        let _mutating = MutatingFlag::raise(&self.mutating);
        let snap = self.published.load();
        let want = snap.store().schema().arity();
        for object in objects {
            if object.arity() != want {
                return Err(MutationError::ArityMismatch {
                    got: object.arity(),
                    want,
                });
            }
            if let Some(modality) = (0..want).find(|&m| object.part(m).is_none()) {
                return Err(MutationError::IncompleteObject { modality });
            }
        }
        let sw = mqa_obs::Stopwatch::start();
        let mut store = snap.store().clone();
        for object in objects {
            store.push(object);
        }
        let weighted = Arc::new(store.weighted_store(&self.weights));
        let mut searcher = snap.searcher().clone();
        searcher.grow_to(&weighted, self.metric, &self.algorithm);
        let mut tombstones = snap.tombstones().clone();
        tombstones.grow(store.len());
        let (live, dead) = (tombstones.live_count(), tombstones.dead_count());
        let dead_fraction = tombstones.dead_fraction();
        let epoch = self.published.publish(IndexSnapshot {
            store,
            searcher,
            tombstones,
        });
        mqa_obs::counter("graph.mutate.inserts").add(objects.len() as u64);
        mqa_obs::histogram("graph.mutate.publish_us").record(sw.elapsed_us());
        mqa_obs::gauge("graph.mutate.dead_fraction").set(dead_fraction);
        Ok(MutationReport {
            epoch,
            applied: objects.len(),
            compacted: false,
            live,
            dead,
        })
    }

    /// Tombstones a batch of objects. Dead objects never surface in
    /// results (filtered at result-collection time) but keep routing
    /// searches until the pending dead fraction crosses the compaction
    /// threshold, at which point the graph is rewired around them before
    /// the new generation is published. Deleting an already-dead id is an
    /// idempotent no-op (it does not count toward `applied`).
    ///
    /// # Errors
    /// Rejects the whole batch on an empty batch or an out-of-range id.
    pub fn remove_objects(&self, ids: &[VecId]) -> Result<MutationReport, MutationError> {
        if ids.is_empty() {
            return Err(MutationError::EmptyBatch);
        }
        let _writer = lock_ignore_poison(&self.writer);
        let _mutating = MutatingFlag::raise(&self.mutating);
        let snap = self.published.load();
        let n = snap.store().len();
        if let Some(&id) = ids.iter().find(|&&id| id as usize >= n) {
            return Err(MutationError::IdOutOfRange { id, n });
        }
        let sw = mqa_obs::Stopwatch::start();
        let mut tombstones = snap.tombstones().clone();
        let mut applied = 0usize;
        for &id in ids {
            if tombstones.kill(id) {
                applied += 1;
            }
        }
        let mut searcher = snap.searcher().clone();
        let mut compacted = false;
        if tombstones.pending_fraction() > self.compact_threshold {
            let weighted = Arc::new(snap.store().weighted_store(&self.weights));
            if searcher.compact_live(&weighted, self.metric, &self.algorithm, &tombstones) {
                tombstones.mark_all_compacted();
                compacted = true;
                mqa_obs::counter("graph.mutate.compactions").inc();
            }
        }
        let (live, dead) = (tombstones.live_count(), tombstones.dead_count());
        let dead_fraction = tombstones.dead_fraction();
        let epoch = self.published.publish(IndexSnapshot {
            store: snap.store().clone(),
            searcher,
            tombstones,
        });
        mqa_obs::counter("graph.mutate.deletes").add(applied as u64);
        mqa_obs::histogram("graph.mutate.publish_us").record(sw.elapsed_us());
        mqa_obs::gauge("graph.mutate.dead_fraction").set(dead_fraction);
        Ok(MutationReport {
            epoch,
            applied,
            compacted,
            live,
            dead,
        })
    }

    /// Merging-free multi-modal search.
    ///
    /// `query` may miss modalities (e.g. text-only); `weight_override`
    /// replaces the learned weights for *scoring* this query. Returns the
    /// ranked results plus work statistics (including incremental-scanning
    /// savings in `scan`). Only live objects surface: tombstoned ids are
    /// filtered at result-collection time (never mid-traversal).
    pub fn search(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
    ) -> UnifiedSearchOutput {
        self.search_with_pruning(query, weight_override, k, ef, true)
    }

    /// [`UnifiedIndex::search`] with an explicit incremental-scanning
    /// switch (`prune = false` evaluates every fused distance in full —
    /// the E8 ablation baseline; result sets are identical either way).
    pub fn search_with_pruning(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
        prune: bool,
    ) -> UnifiedSearchOutput {
        crate::scratch::with_pooled(|scratch| {
            self.search_scratch_pruning(query, weight_override, k, ef, prune, scratch)
        })
    }

    /// [`UnifiedIndex::search`] on a caller-supplied scratch — what engine
    /// workers drive so each thread reuses its own per-query state.
    pub fn search_scratch(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> UnifiedSearchOutput {
        self.search_scratch_pruning(query, weight_override, k, ef, true, scratch)
    }

    fn search_scratch_pruning(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
        ef: usize,
        prune: bool,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> UnifiedSearchOutput {
        let sw = mqa_obs::Stopwatch::start();
        let snap = self.published.load();
        mqa_obs::trace::note_index_state(snap.epoch(), self.mutating.load(Ordering::Relaxed));
        let weights = weight_override.unwrap_or(&self.weights);
        let mut dist = FusedDistance::new(snap.store(), query, weights, self.metric);
        if !prune {
            dist = dist.without_pruning();
        }
        let dead = snap.tombstones().dead_count();
        let out = if dead == 0 {
            // Quiesced fast path: identical to the pre-mutation index.
            snap.searcher().search_with(&mut dist, k, ef, scratch)
        } else {
            // Over-fetch so the post-filter can still fill k live results,
            // then drop tombstoned ids at collection time.
            let k_eff = (k + dead).min(snap.store().len());
            let ef_eff = ef.max(k_eff);
            let mut out = snap
                .searcher()
                .search_with(&mut dist, k_eff, ef_eff, scratch);
            out.results.retain(|c| !snap.tombstones().is_dead(c.id));
            out.results.truncate(k);
            out
        };
        out.stats.record(self.algorithm.name(), sw.elapsed_us());
        UnifiedSearchOutput {
            output: out,
            scan: dist.scan_stats(),
        }
    }

    /// Exact (exhaustive) fused search — the recall oracle. Applies the
    /// same live-only filtering as graph search.
    pub fn search_exact(
        &self,
        query: &MultiVector,
        weight_override: Option<&Weights>,
        k: usize,
    ) -> UnifiedSearchOutput {
        let sw = mqa_obs::Stopwatch::start();
        let snap = self.published.load();
        let weights = weight_override.unwrap_or(&self.weights);
        let mut dist = FusedDistance::new(snap.store(), query, weights, self.metric);
        let flat = crate::flat::FlatSearcher::new(snap.store().len());
        let dead = snap.tombstones().dead_count();
        let out = if dead == 0 {
            flat.search(&mut dist, k, k)
        } else {
            let k_eff = (k + dead).min(snap.store().len());
            let mut out = flat.search(&mut dist, k_eff, k_eff);
            out.results.retain(|c| !snap.tombstones().is_dead(c.id));
            out.results.truncate(k);
            out
        };
        out.stats.record("flat", sw.elapsed_us());
        UnifiedSearchOutput {
            output: out,
            scan: dist.scan_stats(),
        }
    }

    /// The object collection, pinned at the current generation (live and
    /// dead slots; ids are never reclaimed).
    pub fn store(&self) -> StoreGuard {
        StoreGuard {
            guard: self.published.load(),
        }
    }

    /// The build-time (learned) weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The graph algorithm configuration.
    pub fn algorithm(&self) -> &IndexAlgorithm {
        &self.algorithm
    }

    /// Wall-clock build time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of indexed object slots (live + dead; ids are stable).
    pub fn len(&self) -> usize {
        self.published.load().store().len()
    }

    /// Number of live (searchable) objects.
    pub fn live_len(&self) -> usize {
        self.published.load().tombstones().live_count()
    }

    /// Whether the index has no object slots.
    pub fn is_empty(&self) -> bool {
        self.published.load().store().is_empty()
    }

    /// Status-panel description.
    pub fn describe(&self) -> String {
        let snap = self.published.load();
        format!(
            "unified multi-vector index ({} modalities): {}",
            snap.store().schema().arity(),
            snap.searcher().describe()
        )
    }
}

/// RAII marker for the mutation-in-progress flag: raised on construction,
/// lowered on drop so a panicking writer cannot leave the flag stuck.
struct MutatingFlag<'a>(&'a AtomicBool);

impl<'a> MutatingFlag<'a> {
    fn raise(flag: &'a AtomicBool) -> Self {
        flag.store(true, Ordering::Release);
        Self(flag)
    }
}

impl Drop for MutatingFlag<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Search output plus incremental-scanning counters.
#[derive(Debug, Clone)]
pub struct UnifiedSearchOutput {
    /// Ranked results and graph-walk statistics.
    pub output: SearchOutput,
    /// Fused-scan term counters (E8 reads `scan.savings()`).
    pub scan: ScanStats,
}

impl UnifiedSearchOutput {
    /// Ids of the results in rank order.
    pub fn ids(&self) -> Vec<VecId> {
        self.output.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;
    use mqa_vector::Schema;

    /// Clustered multi-modal store: objects around per-class centers in
    /// both modalities, with the image modality noisier.
    fn clustered(
        n: usize,
        classes: usize,
        text_noise: f32,
        image_noise: f32,
        seed: u64,
    ) -> (MultiVectorStore, Vec<u32>) {
        let schema = Schema::text_image(8, 8);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<(Vec<f32>, Vec<f32>)> = (0..classes)
            .map(|_| {
                (
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                )
            })
            .collect();
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let t: Vec<f32> = centers[c]
                .0
                .iter()
                .map(|x| x + rng.gen_range(-text_noise..text_noise))
                .collect();
            let im: Vec<f32> = centers[c]
                .1
                .iter()
                .map(|x| x + rng.gen_range(-image_noise..image_noise))
                .collect();
            store.push(&MultiVector::complete(&schema, vec![t, im]));
            labels.push(c as u32);
        }
        (store, labels)
    }

    fn build_default(seed: u64) -> (UnifiedIndex, Vec<u32>) {
        let (store, labels) = clustered(600, 12, 0.2, 0.6, seed);
        let weights = Weights::normalized(&[1.5, 0.5]);
        let idx = UnifiedIndex::build(store, weights, Metric::L2, &IndexAlgorithm::mqa_graph());
        (idx, labels)
    }

    fn random_object(schema: &Schema, rng: &mut StdRng) -> MultiVector {
        let parts: Vec<Vec<f32>> = (0..schema.arity())
            .map(|m| {
                (0..schema.dim(m))
                    .map(|_| rng.gen_range(-2.0f32..2.0))
                    .collect()
            })
            .collect();
        MultiVector::complete(schema, parts)
    }

    #[test]
    fn graph_search_matches_exact_search() {
        let (idx, _) = build_default(1);
        let schema = idx.store().schema().clone();
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0usize;
        let queries = 20;
        let k = 10;
        for _ in 0..queries {
            let q = MultiVector::complete(
                &schema,
                vec![
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                    (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                ],
            );
            let truth = idx.search_exact(&q, None, k).ids();
            let got = idx.search(&q, None, k, 64).ids();
            hits += got.iter().filter(|id| truth.contains(id)).count();
        }
        let recall = hits as f64 / (queries * k) as f64;
        assert!(recall > 0.9, "unified recall {recall}");
    }

    #[test]
    fn partial_query_searches_present_modality_only() {
        let (idx, labels) = build_default(2);
        let schema = idx.store().schema().clone();
        // text part of object 0, no image
        let text = idx.store().part_of(0, 0).unwrap().to_vec();
        let q = MultiVector::partial(&schema, vec![Some(text), None]);
        let out = idx.search(&q, None, 10, 64);
        // the top results should share object 0's class (text is informative)
        let target = labels[0];
        let same = out
            .ids()
            .iter()
            .filter(|&&id| labels[id as usize] == target)
            .count();
        assert!(
            same >= 7,
            "text-only search matched {same}/10 of class {target}"
        );
    }

    #[test]
    fn incremental_scanning_saves_terms_at_equal_results() {
        let (idx, _) = build_default(3);
        let schema = idx.store().schema().clone();
        let q = MultiVector::complete(&schema, vec![vec![0.3; 8], vec![-0.2; 8]]);
        let pruned = idx.search(&q, None, 10, 64);
        assert!(pruned.scan.terms_skipped > 0, "expected scan savings");
        // exact scan agrees on the result set at full ef
        let exact = idx.search_exact(&q, None, 10);
        let graph_ids = pruned.ids();
        let overlap = exact
            .ids()
            .iter()
            .filter(|id| graph_ids.contains(id))
            .count();
        assert!(overlap >= 9, "overlap {overlap}");
    }

    #[test]
    fn weight_override_changes_ranking() {
        let (store, _) = clustered(300, 6, 0.2, 0.2, 4);
        let idx = UnifiedIndex::build(
            store,
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::mqa_graph(),
        );
        let schema = idx.store().schema().clone();
        // query: text like object 0, image like object 1
        let t = idx.store().part_of(0, 0).unwrap().to_vec();
        let im = idx.store().part_of(1, 1).unwrap().to_vec();
        let q = MultiVector::complete(&schema, vec![t, im]);
        let text_heavy = idx.search_exact(&q, Some(&Weights::normalized(&[1.0, 0.0])), 1);
        let image_heavy = idx.search_exact(&q, Some(&Weights::normalized(&[0.0, 1.0])), 1);
        assert_eq!(text_heavy.ids()[0], 0);
        assert_eq!(image_heavy.ids()[0], 1);
    }

    #[test]
    fn three_modality_schema_works() {
        let schema = mqa_vector::Schema::new(vec![
            mqa_vector::Modality {
                name: "a".into(),
                kind: mqa_vector::ModalityKind::Text,
                dim: 4,
            },
            mqa_vector::Modality {
                name: "b".into(),
                kind: mqa_vector::ModalityKind::Image,
                dim: 4,
            },
            mqa_vector::Modality {
                name: "c".into(),
                kind: mqa_vector::ModalityKind::Video,
                dim: 4,
            },
        ]);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let parts: Vec<Vec<f32>> = (0..3)
                .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            store.push(&MultiVector::complete(&schema, parts));
        }
        let idx = UnifiedIndex::build(
            store,
            Weights::uniform(3),
            Metric::L2,
            &IndexAlgorithm::nsg(),
        );
        let q = MultiVector::partial(&schema, vec![Some(vec![0.0; 4]), None, Some(vec![0.1; 4])]);
        let out = idx.search(&q, None, 5, 32);
        assert_eq!(out.ids().len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty object collection")]
    fn empty_store_panics() {
        let schema = Schema::text_image(2, 2);
        UnifiedIndex::build(
            MultiVectorStore::new(schema),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::Flat,
        );
    }

    #[test]
    fn pruning_toggle_preserves_results() {
        let (idx, _) = build_default(8);
        let schema = idx.store().schema().clone();
        let q = MultiVector::complete(&schema, vec![vec![0.1; 8], vec![-0.3; 8]]);
        let pruned = idx.search_with_pruning(&q, None, 10, 64, true);
        let full = idx.search_with_pruning(&q, None, 10, 64, false);
        assert_eq!(pruned.ids(), full.ids());
        assert_eq!(full.scan.terms_skipped, 0);
        assert!(pruned.scan.terms < full.scan.terms);
    }

    #[test]
    fn describe_mentions_modalities() {
        let (idx, _) = build_default(7);
        assert!(idx.describe().contains("2 modalities"));
        assert!(!idx.is_empty());
        assert_eq!(idx.len(), 600);
    }

    #[test]
    fn add_objects_publishes_and_finds_new_objects() {
        let (idx, _) = build_default(10);
        assert_eq!(idx.epoch(), 0);
        let schema = idx.store().schema().clone();
        let mut rng = StdRng::seed_from_u64(77);
        let batch: Vec<MultiVector> = (0..20).map(|_| random_object(&schema, &mut rng)).collect();
        let report = idx.add_objects(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.applied, 20);
        assert_eq!(report.live, 620);
        assert_eq!(idx.len(), 620);
        assert_eq!(idx.live_len(), 620);
        // Every inserted object is its own nearest neighbour.
        for (i, obj) in batch.iter().enumerate() {
            let expect = 600 + i as VecId;
            let got = idx.search(obj, None, 1, 64).ids();
            assert_eq!(got, vec![expect], "inserted object {expect} not found");
        }
        assert!(idx.current().validate().is_empty());
    }

    #[test]
    fn remove_objects_filters_dead_from_results() {
        let (idx, _) = build_default(11);
        let schema = idx.store().schema().clone();
        // Delete object 0 and search for exactly its vectors: it must
        // never surface, in graph search or the exact oracle.
        let parts: Vec<Vec<f32>> = (0..2)
            .map(|m| idx.store().part_of(0, m).unwrap().to_vec())
            .collect();
        let q = MultiVector::complete(&schema, parts);
        assert_eq!(idx.search(&q, None, 1, 64).ids(), vec![0]);
        let report = idx.remove_objects(&[0]).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.applied, 1);
        assert_eq!(report.live, 599);
        assert!(!report.compacted);
        assert!(!idx.search(&q, None, 10, 64).ids().contains(&0));
        assert!(!idx.search_exact(&q, None, 10).ids().contains(&0));
        assert_eq!(idx.len(), 600, "slots are never reclaimed");
        assert_eq!(idx.live_len(), 599);
        // Idempotent: a second delete applies nothing, still publishes.
        let again = idx.remove_objects(&[0]).unwrap();
        assert_eq!(again.applied, 0);
        assert_eq!(again.epoch, 2);
    }

    #[test]
    fn deletes_past_threshold_trigger_compaction() {
        let (store, _) = clustered(300, 6, 0.2, 0.6, 12);
        let idx = UnifiedIndex::build(
            store,
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::vamana(),
        )
        .with_compaction_threshold(0.1);
        // 45/300 = 15% dead crosses the 10% threshold in one batch.
        let doomed: Vec<VecId> = (0..300).step_by(7).map(|i| i as VecId).collect();
        let report = idx.remove_objects(&doomed).unwrap();
        assert!(report.compacted, "15% dead must compact at threshold 10%");
        let snap = idx.current();
        assert_eq!(snap.tombstones().pending_count(), 0);
        assert!(snap.validate().is_empty(), "{:?}", snap.validate());
        // Live objects remain discoverable after the rewiring.
        let schema = idx.store().schema().clone();
        let mut found = 0usize;
        let mut probed = 0usize;
        for id in (1..300u32)
            .step_by(11)
            .filter(|&id| !snap.tombstones().is_dead(id))
        {
            probed += 1;
            let parts: Vec<Vec<f32>> = (0..2)
                .map(|m| idx.store().part_of(id, m).unwrap().to_vec())
                .collect();
            let q = MultiVector::complete(&schema, parts);
            if idx.search(&q, None, 5, 64).ids().contains(&id) {
                found += 1;
            }
        }
        assert!(
            found * 10 >= probed * 9,
            "post-compaction discoverability {found}/{probed}"
        );
    }

    #[test]
    fn mutation_batches_reject_bad_input() {
        let (idx, _) = build_default(13);
        assert_eq!(idx.add_objects(&[]), Err(MutationError::EmptyBatch));
        assert_eq!(idx.remove_objects(&[]), Err(MutationError::EmptyBatch));
        assert_eq!(
            idx.remove_objects(&[600]),
            Err(MutationError::IdOutOfRange { id: 600, n: 600 })
        );
        let wrong = MultiVector::complete(&Schema::text_image(3, 3), vec![vec![0.0; 3]; 2]);
        // Same arity, wrong dims would panic in the store; wrong arity is
        // the typed error.
        let three = mqa_vector::Schema::new(vec![
            mqa_vector::Modality {
                name: "a".into(),
                kind: mqa_vector::ModalityKind::Text,
                dim: 8,
            },
            mqa_vector::Modality {
                name: "b".into(),
                kind: mqa_vector::ModalityKind::Image,
                dim: 8,
            },
            mqa_vector::Modality {
                name: "c".into(),
                kind: mqa_vector::ModalityKind::Video,
                dim: 8,
            },
        ]);
        let wrong_arity = MultiVector::complete(&three, vec![vec![0.0; 8]; 3]);
        assert_eq!(
            idx.add_objects(std::slice::from_ref(&wrong_arity)),
            Err(MutationError::ArityMismatch { got: 3, want: 2 })
        );
        let schema = idx.store().schema().clone();
        let partial = MultiVector::partial(&schema, vec![Some(vec![0.0; 8]), None]);
        assert_eq!(
            idx.add_objects(std::slice::from_ref(&partial)),
            Err(MutationError::IncompleteObject { modality: 1 })
        );
        let _ = wrong;
        // Rejected batches publish nothing.
        assert_eq!(idx.epoch(), 0);
    }

    #[test]
    fn readers_pin_their_generation_across_publishes() {
        let (idx, _) = build_default(14);
        let before = idx.current();
        assert_eq!(before.epoch(), 0);
        idx.remove_objects(&[5]).unwrap();
        let after = idx.current();
        assert_eq!(after.epoch(), 1);
        // The pinned generation still sees object 5 as live.
        assert!(!before.tombstones().is_dead(5));
        assert!(after.tombstones().is_dead(5));
    }

    #[test]
    fn insert_then_delete_round_trip_keeps_recall() {
        let (idx, _) = build_default(15);
        let schema = idx.store().schema().clone();
        let mut rng = StdRng::seed_from_u64(16);
        let batch: Vec<MultiVector> = (0..30).map(|_| random_object(&schema, &mut rng)).collect();
        idx.add_objects(&batch).unwrap();
        let doomed: Vec<VecId> = (600..630).collect();
        idx.remove_objects(&doomed).unwrap();
        // The inserted-then-deleted objects never surface.
        for obj in &batch {
            let ids = idx.search(obj, None, 3, 64).ids();
            assert!(ids.iter().all(|&id| id < 600), "dead id surfaced: {ids:?}");
        }
        // Graph search still agrees with the (filtered) exact oracle.
        let q = random_object(&schema, &mut rng);
        let truth = idx.search_exact(&q, None, 10).ids();
        let got = idx.search(&q, None, 10, 64).ids();
        let overlap = got.iter().filter(|id| truth.contains(id)).count();
        assert!(overlap >= 8, "post-mutation recall {overlap}/10");
    }
}
