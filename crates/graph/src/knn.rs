//! Approximate k-nearest-neighbour graph construction.
//!
//! NSG's pipeline starts from a kNN graph. For small stores an exact
//! `O(n²)` computation is fine; at scale we run **NN-descent-style
//! neighbour expansion**: initialize each vertex with random neighbours,
//! then repeatedly propose *neighbours of neighbours* as better candidates,
//! keeping the best `k`. Locality makes the proposals increasingly accurate
//! and the graph converges in a handful of rounds.

use crate::adjacency::Adjacency;
use crate::util::parallel_map;
use mqa_rng::StdRng;
use mqa_vector::{Candidate, Metric, TopK, VecId, VectorStore};

/// Below this population the exact kNN graph is computed directly.
const EXACT_THRESHOLD: usize = 2_000;

/// Parameters of the approximate construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnParams {
    /// Neighbours per vertex.
    pub k: usize,
    /// Expansion rounds.
    pub iters: usize,
    /// Maximum candidates examined per vertex per round.
    pub sample: usize,
    /// RNG seed for the random initialization.
    pub seed: u64,
}

impl Default for KnnParams {
    fn default() -> Self {
        Self {
            k: 20,
            iters: 5,
            sample: 60,
            seed: 0,
        }
    }
}

/// Builds a (possibly approximate) kNN graph over `store`.
///
/// # Panics
/// Panics if the store is empty or `k == 0`.
pub fn knn_graph(store: &VectorStore, metric: Metric, params: &KnnParams) -> Adjacency {
    assert!(!store.is_empty(), "kNN graph over an empty store");
    assert!(params.k > 0, "kNN graph requires k >= 1");
    let n = store.len();
    if n <= EXACT_THRESHOLD {
        exact_knn(store, metric, params.k)
    } else {
        nn_expansion(store, metric, params)
    }
}

/// Exact kNN graph by full pairwise scan (small stores only).
pub fn exact_knn(store: &VectorStore, metric: Metric, k: usize) -> Adjacency {
    let n = store.len();
    let lists = parallel_map(n, |v| {
        let mut top = TopK::new(k.min(n.saturating_sub(1)).max(1));
        let qv = store.get(v);
        for (u, uv) in store.iter() {
            if u == v {
                continue;
            }
            top.offer(Candidate::new(u, metric.distance(qv, uv)));
        }
        top.into_sorted()
            .into_iter()
            .map(|c| c.id)
            .collect::<Vec<_>>()
    });
    let mut g = Adjacency::new(n);
    for (v, list) in lists.into_iter().enumerate() {
        g.set_neighbors(v as VecId, list);
    }
    g
}

/// NN-descent-style neighbour expansion.
fn nn_expansion(store: &VectorStore, metric: Metric, params: &KnnParams) -> Adjacency {
    let n = store.len();
    let k = params.k.min(n - 1);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x6E6E);

    // Random initialization.
    let mut g = Adjacency::new(n);
    for v in 0..n {
        let mut nb = Vec::with_capacity(k);
        while nb.len() < k {
            let u = rng.gen_range(0..n) as VecId;
            if u as usize != v && !nb.contains(&u) {
                nb.push(u);
            }
        }
        g.set_neighbors(v as VecId, nb);
    }

    for round in 0..params.iters {
        let lists = parallel_map(n, |v| {
            let qv = store.get(v);
            let mut top = TopK::new(k);
            let mut seen: Vec<VecId> = Vec::with_capacity(params.sample + k);
            // current neighbours
            for &u in g.neighbors(v) {
                seen.push(u);
            }
            // neighbours of neighbours, bounded by `sample`
            'outer: for &u in g.neighbors(v) {
                for &w in g.neighbors(u) {
                    if w != v && !seen.contains(&w) {
                        seen.push(w);
                        if seen.len() >= params.sample + k {
                            break 'outer;
                        }
                    }
                }
            }
            // a pinch of random restarts keeps disconnected clumps merging;
            // derive per-vertex randomness from the round and vertex id.
            let mut local = StdRng::seed_from_u64(params.seed ^ (round as u64) << 32 ^ v as u64);
            for _ in 0..4 {
                let u = local.gen_range(0..n) as VecId;
                if u != v && !seen.contains(&u) {
                    seen.push(u);
                }
            }
            for u in seen {
                top.offer(Candidate::new(u, metric.distance(qv, store.get(u))));
            }
            top.into_sorted()
                .into_iter()
                .map(|c| c.id)
                .collect::<Vec<_>>()
        });
        for (v, list) in lists.into_iter().enumerate() {
            g.set_neighbors(v as VecId, list);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;

    fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn exact_knn_on_line() {
        let mut store = VectorStore::new(1);
        for i in 0..6 {
            store.push(&[i as f32]);
        }
        let g = exact_knn(&store, Metric::L2, 2);
        // vertex 0's nearest are 1 and 2
        assert_eq!(g.neighbors(0), &[1, 2]);
        // vertex 3's nearest are 2 and 4 (either order by distance ties)
        let nb3: Vec<_> = g.neighbors(3).to_vec();
        assert!(nb3.contains(&2) && nb3.contains(&4));
    }

    #[test]
    fn knn_graph_has_requested_degree() {
        let store = random_store(300, 8, 1);
        let g = knn_graph(
            &store,
            Metric::L2,
            &KnnParams {
                k: 10,
                ..Default::default()
            },
        );
        for v in 0..300u32 {
            assert_eq!(g.degree(v), 10);
        }
    }

    #[test]
    fn no_self_loops() {
        let store = random_store(100, 4, 2);
        let g = knn_graph(
            &store,
            Metric::L2,
            &KnnParams {
                k: 5,
                ..Default::default()
            },
        );
        for v in 0..100u32 {
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn approximate_recall_is_high() {
        // Force the approximate path by exceeding the threshold.
        let store = random_store(EXACT_THRESHOLD + 500, 8, 3);
        let k = 10;
        let approx = nn_expansion(
            &store,
            Metric::L2,
            &KnnParams {
                k,
                iters: 6,
                sample: 60,
                seed: 0,
            },
        );
        let exact = exact_knn(&store, Metric::L2, k);
        // measure recall on a sample of vertices
        let mut hit = 0usize;
        let mut total = 0usize;
        for v in (0..store.len() as u32).step_by(50) {
            let truth = exact.neighbors(v);
            for u in approx.neighbors(v) {
                if truth.contains(u) {
                    hit += 1;
                }
            }
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.8, "kNN expansion recall too low: {recall}");
    }

    #[test]
    fn k_capped_by_population() {
        let store = random_store(3, 2, 4);
        let g = knn_graph(
            &store,
            Metric::L2,
            &KnnParams {
                k: 10,
                ..Default::default()
            },
        );
        for v in 0..3u32 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn empty_store_panics() {
        knn_graph(&VectorStore::new(2), Metric::L2, &KnnParams::default());
    }
}
