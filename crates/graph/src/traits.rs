//! Core abstractions: distance evaluators, graph searchers, and the
//! user-facing [`VectorIndex`] facade.

use crate::pipeline::IndexAlgorithm;
use crate::scratch::SearchScratch;
use crate::search::SearchOutput;
use mqa_vector::{Metric, VecId, VectorStore};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Typed errors of the query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// The query's dimensionality differs from the store's.
    DimensionMismatch {
        /// Dimensions the query carries.
        query: usize,
        /// Dimensions the store expects.
        store: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DimensionMismatch { query, store } => write!(
                f,
                "query dimension mismatch: query has {query} dims, store expects {store}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Evaluates distances from an implicit query to stored vectors by id,
/// optionally abandoning early against a pruning bound.
///
/// The beam-search routine is generic over this trait, which is how one
/// search implementation serves plain single-vector indexes
/// ([`FlatDistance`]), the fused multi-modal scanner
/// ([`crate::unified::FusedDistance`]), and the I/O-counting paged
/// evaluator ([`crate::starling`]).
pub trait DistanceFn {
    /// Distance from the query to object `id`, or `None` if the evaluation
    /// was abandoned because the distance is provably `>= bound`.
    fn eval(&mut self, id: VecId, bound: f32) -> Option<f32>;

    /// Distance without pruning.
    fn exact(&mut self, id: VecId) -> f32 {
        // An abandoned evaluation means the distance is provably >= the
        // bound, so `INFINITY` is the faithful answer either way.
        self.eval(id, f32::INFINITY).unwrap_or(f32::INFINITY)
    }
}

/// Plain metric distance against a [`VectorStore`] — the evaluator for
/// single-vector indexes (JE, the MR per-modality channels, E7's index
/// comparisons).
pub struct FlatDistance<'a> {
    store: &'a VectorStore,
    query: &'a [f32],
    metric: Metric,
}

impl<'a> FlatDistance<'a> {
    /// Creates the evaluator.
    ///
    /// # Errors
    /// Returns [`GraphError::DimensionMismatch`] if the query dimension
    /// does not match the store.
    pub fn new(
        store: &'a VectorStore,
        query: &'a [f32],
        metric: Metric,
    ) -> Result<Self, GraphError> {
        if query.len() != store.dim() {
            return Err(GraphError::DimensionMismatch {
                query: query.len(),
                store: store.dim(),
            });
        }
        Ok(Self {
            store,
            query,
            metric,
        })
    }

    /// Evaluator whose query is the stored vector `v` itself — the
    /// construction-time case (refinement, repair, HNSW insertion), where
    /// the dimensions match by definition.
    pub fn for_vertex(store: &'a VectorStore, v: VecId, metric: Metric) -> Self {
        Self {
            store,
            query: store.get(v),
            metric,
        }
    }
}

impl DistanceFn for FlatDistance<'_> {
    fn eval(&mut self, id: VecId, _bound: f32) -> Option<f32> {
        // Single-vector evaluation is one metric kernel call; chunked
        // early abandonment pays off only for fused multi-block scans, so
        // the flat evaluator always completes.
        Some(self.metric.distance(self.query, self.store.get(id)))
    }
}

/// A built navigation structure that can route any [`DistanceFn`] to the
/// query's nearest neighbours.
///
/// Implementations: flat exhaustive scan, pipeline-built graphs
/// (NSG/Vamana/custom), HNSW, and the Starling paged wrapper.
pub trait GraphSearcher: Send + Sync {
    /// Searches for the `k` nearest objects with beam width `ef`
    /// (`ef >= k`; implementations clamp), running all per-query state on
    /// `scratch` — the allocation-free entry point concurrent workers
    /// drive with their own scratch.
    fn search_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> SearchOutput;

    /// Searches on the calling thread's pooled scratch — identical results
    /// to [`GraphSearcher::search_with`].
    fn search(&self, dist: &mut dyn DistanceFn, k: usize, ef: usize) -> SearchOutput {
        crate::scratch::with_pooled(|scratch| self.search_with(dist, k, ef, scratch))
    }

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean out-degree of the underlying graph (0 for flat scans).
    fn avg_degree(&self) -> f64;

    /// Short human-readable description for the status panel.
    fn describe(&self) -> String;
}

/// A complete single-vector index: store + metric + built navigation
/// structure. This is what the MR baseline builds per modality and what the
/// JE baseline builds over joint vectors.
pub struct VectorIndex {
    store: Arc<VectorStore>,
    metric: Metric,
    searcher: Box<dyn GraphSearcher>,
    algorithm: IndexAlgorithm,
    build_time: Duration,
}

impl VectorIndex {
    /// Builds the index over `store` with the chosen algorithm.
    ///
    /// # Panics
    /// Panics if the store is empty — an index over nothing is a
    /// configuration error the coordinator reports before reaching here.
    pub fn build(store: VectorStore, metric: Metric, algorithm: &IndexAlgorithm) -> Self {
        assert!(!store.is_empty(), "cannot index an empty vector store");
        let store = Arc::new(store);
        let build_span = mqa_obs::span(format!("graph.{}.build", algorithm.name()));
        let searcher = algorithm.build(&store, metric);
        let build_time = build_span.finish();
        Self {
            store,
            metric,
            searcher,
            algorithm: algorithm.clone(),
            build_time,
        }
    }

    /// Searches for the `k` nearest stored vectors to `query`.
    ///
    /// # Panics
    /// Panics if the query dimension does not match the store; use
    /// [`VectorIndex::try_search`] for a recoverable error.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> SearchOutput {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        self.try_search(query, k, ef).unwrap_or_default()
    }

    /// Searches for the `k` nearest stored vectors to `query`.
    ///
    /// # Errors
    /// Returns [`GraphError::DimensionMismatch`] if the query dimension
    /// does not match the store.
    pub fn try_search(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
    ) -> Result<SearchOutput, GraphError> {
        let sw = mqa_obs::Stopwatch::start();
        let mut dist = FlatDistance::new(&self.store, query, self.metric)?;
        let out = self.searcher.search(&mut dist, k, ef);
        out.stats.record(self.algorithm.name(), sw.elapsed_us());
        Ok(out)
    }

    /// [`VectorIndex::try_search`] on a caller-supplied scratch — the
    /// entry point for engine workers that own their per-thread state.
    ///
    /// # Errors
    /// Returns [`GraphError::DimensionMismatch`] if the query dimension
    /// does not match the store.
    pub fn try_search_with(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutput, GraphError> {
        let sw = mqa_obs::Stopwatch::start();
        let mut dist = FlatDistance::new(&self.store, query, self.metric)?;
        let out = self.searcher.search_with(&mut dist, k, ef, scratch);
        out.stats.record(self.algorithm.name(), sw.elapsed_us());
        Ok(out)
    }

    /// The backing store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The algorithm configuration the index was built with.
    pub fn algorithm(&self) -> &IndexAlgorithm {
        &self.algorithm
    }

    /// Wall-clock build time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Mean out-degree of the graph.
    pub fn avg_degree(&self) -> f64 {
        self.searcher.avg_degree()
    }

    /// Status-panel description.
    pub fn describe(&self) -> String {
        self.searcher.describe()
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_distance_matches_metric() {
        let mut store = VectorStore::new(2);
        store.push(&[0.0, 0.0]);
        store.push(&[3.0, 4.0]);
        let q = [0.0f32, 0.0];
        let mut d = FlatDistance::new(&store, &q, Metric::L2).expect("dims match");
        assert_eq!(d.exact(0), 0.0);
        assert_eq!(d.exact(1), 25.0);
        assert_eq!(d.eval(1, 0.1), Some(25.0)); // flat never abandons
    }

    #[test]
    fn flat_distance_checks_dim() {
        let store = VectorStore::new(3);
        let q = [0.0f32; 2];
        let err = match FlatDistance::new(&store, &q, Metric::L2) {
            Err(e) => e,
            Ok(_) => panic!("dims differ"),
        };
        assert_eq!(err, GraphError::DimensionMismatch { query: 2, store: 3 });
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn for_vertex_matches_new() {
        let mut store = VectorStore::new(2);
        store.push(&[1.0, 2.0]);
        store.push(&[4.0, 6.0]);
        let mut a = FlatDistance::for_vertex(&store, 0, Metric::L2);
        let q = [1.0f32, 2.0];
        let mut b = FlatDistance::new(&store, &q, Metric::L2).expect("dims match");
        assert_eq!(a.exact(1), b.exact(1));
    }
}
