//! Core abstractions: distance evaluators, graph searchers, and the
//! user-facing [`VectorIndex`] facade.

use crate::pipeline::IndexAlgorithm;
use crate::search::SearchOutput;
use mqa_vector::{Metric, VecId, VectorStore};
use std::sync::Arc;
use std::time::Duration;

/// Evaluates distances from an implicit query to stored vectors by id,
/// optionally abandoning early against a pruning bound.
///
/// The beam-search routine is generic over this trait, which is how one
/// search implementation serves plain single-vector indexes
/// ([`FlatDistance`]), the fused multi-modal scanner
/// ([`crate::unified::FusedDistance`]), and the I/O-counting paged
/// evaluator ([`crate::starling`]).
pub trait DistanceFn {
    /// Distance from the query to object `id`, or `None` if the evaluation
    /// was abandoned because the distance is provably `>= bound`.
    fn eval(&mut self, id: VecId, bound: f32) -> Option<f32>;

    /// Distance without pruning.
    fn exact(&mut self, id: VecId) -> f32 {
        // An abandoned evaluation means the distance is provably >= the
        // bound, so `INFINITY` is the faithful answer either way.
        self.eval(id, f32::INFINITY).unwrap_or(f32::INFINITY)
    }
}

/// Plain metric distance against a [`VectorStore`] — the evaluator for
/// single-vector indexes (JE, the MR per-modality channels, E7's index
/// comparisons).
pub struct FlatDistance<'a> {
    store: &'a VectorStore,
    query: &'a [f32],
    metric: Metric,
}

impl<'a> FlatDistance<'a> {
    /// Creates the evaluator.
    ///
    /// # Panics
    /// Panics if the query dimension does not match the store.
    pub fn new(store: &'a VectorStore, query: &'a [f32], metric: Metric) -> Self {
        assert_eq!(query.len(), store.dim(), "query dimension mismatch");
        Self {
            store,
            query,
            metric,
        }
    }
}

impl DistanceFn for FlatDistance<'_> {
    fn eval(&mut self, id: VecId, _bound: f32) -> Option<f32> {
        // Single-vector evaluation is one metric kernel call; chunked
        // early abandonment pays off only for fused multi-block scans, so
        // the flat evaluator always completes.
        Some(self.metric.distance(self.query, self.store.get(id)))
    }
}

/// A built navigation structure that can route any [`DistanceFn`] to the
/// query's nearest neighbours.
///
/// Implementations: flat exhaustive scan, pipeline-built graphs
/// (NSG/Vamana/custom), HNSW, and the Starling paged wrapper.
pub trait GraphSearcher: Send + Sync {
    /// Searches for the `k` nearest objects with beam width `ef`
    /// (`ef >= k`; implementations clamp).
    fn search(&self, dist: &mut dyn DistanceFn, k: usize, ef: usize) -> SearchOutput;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean out-degree of the underlying graph (0 for flat scans).
    fn avg_degree(&self) -> f64;

    /// Short human-readable description for the status panel.
    fn describe(&self) -> String;
}

/// A complete single-vector index: store + metric + built navigation
/// structure. This is what the MR baseline builds per modality and what the
/// JE baseline builds over joint vectors.
pub struct VectorIndex {
    store: Arc<VectorStore>,
    metric: Metric,
    searcher: Box<dyn GraphSearcher>,
    algorithm: IndexAlgorithm,
    build_time: Duration,
}

impl VectorIndex {
    /// Builds the index over `store` with the chosen algorithm.
    ///
    /// # Panics
    /// Panics if the store is empty — an index over nothing is a
    /// configuration error the coordinator reports before reaching here.
    pub fn build(store: VectorStore, metric: Metric, algorithm: &IndexAlgorithm) -> Self {
        assert!(!store.is_empty(), "cannot index an empty vector store");
        let store = Arc::new(store);
        let build_span = mqa_obs::span(format!("graph.{}.build", algorithm.name()));
        let searcher = algorithm.build(&store, metric);
        let build_time = build_span.finish();
        Self {
            store,
            metric,
            searcher,
            algorithm: algorithm.clone(),
            build_time,
        }
    }

    /// Searches for the `k` nearest stored vectors to `query`.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> SearchOutput {
        let sw = mqa_obs::Stopwatch::start();
        let mut dist = FlatDistance::new(&self.store, query, self.metric);
        let out = self.searcher.search(&mut dist, k, ef);
        out.stats.record(self.algorithm.name(), sw.elapsed_us());
        out
    }

    /// The backing store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The algorithm configuration the index was built with.
    pub fn algorithm(&self) -> &IndexAlgorithm {
        &self.algorithm
    }

    /// Wall-clock build time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Mean out-degree of the graph.
    pub fn avg_degree(&self) -> f64 {
        self.searcher.avg_degree()
    }

    /// Status-panel description.
    pub fn describe(&self) -> String {
        self.searcher.describe()
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_distance_matches_metric() {
        let mut store = VectorStore::new(2);
        store.push(&[0.0, 0.0]);
        store.push(&[3.0, 4.0]);
        let q = [0.0f32, 0.0];
        let mut d = FlatDistance::new(&store, &q, Metric::L2);
        assert_eq!(d.exact(0), 0.0);
        assert_eq!(d.exact(1), 25.0);
        assert_eq!(d.eval(1, 0.1), Some(25.0)); // flat never abandons
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn flat_distance_checks_dim() {
        let store = VectorStore::new(3);
        let q = [0.0f32; 2];
        FlatDistance::new(&store, &q, Metric::L2);
    }
}
