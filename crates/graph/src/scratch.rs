//! Reusable per-query search state: the allocation-free hot path.
//!
//! Every beam search needs a visited set over the whole vertex population,
//! a frontier heap, and (for construction) an evaluated-candidate pool.
//! Allocating those per query puts an O(n) `vec![false; n]` on the hot
//! path; under concurrent serving that allocation traffic dominates. This
//! module centralizes the state:
//!
//! * [`VisitedSet`] — an epoch-stamped `u32` array. "Clearing" is bumping
//!   the epoch (O(1)); the backing array is only ever zeroed on epoch
//!   wraparound, once every `u32::MAX - 1` queries.
//! * [`SearchScratch`] — one visited set for vertices, one for pages
//!   (Starling), the frontier heap, and the construction candidate pool.
//! * [`with_pooled`] — a thread-local scratch pool so legacy entry points
//!   (`search`, `beam_search`) stay allocation-free without threading a
//!   scratch through every caller.
//!
//! Determinism guarantee: a search driven through a reused scratch visits
//! vertices in exactly the order a fresh allocation would — the epoch trick
//! changes how "unvisited" is represented, never what it means. The
//! property tests in `tests/scratch_reuse.rs` pin this bit-for-bit across
//! every index algorithm, including across an epoch wraparound.

use mqa_vector::{Candidate, MinCandidate, TopK, VecId};
use std::cell::RefCell;
use std::collections::BinaryHeap;

/// Epoch-stamped visited set: membership is `stamp[v] == epoch`, so
/// resetting between queries is one epoch increment instead of an O(n)
/// clear or a fresh allocation.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// An empty set over a population of `n` vertices. Call
    /// [`VisitedSet::next_epoch`] before first use.
    pub fn new(n: usize) -> Self {
        Self {
            // ALLOC: one stamp array per scratch, sized to the population;
            // reused across every query the scratch serves.
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Population capacity (not the number of visited vertices).
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Grows the population to at least `n` vertices.
    pub fn grow(&mut self, n: usize) {
        if n > self.stamp.len() {
            self.stamp.resize(n, 0);
        }
    }

    /// Starts a new query: everything becomes unvisited in O(1). On epoch
    /// wraparound the backing array is re-zeroed — the one O(n) cost,
    /// amortized over ~4 billion queries.
    pub fn next_epoch(&mut self) {
        self.epoch += 1;
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `v` visited; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: VecId) -> bool {
        // INVARIANT: `stamp` is sized to the graph's vertex count and every
        // id handed to the scratch comes from that graph's edge lists.
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Whether `v` is visited in the current epoch.
    #[inline]
    pub fn contains(&self, v: VecId) -> bool {
        // INVARIANT: ids come from the owning graph (see `insert`).
        self.stamp[v as usize] == self.epoch
    }

    /// Current epoch (diagnostic / test hook).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Jumps the epoch counter to `epoch`, stamping nothing. Test hook for
    /// exercising wraparound (`force_epoch(u32::MAX - 2)` puts the next
    /// few queries across the wrap) without running 4 billion searches.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// All per-query mutable state of a beam search, reusable across queries
/// and owned by exactly one thread at a time (workers own theirs; the
/// thread-local pool backs everyone else).
#[derive(Debug)]
pub struct SearchScratch {
    /// Visited vertices of the current walk.
    pub(crate) visited: VisitedSet,
    /// Pages read by the current query (Starling's I/O accounting).
    pub(crate) pages: VisitedSet,
    /// The frontier min-heap.
    pub(crate) frontier: BinaryHeap<MinCandidate>,
    /// Every candidate evaluated (construction's selection pool).
    pub(crate) evaluated: Vec<Candidate>,
    /// The reusable top-`k` beam collector (`search_paged_into`'s
    /// zero-allocation result path).
    pub(crate) beam: TopK,
}

impl SearchScratch {
    /// Fresh scratch with empty buffers; grows lazily to the population
    /// it is first used on.
    pub fn new() -> Self {
        Self {
            visited: VisitedSet::new(0),
            pages: VisitedSet::new(0),
            // ALLOC: `BinaryHeap::new` / `Vec::new` are capacity-0 and
            // touch the heap only once buffers grow on first use; the
            // scratch is pooled, so growth amortizes to zero per query.
            frontier: BinaryHeap::new(),
            evaluated: Vec::new(),
            // ALLOC: the beam's k+1 slots are allocated once per scratch
            // and re-armed per query via TopK::reset.
            beam: TopK::new(1),
        }
    }

    /// Prepares for one query over `n` vertices: visited set cleared (by
    /// epoch bump), frontier and pool emptied. Buffer capacity is kept.
    pub(crate) fn begin(&mut self, n: usize) {
        self.visited.grow(n);
        self.visited.next_epoch();
        self.frontier.clear();
        self.evaluated.clear();
    }

    /// Prepares the page-visited set for one query over `pages` pages.
    pub(crate) fn begin_pages(&mut self, pages: usize) {
        self.pages.grow(pages);
        self.pages.next_epoch();
    }

    /// Jumps both epoch counters to `epoch` — test hook for pinning that
    /// searches spanning an epoch wraparound stay bit-identical.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.visited.force_epoch(epoch);
        self.pages.force_epoch(epoch);
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// One pooled scratch per thread, handed out by [`with_pooled`]. The
    /// slot is *taken* (not borrowed) for the duration of the closure, so
    /// reentrant searches — a searcher calling another searcher — fall
    /// back to a fresh scratch instead of aborting on a double borrow.
    static POOL: RefCell<Option<Box<SearchScratch>>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's pooled [`SearchScratch`], allocating one
/// only on the first (or a reentrant) use. Steady-state searches through
/// the legacy `search`/`beam_search` entry points therefore perform zero
/// O(n) allocations.
pub fn with_pooled<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    let taken = POOL.with(|p| p.borrow_mut().take());
    let mut scratch = match taken {
        Some(s) => {
            mqa_obs::counter("graph.scratch.reuses").inc();
            s
        }
        None => {
            mqa_obs::counter("graph.scratch.allocs").inc();
            // ALLOC: one scratch per thread (or per reentrant search);
            // every later query on this thread reuses it.
            Box::new(SearchScratch::new())
        }
    };
    let out = f(&mut scratch);
    POOL.with(|p| {
        let mut slot = p.borrow_mut();
        if slot.is_none() {
            *slot = Some(scratch);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_epoch_reset() {
        let mut v = VisitedSet::new(3);
        v.next_epoch();
        assert!(v.insert(0));
        assert!(!v.insert(0));
        assert!(v.contains(0));
        assert!(!v.contains(1));
        v.next_epoch();
        assert!(!v.contains(0));
        assert!(v.insert(0));
    }

    #[test]
    fn epoch_wraparound_rezeroes() {
        let mut v = VisitedSet::new(4);
        v.force_epoch(u32::MAX - 1);
        assert!(v.insert(2));
        // The next epoch is u32::MAX, which triggers the re-zero + reset
        // to 1; the stale MAX-1 stamp at vertex 2 must not read as
        // visited.
        v.next_epoch();
        assert_eq!(v.epoch(), 1);
        assert!(!v.contains(2));
        assert!(v.insert(2));
        assert!(!v.insert(2));
    }

    #[test]
    fn grow_preserves_membership() {
        let mut v = VisitedSet::new(2);
        v.next_epoch();
        assert!(v.insert(1));
        v.grow(5);
        assert_eq!(v.len(), 5);
        assert!(v.contains(1));
        assert!(v.insert(4));
    }

    #[test]
    fn with_pooled_reuses_across_calls() {
        let allocs = mqa_obs::counter("graph.scratch.allocs");
        let reuses = mqa_obs::counter("graph.scratch.reuses");
        let before_allocs = allocs.get();
        let before_reuses = reuses.get();
        with_pooled(|s| s.begin(10));
        with_pooled(|s| {
            s.begin(10);
            assert!(s.visited.epoch() >= 2, "pooled scratch kept its epochs");
        });
        assert!(allocs.get() >= before_allocs);
        assert!(
            reuses.get() > before_reuses,
            "second call must reuse the pooled scratch"
        );
    }

    #[test]
    fn with_pooled_survives_reentrancy() {
        let out = with_pooled(|outer| {
            outer.begin(4);
            outer.visited.insert(3);
            // A nested search takes a *fresh* scratch; the outer one keeps
            // its state untouched.
            let inner = with_pooled(|inner| {
                inner.begin(4);
                inner.visited.insert(1);
                inner.visited.contains(3)
            });
            assert!(!inner, "inner scratch must not see outer state");
            outer.visited.contains(3)
        });
        assert!(out);
    }
}
