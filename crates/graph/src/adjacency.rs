//! Compact adjacency storage for navigation graphs.

use mqa_vector::VecId;
use serde::{Deserialize, Serialize};

/// Out-neighbour lists for a fixed vertex population.
///
/// Navigation graphs are directed (pruning keeps out-degree bounded while
/// in-degree floats); vertices are the dense object ids of the backing
/// vector store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    lists: Vec<Vec<VecId>>,
}

impl Adjacency {
    /// An edgeless graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            lists: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VecId) -> &[VecId] {
        // An out-of-range id reads as "no neighbours" — traversal simply
        // dead-ends instead of panicking mid-search.
        self.lists.get(v as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Replaces the out-neighbour list of `v`.
    ///
    /// # Panics
    /// Panics (debug) if the list contains `v` itself or an out-of-range id.
    pub fn set_neighbors(&mut self, v: VecId, neighbors: Vec<VecId>) {
        debug_assert!(
            neighbors
                .iter()
                .all(|&u| u != v && (u as usize) < self.lists.len()),
            "invalid neighbour list for {v}"
        );
        // INVARIANT: builders only pass vertex ids < n minted by new(n).
        self.lists[v as usize] = neighbors;
    }

    /// Extends the vertex population to `n` (new vertices are edgeless).
    /// Shrinking is a no-op — vertex ids are never reclaimed.
    pub fn grow(&mut self, n: usize) {
        if n > self.lists.len() {
            self.lists.resize(n, Vec::new());
        }
    }

    /// Iterates every directed edge `(v, u)`.
    pub fn edges(&self) -> impl Iterator<Item = (VecId, VecId)> + '_ {
        self.lists
            .iter()
            .enumerate()
            .flat_map(|(v, nb)| nb.iter().map(move |&u| (v as VecId, u)))
    }

    /// Test-only raw list access for building deliberately corrupted
    /// graphs in validator tests (the public mutators debug-reject
    /// malformed lists, but corrupted data can still arrive through
    /// deserialization).
    #[cfg(test)]
    pub(crate) fn lists_mut(&mut self) -> &mut Vec<Vec<VecId>> {
        &mut self.lists
    }

    /// Adds edge `v → u` unless already present. Returns whether it was
    /// added.
    pub fn add_edge(&mut self, v: VecId, u: VecId) -> bool {
        debug_assert_ne!(v, u, "self loop");
        // INVARIANT: builders only pass vertex ids < n minted by new(n).
        let list = &mut self.lists[v as usize];
        if list.contains(&u) {
            false
        } else {
            list.push(u);
            true
        }
    }

    /// Out-degree of `v`. Out-of-range ids have degree zero.
    pub fn degree(&self, v: VecId) -> usize {
        self.lists.get(v as usize).map_or(0, Vec::len)
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        let total: usize = self.lists.iter().map(Vec::len).sum();
        total as f64 / self.lists.len() as f64
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Vertices reachable from `start` (BFS), as a boolean mask.
    pub fn reachable_from(&self, start: VecId) -> Vec<bool> {
        let n = self.lists.len();
        if n == 0 {
            return Vec::new();
        }
        let mut seen = crate::scratch::VisitedSet::new(n);
        seen.next_epoch();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors(v) {
                if seen.insert(u) {
                    queue.push_back(u);
                }
            }
        }
        (0..n as VecId).map(|v| seen.contains(v)).collect()
    }

    /// Number of vertices reachable from `start` (including `start`).
    pub fn reachable_count(&self, start: VecId) -> usize {
        self.reachable_from(start).iter().filter(|&&b| b).count()
    }

    /// Approximate resident bytes of the adjacency lists.
    pub fn bytes(&self) -> usize {
        self.lists
            .iter()
            .map(|l| l.len() * std::mem::size_of::<VecId>())
            .sum::<usize>()
            + self.lists.len() * std::mem::size_of::<Vec<VecId>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_deduplicates() {
        let mut g = Adjacency::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn set_neighbors_replaces() {
        let mut g = Adjacency::new(4);
        g.set_neighbors(2, vec![0, 1]);
        g.set_neighbors(2, vec![3]);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn degree_statistics() {
        let mut g = Adjacency::new(3);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(1, vec![0]);
        assert!((g.avg_degree() - 1.0).abs() < 1e-9);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn reachability_on_chain() {
        let mut g = Adjacency::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        // 3 is isolated
        assert_eq!(g.reachable_count(0), 3);
        assert_eq!(g.reachable_count(3), 1);
        let mask = g.reachable_from(0);
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn empty_graph() {
        let g = Adjacency::new(0);
        assert!(g.is_empty());
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn grow_adds_edgeless_vertices() {
        let mut g = Adjacency::new(2);
        g.add_edge(0, 1);
        g.grow(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(4), &[] as &[VecId]);
        g.grow(1); // shrink is a no-op
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn edges_iterates_all() {
        let mut g = Adjacency::new(3);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(2, vec![0]);
        let e: Vec<(VecId, VecId)> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (2, 0)]);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = Adjacency::new(2);
        g.add_edge(0, 1);
        let j = serde_json::to_string(&g).unwrap();
        let back: Adjacency = serde_json::from_str(&j).unwrap();
        assert_eq!(g, back);
    }
}
