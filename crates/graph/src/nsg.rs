//! NSG — Navigating Spreading-out Graph — as a pipeline instance.
//!
//! NSG's recipe: build a kNN graph, pick the medoid as the navigating
//! vertex, re-select every vertex's neighbours by searching the graph and
//! applying the MRNG edge rule (α-robust pruning with `α = 1`), then grow a
//! spanning attachment for unreachable vertices. All four steps are
//! existing pipeline stages — this is exactly the "decompose an existing
//! graph into the pipeline" workflow the paper describes.

use crate::pipeline::{
    EntryStage, GraphPipeline, InitStage, NavGraph, RefineStage, RepairStage, SelectStage,
};
use mqa_vector::{Metric, VectorStore};
use std::sync::Arc;

/// The canonical NSG pipeline configuration.
///
/// * `r` — degree bound of the final graph;
/// * `l` — construction beam width;
/// * `knn_k` — degree of the initial kNN graph;
/// * `seed` — randomness for the kNN initialization.
pub fn pipeline(r: usize, l: usize, knn_k: usize, seed: u64) -> GraphPipeline {
    GraphPipeline {
        init: InitStage::Knn { k: knn_k, seed },
        entry: EntryStage::Medoid,
        refine: RefineStage { l, passes: 1 },
        select: SelectStage::RobustPrune { alpha: 1.0, r },
        repair: RepairStage::GrowFromEntry,
    }
}

/// Builds an NSG over `store`.
pub fn build(
    store: &Arc<VectorStore>,
    metric: Metric,
    r: usize,
    l: usize,
    knn_k: usize,
    seed: u64,
) -> NavGraph {
    pipeline(r, l, knn_k, seed).run(store, metric, "nsg")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{FlatDistance, GraphSearcher};
    use mqa_rng::StdRng;

    fn store(n: usize, dim: usize, seed: u64) -> Arc<VectorStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        Arc::new(s)
    }

    #[test]
    fn nsg_is_connected_and_bounded() {
        let s = store(600, 8, 1);
        let nav = build(&s, Metric::L2, 16, 40, 12, 0);
        assert!((nav.report().connectivity - 1.0).abs() < 1e-9);
        // Repair may add a handful of overflow edges beyond r.
        assert!(
            nav.report().max_degree <= 16 + 4,
            "max {}",
            nav.report().max_degree
        );
    }

    #[test]
    fn nsg_self_search_finds_self() {
        let s = store(400, 6, 2);
        let nav = build(&s, Metric::L2, 16, 40, 12, 0);
        for v in (0..400u32).step_by(37) {
            let mut d = FlatDistance::for_vertex(&s, v, Metric::L2);
            let out = nav.search(&mut d, 1, 32);
            assert_eq!(out.results[0].id, v, "vertex {v} should find itself");
        }
    }

    #[test]
    fn mrng_rule_is_alpha_one() {
        let p = pipeline(10, 20, 8, 0);
        assert_eq!(p.select, SelectStage::RobustPrune { alpha: 1.0, r: 10 });
        assert_eq!(p.refine.passes, 1);
    }
}
