//! # mqa-graph
//!
//! The navigation-graph index framework of MQA (the paper's *Index
//! Construction* component): a pluggable family of proximity graphs over a
//! vector store, a shared beam-search routine with early-abandon distance
//! evaluation, and the **unified multi-vector navigation graph** that makes
//! multi-modal search merging-free.
//!
//! ## Index family
//!
//! The configuration panel's "index" dropdown maps to
//! [`IndexAlgorithm`]:
//!
//! * [`hnsw`] — Hierarchical Navigable Small World graphs;
//! * [`nsg`] — Navigating Spreading-out Graphs (kNN-graph + MRNG pruning +
//!   connectivity repair, medoid entry);
//! * [`vamana`] — the DiskANN graph (random init + α-robust pruning);
//! * [`flat`] — exact brute-force scan (baseline and ground truth);
//! * [`starling`] — a page-clustered, I/O-counting layout wrapper
//!   reproducing the disk-resident design of the Starling paper (reference 9).
//!
//! NSG and Vamana are expressed as instances of the five-stage construction
//! pipeline in [`pipeline`] (initialization → candidate acquisition →
//! neighbour selection → connectivity repair → entry-point selection),
//! mirroring the paper's CGraph-based decomposition; each stage runs as a
//! task of an `mqa-dag` pipeline. HNSW's layered structure is built
//! directly but plugs into the same [`GraphSearcher`] interface.
//!
//! ## Unified multi-vector index
//!
//! [`unified::UnifiedIndex`] assigns *multiple vectors per object* to one
//! graph: edges are chosen under the fused weighted distance (learned
//! weights scale each modality block by `sqrt(w_m)`, reducing fused L2 to
//! plain L2 — see `mqa_vector::Weights::scale_concat`), and queries
//! traverse the graph once, evaluating fused distances incrementally with
//! early abandonment ([`mqa_vector::FusedScanner`]). No per-modality result
//! merging ever happens — the "merging-free search" of the paper.

pub mod adjacency;
pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod knn;
pub mod live;
pub mod nsg;
pub mod persist;
pub mod pipeline;
pub mod prune;
pub mod scratch;
pub mod search;
pub mod starling;
pub mod traits;
pub mod unified;
pub mod util;
pub mod validate;
pub mod vamana;

pub use adjacency::Adjacency;
pub use live::{MutationError, MutationReport, SnapshotCell, SnapshotGuard, Tombstones};
pub use persist::UnifiedSnapshot;
pub use pipeline::{BuildReport, BuiltGraph, IndexAlgorithm};
pub use scratch::{with_pooled, SearchScratch, VisitedSet};
pub use search::{beam_search, beam_search_with, SearchOutput, SearchStats};
pub use starling::{DeviceProfile, PageLayout, PagedIndex, PqPagedIndex};
pub use traits::{DistanceFn, FlatDistance, GraphError, GraphSearcher, VectorIndex};
pub use unified::UnifiedIndex;
pub use validate::InvariantViolation;
