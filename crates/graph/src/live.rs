//! Online-mutation primitives: tombstoned deletes and epoch-published
//! snapshots.
//!
//! The index family is refactored from owned-and-frozen to
//! snapshot-published-and-mutable (the FreshDiskANN shape):
//!
//! * **Readers** acquire an immutable snapshot through [`SnapshotCell::load`]
//!   — an `Arc` clone out of a briefly-locked slot, stamped with the
//!   publication epoch. A search holds its guard for the whole traversal;
//!   the writer can publish underneath without ever blocking it.
//! * **A single writer** (serialized by the owner's writer lock) applies
//!   inserts and deletes to a private copy and publishes the result
//!   atomically with [`SnapshotCell::publish`], bumping the epoch.
//! * **Deletes are tombstones** ([`Tombstones`]): a dead bitmap filtered at
//!   result-collection time — never mid-traversal, so dead vertices keep
//!   routing until compaction rewires the graph around them. A second
//!   bitmap records which dead ids compaction has already unlinked
//!   (`compacted ⊆ dead`); edges into *compacted* ids are a structural
//!   violation, while edges into merely-dead ids are legal routing.
//!
//! The epoch stamp extends the epoch-stamped [`crate::scratch::VisitedSet`]
//! idiom from per-search state to the index itself: a bumped counter makes
//! an entire generation of state stale at once, with no per-element sweep.

use mqa_vector::VecId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recovers the guard from a poisoned lock. A poisoned snapshot slot only
/// means another thread panicked mid-publish; the slot always holds a
/// coherent `Arc`, so readers and writers proceed with the inner value.
pub(crate) fn lock_ignore_poison<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deletion state for a fixed-id vertex population.
///
/// Ids are never reused: a removed object's slot stays allocated forever
/// (its vector remains in the store as routing ballast until compaction).
/// Two bitmaps track the lifecycle:
///
/// * `dead` — the object must never surface in results (filtered at
///   result-collection time);
/// * `compacted` — compaction has rewired the graph around this id; edges
///   into it are invalid from then on. Always a subset of `dead`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tombstones {
    dead: Vec<u64>,
    compacted: Vec<u64>,
    dead_count: usize,
    compacted_count: usize,
    n: usize,
}

impl Tombstones {
    /// All-live tombstone state over `n` ids.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            dead: vec![0; words],
            compacted: vec![0; words],
            dead_count: 0,
            compacted_count: 0,
            n,
        }
    }

    /// Extends the population to `n` ids (new ids are live). Shrinking is
    /// a no-op — ids are never reclaimed.
    pub fn grow(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        let words = n.div_ceil(64);
        self.dead.resize(words, 0);
        self.compacted.resize(words, 0);
        self.n = n;
    }

    /// Population size (live + dead).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Marks `id` dead. Returns whether the state changed (false for
    /// already-dead or out-of-range ids — deletion is idempotent).
    pub fn kill(&mut self, id: VecId) -> bool {
        let idx = id as usize;
        if idx >= self.n {
            return false;
        }
        let bit = 1u64 << (idx % 64);
        match self.dead.get_mut(idx / 64) {
            Some(word) if *word & bit == 0 => {
                *word |= bit;
                self.dead_count += 1;
                true
            }
            _ => false,
        }
    }

    /// Whether `id` is dead (out-of-range ids read as live).
    #[inline]
    pub fn is_dead(&self, id: VecId) -> bool {
        let idx = id as usize;
        let bit = 1u64 << (idx % 64);
        idx < self.n && self.dead.get(idx / 64).copied().unwrap_or(0) & bit != 0
    }

    /// Whether compaction has already rewired the graph around `id`.
    #[inline]
    pub fn is_compacted(&self, id: VecId) -> bool {
        let idx = id as usize;
        let bit = 1u64 << (idx % 64);
        idx < self.n && self.compacted.get(idx / 64).copied().unwrap_or(0) & bit != 0
    }

    /// Number of dead ids.
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Number of dead ids compaction has already rewired around.
    pub fn compacted_count(&self) -> usize {
        self.compacted_count
    }

    /// Dead ids compaction has not yet processed.
    pub fn pending_count(&self) -> usize {
        self.dead_count.saturating_sub(self.compacted_count)
    }

    /// Number of live (searchable) ids.
    pub fn live_count(&self) -> usize {
        self.n.saturating_sub(self.dead_count)
    }

    /// Fraction of the population that is dead.
    pub fn dead_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.dead_count as f64 / self.n as f64
        }
    }

    /// Fraction of the population that is dead but not yet compacted —
    /// the compaction trigger quantity (resets to zero after a pass).
    pub fn pending_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.pending_count() as f64 / self.n as f64
        }
    }

    /// Records that compaction has rewired the graph around every
    /// currently-dead id.
    pub fn mark_all_compacted(&mut self) {
        self.compacted.clone_from(&self.dead);
        self.compacted_count = self.dead_count;
    }

    /// Iterates over the dead ids in ascending order.
    pub fn iter_dead(&self) -> impl Iterator<Item = VecId> + '_ {
        (0..self.n as VecId).filter(|&id| self.is_dead(id))
    }

    /// Recounts both bitmaps and checks `compacted ⊆ dead`; returns the
    /// recomputed `(dead, compacted)` counts if consistent. Used by the
    /// structural validator against deserialized state.
    pub fn recount(&self) -> Option<(usize, usize)> {
        let mut dead = 0usize;
        let mut compacted = 0usize;
        for (w, (&d, &c)) in self.dead.iter().zip(self.compacted.iter()).enumerate() {
            if c & !d != 0 {
                return None; // compacted-but-not-dead bit
            }
            // Bits past `n` in the last word must be zero.
            let valid = valid_mask(self.n, w);
            if d & !valid != 0 || c & !valid != 0 {
                return None;
            }
            dead += d.count_ones() as usize;
            compacted += c.count_ones() as usize;
        }
        Some((dead, compacted))
    }
}

/// Mask of the bits of word `w` that correspond to ids `< n`.
fn valid_mask(n: usize, w: usize) -> u64 {
    let lo = w * 64;
    if n >= lo + 64 {
        u64::MAX
    } else if n <= lo {
        0
    } else {
        (1u64 << (n - lo)) - 1
    }
}

/// An atomically publishable, epoch-stamped snapshot slot.
///
/// Readers never hold the slot lock across a search: [`SnapshotCell::load`]
/// clones the `Arc` under a briefly-held mutex and releases it before
/// returning, so a publish contends with a reader only for the duration of
/// an `Arc` clone. The epoch is read under the same critical section,
/// guaranteeing the `(snapshot, epoch)` pair is consistent.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    slot: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Wraps `value` as epoch-0 published state.
    pub fn new(value: T) -> Self {
        Self {
            slot: Mutex::new(Arc::new(value)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Acquires the current snapshot and its epoch. The returned guard
    /// keeps the snapshot alive; later publishes do not affect it.
    pub fn load(&self) -> SnapshotGuard<T> {
        let slot = lock_ignore_poison(&self.slot);
        let snapshot = Arc::clone(&slot);
        let epoch = self.epoch.load(Ordering::Acquire);
        drop(slot);
        SnapshotGuard { snapshot, epoch }
    }

    /// Atomically replaces the published snapshot and bumps the epoch.
    /// Returns the new epoch. In-flight readers keep their old snapshot.
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = lock_ignore_poison(&self.slot);
        *slot = Arc::new(value);
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(slot);
        epoch
    }

    /// The current publication epoch (0 = initial build).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// A loaded snapshot pinned by a reader. Dereferences to the snapshot;
/// the underlying `Arc` keeps the generation alive even after newer
/// epochs are published.
#[derive(Debug)]
pub struct SnapshotGuard<T> {
    snapshot: Arc<T>,
    epoch: u64,
}

impl<T> SnapshotGuard<T> {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<T> {
        &self.snapshot
    }
}

impl<T> std::ops::Deref for SnapshotGuard<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.snapshot
    }
}

impl<T> Clone for SnapshotGuard<T> {
    fn clone(&self) -> Self {
        Self {
            snapshot: Arc::clone(&self.snapshot),
            epoch: self.epoch,
        }
    }
}

/// Why a mutation batch was rejected (the whole batch is rejected —
/// mutations are atomic at batch granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationError {
    /// An empty insert/delete batch (nothing to apply is an error so
    /// callers notice dropped plumbing).
    EmptyBatch,
    /// A delete named an id outside the population.
    IdOutOfRange {
        /// The offending id.
        id: VecId,
        /// The population size.
        n: usize,
    },
    /// An inserted object's modality count differs from the index schema.
    ArityMismatch {
        /// Modalities in the offered object.
        got: usize,
        /// Modalities the schema requires.
        want: usize,
    },
    /// An inserted object is missing a modality vector (online inserts
    /// must be complete; partial objects only arise as queries).
    IncompleteObject {
        /// The first absent modality.
        modality: usize,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyBatch => write!(f, "empty mutation batch"),
            Self::IdOutOfRange { id, n } => {
                write!(f, "id {id} out of range (population {n})")
            }
            Self::ArityMismatch { got, want } => {
                write!(f, "object has {got} modalities, schema requires {want}")
            }
            Self::IncompleteObject { modality } => {
                write!(f, "inserted object is missing modality {modality}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// What a successful mutation batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationReport {
    /// The epoch the new snapshot was published at.
    pub epoch: u64,
    /// Objects inserted or newly deleted by this batch.
    pub applied: usize,
    /// Whether this batch triggered a compaction pass.
    pub compacted: bool,
    /// Live objects after the batch.
    pub live: usize,
    /// Dead objects after the batch.
    pub dead: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn tombstones_track_kill_and_counts() {
        let mut t = Tombstones::new(130);
        assert_eq!(t.len(), 130);
        assert_eq!(t.live_count(), 130);
        assert!(t.kill(0));
        assert!(t.kill(64));
        assert!(t.kill(129));
        assert!(!t.kill(129), "second kill is a no-op");
        assert!(!t.kill(130), "out of range is a no-op");
        assert_eq!(t.dead_count(), 3);
        assert_eq!(t.live_count(), 127);
        assert!(t.is_dead(0) && t.is_dead(64) && t.is_dead(129));
        assert!(!t.is_dead(1) && !t.is_dead(130));
        assert_eq!(t.iter_dead().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn grow_keeps_dead_and_adds_live() {
        let mut t = Tombstones::new(10);
        t.kill(3);
        t.grow(200);
        assert_eq!(t.len(), 200);
        assert!(t.is_dead(3));
        assert!(!t.is_dead(150));
        assert_eq!(t.dead_count(), 1);
        t.grow(5); // shrink is a no-op
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn compaction_marks_current_dead_only() {
        let mut t = Tombstones::new(100);
        t.kill(1);
        t.kill(2);
        assert_eq!(t.pending_count(), 2);
        t.mark_all_compacted();
        assert_eq!(t.compacted_count(), 2);
        assert_eq!(t.pending_count(), 0);
        assert!(t.is_compacted(1));
        t.kill(3);
        assert!(!t.is_compacted(3), "new deaths start uncompacted");
        assert_eq!(t.pending_count(), 1);
        assert!((t.pending_fraction() - 0.01).abs() < 1e-12);
        assert!((t.dead_fraction() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn recount_validates_bitmaps() {
        let mut t = Tombstones::new(70);
        t.kill(5);
        t.kill(65);
        t.mark_all_compacted();
        assert_eq!(t.recount(), Some((2, 2)));
        // Corrupt: compacted bit without the dead bit.
        let mut bad = t.clone();
        bad.dead[0] = 0;
        assert_eq!(bad.recount(), None);
        // Corrupt: a bit past n.
        let mut bad = t;
        bad.dead[1] |= 1u64 << 20; // id 84 >= 70
        assert_eq!(bad.recount(), None);
    }

    #[test]
    fn snapshot_cell_publishes_epochs() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let g0 = cell.load();
        assert_eq!(g0.epoch(), 0);
        assert_eq!(*g0, vec![1, 2, 3]);
        let e1 = cell.publish(vec![4]);
        assert_eq!(e1, 1);
        assert_eq!(cell.epoch(), 1);
        // The old guard still sees its generation.
        assert_eq!(*g0, vec![1, 2, 3]);
        let g1 = cell.load();
        assert_eq!(g1.epoch(), 1);
        assert_eq!(*g1, vec![4]);
    }

    #[test]
    fn concurrent_loads_see_monotone_epochs() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let stop = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut last = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let g = cell.load();
                    assert!(g.epoch() >= last, "epoch went backwards");
                    // The value is the epoch it was published at: the
                    // (snapshot, epoch) pair must be mutually consistent
                    // modulo a concurrent publish between slot clone and
                    // epoch read (epoch can only be newer, never older).
                    assert!(*g.snapshot().as_ref() <= g.epoch());
                    last = g.epoch();
                }
            }));
        }
        for i in 1..=100u64 {
            let e = cell.publish(i);
            assert_eq!(e, i);
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.epoch(), 100);
    }

    #[test]
    fn mutation_errors_render() {
        for e in [
            MutationError::EmptyBatch,
            MutationError::IdOutOfRange { id: 9, n: 3 },
            MutationError::ArityMismatch { got: 1, want: 2 },
            MutationError::IncompleteObject { modality: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tombstones_serde_round_trip() {
        let mut t = Tombstones::new(90);
        t.kill(10);
        t.mark_all_compacted();
        t.kill(20);
        let j = serde_json::to_string(&t).unwrap();
        let back: Tombstones = serde_json::from_str(&j).unwrap();
        assert_eq!(t, back);
    }
}
