//! Structural invariant auditing for the navigation indexes.
//!
//! Every index variant carries a `validate` method returning the list of
//! [`InvariantViolation`]s it found (empty = structurally sound). The
//! `mqa-xtask audit` command builds each variant over a synthetic corpus and
//! fails if any validator reports a violation; the owning modules unit-test
//! the validators against deliberately corrupted structures.

use crate::adjacency::Adjacency;
use mqa_vector::VecId;
use std::fmt;

/// One structural invariant violation found by an index auditor.
///
/// Violations carry enough context to locate the broken structure without
/// re-running the audit under a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// An edge endpoint (or entry/cell member) outside `0..n`.
    IdOutOfRange {
        /// Which structure reported it (e.g. `"hnsw layer 2"`).
        context: String,
        /// The offending id.
        id: VecId,
        /// The valid id count.
        n: usize,
    },
    /// A vertex linking to itself.
    SelfLoop {
        /// Which structure reported it.
        context: String,
        /// The self-linking vertex.
        id: VecId,
    },
    /// The same neighbour listed twice in one adjacency list.
    DuplicateNeighbor {
        /// Which structure reported it.
        context: String,
        /// The vertex whose list is duplicated.
        id: VecId,
        /// The repeated neighbour.
        neighbor: VecId,
    },
    /// An adjacency list longer than the structure's degree cap.
    DegreeOverflow {
        /// Which structure reported it.
        context: String,
        /// The over-full vertex.
        id: VecId,
        /// Its actual degree.
        degree: usize,
        /// The structure's cap.
        cap: usize,
    },
    /// An HNSW layer-`level` edge pointing at a vertex absent from that
    /// layer (the neighbour has fewer populated layers).
    CrossLevelEdge {
        /// The vertex carrying the edge.
        vertex: VecId,
        /// The layer of the edge.
        level: usize,
        /// The target vertex.
        neighbor: VecId,
        /// How many layers the target actually has.
        neighbor_levels: usize,
    },
    /// A malformed entry point (out of range, missing layers, or empty).
    BadEntry {
        /// What is wrong with the entry.
        detail: String,
    },
    /// Reachability from the entry set below the structure's floor.
    LowReachability {
        /// Which structure reported it.
        context: String,
        /// Vertices reachable from the entry set.
        reached: usize,
        /// Total vertices.
        n: usize,
        /// The minimum acceptable fraction.
        floor: f64,
    },
    /// Cell member lists that do not exactly partition the vector ids.
    BrokenPartition {
        /// What is missing or duplicated.
        detail: String,
    },
    /// A vector stored in a cell other than its nearest centroid's.
    MisassignedCell {
        /// The misfiled vector.
        id: VecId,
        /// The cell it sits in.
        cell: usize,
        /// The cell it belongs to.
        nearest: usize,
    },
    /// A stored or derived size disagreeing with its authority.
    SizeMismatch {
        /// Which quantity disagrees.
        context: String,
        /// The authoritative value.
        expected: usize,
        /// The stored value.
        got: usize,
    },
    /// A non-finite number where the structure requires finite values.
    NonFinite {
        /// Where the NaN/infinity sits.
        context: String,
    },
    /// A recorded build diagnostic that disagrees with the structure it
    /// describes (stale or forged report).
    StaleReport {
        /// Which diagnostic disagrees.
        context: String,
        /// The value recomputed from the structure.
        expected: String,
        /// The recorded value.
        got: String,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IdOutOfRange { context, id, n } => {
                write!(f, "{context}: id {id} out of range (n = {n})")
            }
            Self::SelfLoop { context, id } => write!(f, "{context}: vertex {id} links to itself"),
            Self::DuplicateNeighbor {
                context,
                id,
                neighbor,
            } => {
                write!(f, "{context}: vertex {id} lists neighbour {neighbor} twice")
            }
            Self::DegreeOverflow {
                context,
                id,
                degree,
                cap,
            } => {
                write!(f, "{context}: vertex {id} has degree {degree} > cap {cap}")
            }
            Self::CrossLevelEdge {
                vertex,
                level,
                neighbor,
                neighbor_levels,
            } => write!(
                f,
                "hnsw: layer-{level} edge {vertex} -> {neighbor}, but {neighbor} \
                 only has {neighbor_levels} layer(s)"
            ),
            Self::BadEntry { detail } => write!(f, "bad entry point: {detail}"),
            Self::LowReachability {
                context,
                reached,
                n,
                floor,
            } => write!(
                f,
                "{context}: only {reached}/{n} vertices reachable from the entry \
                 set (floor {floor:.2})"
            ),
            Self::BrokenPartition { detail } => write!(f, "broken partition: {detail}"),
            Self::MisassignedCell { id, cell, nearest } => {
                write!(
                    f,
                    "ivf: vector {id} filed in cell {cell}, nearest centroid is {nearest}"
                )
            }
            Self::SizeMismatch {
                context,
                expected,
                got,
            } => {
                write!(f, "{context}: expected {expected}, got {got}")
            }
            Self::NonFinite { context } => write!(f, "{context}: non-finite value"),
            Self::StaleReport {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "stale report: {context} recorded as {got}, recomputed {expected}"
                )
            }
        }
    }
}

/// Shared adjacency-list checks: every endpoint in range, no self-loops, no
/// duplicate neighbours. Used by the flat-graph validators (`NavGraph`,
/// the Starling base layer) — HNSW runs the same checks per layer itself.
pub fn check_adjacency(context: &str, graph: &Adjacency) -> Vec<InvariantViolation> {
    let n = graph.len();
    let mut out = Vec::new();
    for v in 0..n as VecId {
        let mut seen = std::collections::HashSet::new();
        for &u in graph.neighbors(v) {
            if u as usize >= n {
                out.push(InvariantViolation::IdOutOfRange {
                    context: context.to_string(),
                    id: u,
                    n,
                });
            }
            if u == v {
                out.push(InvariantViolation::SelfLoop {
                    context: context.to_string(),
                    id: v,
                });
            }
            if !seen.insert(u) {
                out.push(InvariantViolation::DuplicateNeighbor {
                    context: context.to_string(),
                    id: v,
                    neighbor: u,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_adjacency_accepts_sound_graph() {
        let mut g = Adjacency::new(3);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(1, vec![0]);
        g.set_neighbors(2, vec![0, 1]);
        assert!(check_adjacency("test", &g).is_empty());
    }

    #[test]
    fn check_adjacency_flags_each_defect() {
        let mut g = Adjacency::new(3);
        g.lists_mut()[0] = vec![0]; // self-loop
        g.lists_mut()[1] = vec![2, 2]; // duplicate
        g.lists_mut()[2] = vec![9]; // out of range
        let v = check_adjacency("test", &g);
        assert!(v
            .iter()
            .any(|x| matches!(x, InvariantViolation::SelfLoop { id: 0, .. })));
        assert!(v.iter().any(|x| matches!(
            x,
            InvariantViolation::DuplicateNeighbor {
                id: 1,
                neighbor: 2,
                ..
            }
        )));
        assert!(v
            .iter()
            .any(|x| matches!(x, InvariantViolation::IdOutOfRange { id: 9, .. })));
        assert_eq!(v.len(), 3);
        // Every violation renders a human-readable line.
        for x in &v {
            assert!(!x.to_string().is_empty());
        }
    }
}
