//! Structural invariant auditing for the navigation indexes.
//!
//! Every index variant carries a `validate` method returning the list of
//! [`InvariantViolation`]s it found (empty = structurally sound). The
//! `mqa-xtask audit` command builds each variant over a synthetic corpus and
//! fails if any validator reports a violation; the owning modules unit-test
//! the validators against deliberately corrupted structures.

use crate::adjacency::Adjacency;
use crate::live::Tombstones;
use mqa_vector::VecId;
use std::fmt;

/// One structural invariant violation found by an index auditor.
///
/// Violations carry enough context to locate the broken structure without
/// re-running the audit under a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// An edge endpoint (or entry/cell member) outside `0..n`.
    IdOutOfRange {
        /// Which structure reported it (e.g. `"hnsw layer 2"`).
        context: String,
        /// The offending id.
        id: VecId,
        /// The valid id count.
        n: usize,
    },
    /// A vertex linking to itself.
    SelfLoop {
        /// Which structure reported it.
        context: String,
        /// The self-linking vertex.
        id: VecId,
    },
    /// The same neighbour listed twice in one adjacency list.
    DuplicateNeighbor {
        /// Which structure reported it.
        context: String,
        /// The vertex whose list is duplicated.
        id: VecId,
        /// The repeated neighbour.
        neighbor: VecId,
    },
    /// An adjacency list longer than the structure's degree cap.
    DegreeOverflow {
        /// Which structure reported it.
        context: String,
        /// The over-full vertex.
        id: VecId,
        /// Its actual degree.
        degree: usize,
        /// The structure's cap.
        cap: usize,
    },
    /// An HNSW layer-`level` edge pointing at a vertex absent from that
    /// layer (the neighbour has fewer populated layers).
    CrossLevelEdge {
        /// The vertex carrying the edge.
        vertex: VecId,
        /// The layer of the edge.
        level: usize,
        /// The target vertex.
        neighbor: VecId,
        /// How many layers the target actually has.
        neighbor_levels: usize,
    },
    /// A malformed entry point (out of range, missing layers, or empty).
    BadEntry {
        /// What is wrong with the entry.
        detail: String,
    },
    /// Reachability from the entry set below the structure's floor.
    LowReachability {
        /// Which structure reported it.
        context: String,
        /// Vertices reachable from the entry set.
        reached: usize,
        /// Total vertices.
        n: usize,
        /// The minimum acceptable fraction.
        floor: f64,
    },
    /// Cell member lists that do not exactly partition the vector ids.
    BrokenPartition {
        /// What is missing or duplicated.
        detail: String,
    },
    /// A vector stored in a cell other than its nearest centroid's.
    MisassignedCell {
        /// The misfiled vector.
        id: VecId,
        /// The cell it sits in.
        cell: usize,
        /// The cell it belongs to.
        nearest: usize,
    },
    /// A stored or derived size disagreeing with its authority.
    SizeMismatch {
        /// Which quantity disagrees.
        context: String,
        /// The authoritative value.
        expected: usize,
        /// The stored value.
        got: usize,
    },
    /// A non-finite number where the structure requires finite values.
    NonFinite {
        /// Where the NaN/infinity sits.
        context: String,
    },
    /// A recorded build diagnostic that disagrees with the structure it
    /// describes (stale or forged report).
    StaleReport {
        /// Which diagnostic disagrees.
        context: String,
        /// The value recomputed from the structure.
        expected: String,
        /// The recorded value.
        got: String,
    },
    /// A tombstone count disagreeing with its bitmap (corrupted or forged
    /// deletion state).
    DeadCountMismatch {
        /// Which count disagrees.
        context: String,
        /// The recorded count.
        recorded: usize,
        /// The count recomputed from the bitmap.
        actual: usize,
    },
    /// An id marked compacted without being dead (`compacted ⊆ dead` is
    /// the tombstone lifecycle invariant).
    RetiredNotDead {
        /// Which structure reported it.
        context: String,
        /// The offending id.
        id: VecId,
    },
    /// An edge into an id that compaction already rewired around. Edges
    /// into merely-dead ids are legal routing; edges into *compacted* ids
    /// mean the rewiring missed one or the graph was mutated afterwards.
    EdgeIntoRetired {
        /// Which structure reported it.
        context: String,
        /// The edge source.
        from: VecId,
        /// The compacted-away target.
        to: VecId,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IdOutOfRange { context, id, n } => {
                write!(f, "{context}: id {id} out of range (n = {n})")
            }
            Self::SelfLoop { context, id } => write!(f, "{context}: vertex {id} links to itself"),
            Self::DuplicateNeighbor {
                context,
                id,
                neighbor,
            } => {
                write!(f, "{context}: vertex {id} lists neighbour {neighbor} twice")
            }
            Self::DegreeOverflow {
                context,
                id,
                degree,
                cap,
            } => {
                write!(f, "{context}: vertex {id} has degree {degree} > cap {cap}")
            }
            Self::CrossLevelEdge {
                vertex,
                level,
                neighbor,
                neighbor_levels,
            } => write!(
                f,
                "hnsw: layer-{level} edge {vertex} -> {neighbor}, but {neighbor} \
                 only has {neighbor_levels} layer(s)"
            ),
            Self::BadEntry { detail } => write!(f, "bad entry point: {detail}"),
            Self::LowReachability {
                context,
                reached,
                n,
                floor,
            } => write!(
                f,
                "{context}: only {reached}/{n} vertices reachable from the entry \
                 set (floor {floor:.2})"
            ),
            Self::BrokenPartition { detail } => write!(f, "broken partition: {detail}"),
            Self::MisassignedCell { id, cell, nearest } => {
                write!(
                    f,
                    "ivf: vector {id} filed in cell {cell}, nearest centroid is {nearest}"
                )
            }
            Self::SizeMismatch {
                context,
                expected,
                got,
            } => {
                write!(f, "{context}: expected {expected}, got {got}")
            }
            Self::NonFinite { context } => write!(f, "{context}: non-finite value"),
            Self::StaleReport {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "stale report: {context} recorded as {got}, recomputed {expected}"
                )
            }
            Self::DeadCountMismatch {
                context,
                recorded,
                actual,
            } => write!(
                f,
                "{context}: recorded {recorded} dead, bitmap holds {actual}"
            ),
            Self::RetiredNotDead { context, id } => {
                write!(f, "{context}: id {id} marked compacted but not dead")
            }
            Self::EdgeIntoRetired { context, from, to } => {
                write!(f, "{context}: edge {from} -> {to} into compacted-away id")
            }
        }
    }
}

/// Shared adjacency-list checks: every endpoint in range, no self-loops, no
/// duplicate neighbours. Used by the flat-graph validators (`NavGraph`,
/// the Starling base layer) — HNSW runs the same checks per layer itself.
pub fn check_adjacency(context: &str, graph: &Adjacency) -> Vec<InvariantViolation> {
    let n = graph.len();
    let mut out = Vec::new();
    for v in 0..n as VecId {
        let mut seen = std::collections::HashSet::new();
        for &u in graph.neighbors(v) {
            if u as usize >= n {
                out.push(InvariantViolation::IdOutOfRange {
                    context: context.to_string(),
                    id: u,
                    n,
                });
            }
            if u == v {
                out.push(InvariantViolation::SelfLoop {
                    context: context.to_string(),
                    id: v,
                });
            }
            if !seen.insert(u) {
                out.push(InvariantViolation::DuplicateNeighbor {
                    context: context.to_string(),
                    id: v,
                    neighbor: u,
                });
            }
        }
    }
    out
}

/// Tombstone lifecycle checks: the population matches the structure it
/// annotates, the recorded counts match the bitmaps, every compacted id is
/// dead, and no bitmap bit falls outside the population. Used by the
/// snapshot validator against (possibly deserialized) deletion state.
pub fn check_tombstones(context: &str, n: usize, tomb: &Tombstones) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if tomb.len() != n {
        out.push(InvariantViolation::SizeMismatch {
            context: format!("{context} tombstone population"),
            expected: n,
            got: tomb.len(),
        });
    }
    let mut dead = 0usize;
    let mut compacted = 0usize;
    for id in 0..tomb.len() as VecId {
        if tomb.is_dead(id) {
            dead += 1;
        }
        if tomb.is_compacted(id) {
            compacted += 1;
            if !tomb.is_dead(id) {
                out.push(InvariantViolation::RetiredNotDead {
                    context: context.to_string(),
                    id,
                });
            }
        }
    }
    if dead != tomb.dead_count() {
        out.push(InvariantViolation::DeadCountMismatch {
            context: format!("{context} dead count"),
            recorded: tomb.dead_count(),
            actual: dead,
        });
    }
    if compacted != tomb.compacted_count() {
        out.push(InvariantViolation::DeadCountMismatch {
            context: format!("{context} compacted count"),
            recorded: tomb.compacted_count(),
            actual: compacted,
        });
    }
    // Bits past the population are invisible to is_dead/is_compacted;
    // recount() sees the raw words.
    if out.is_empty() && tomb.recount().is_none() {
        out.push(InvariantViolation::DeadCountMismatch {
            context: format!("{context} tombstone bitmap"),
            recorded: tomb.dead_count(),
            actual: dead,
        });
    }
    out
}

/// Flags every edge pointing into an id compaction already rewired around.
/// Edges into merely-dead (uncompacted) ids are legal — they keep routing
/// until the next compaction pass.
pub fn check_edges_live(
    context: &str,
    edges: impl Iterator<Item = (VecId, VecId)>,
    tomb: &Tombstones,
) -> Vec<InvariantViolation> {
    edges
        .filter(|&(_, to)| tomb.is_compacted(to))
        .map(|(from, to)| InvariantViolation::EdgeIntoRetired {
            context: context.to_string(),
            from,
            to,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_adjacency_accepts_sound_graph() {
        let mut g = Adjacency::new(3);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(1, vec![0]);
        g.set_neighbors(2, vec![0, 1]);
        assert!(check_adjacency("test", &g).is_empty());
    }

    #[test]
    fn check_adjacency_flags_each_defect() {
        let mut g = Adjacency::new(3);
        g.lists_mut()[0] = vec![0]; // self-loop
        g.lists_mut()[1] = vec![2, 2]; // duplicate
        g.lists_mut()[2] = vec![9]; // out of range
        let v = check_adjacency("test", &g);
        assert!(v
            .iter()
            .any(|x| matches!(x, InvariantViolation::SelfLoop { id: 0, .. })));
        assert!(v.iter().any(|x| matches!(
            x,
            InvariantViolation::DuplicateNeighbor {
                id: 1,
                neighbor: 2,
                ..
            }
        )));
        assert!(v
            .iter()
            .any(|x| matches!(x, InvariantViolation::IdOutOfRange { id: 9, .. })));
        assert_eq!(v.len(), 3);
        // Every violation renders a human-readable line.
        for x in &v {
            assert!(!x.to_string().is_empty());
        }
    }

    /// Deserializes a `Tombstones` from raw parts — the only way
    /// corrupted deletion state can arise in practice (fields are
    /// private; deserialization is the trust boundary).
    fn tombstones_from_parts(
        dead: &[u64],
        compacted: &[u64],
        dead_count: usize,
        compacted_count: usize,
        n: usize,
    ) -> Tombstones {
        let arr = |a: &[u64]| {
            let items: Vec<String> = a.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        };
        let j = format!(
            "{{\"dead\":{},\"compacted\":{},\"dead_count\":{dead_count},\
             \"compacted_count\":{compacted_count},\"n\":{n}}}",
            arr(dead),
            arr(compacted),
        );
        serde_json::from_str(&j).unwrap()
    }

    fn sound_tombstones() -> Tombstones {
        let mut t = Tombstones::new(100);
        t.kill(3);
        t.kill(64);
        t.mark_all_compacted();
        t.kill(70);
        t
    }

    // The serialized words of `sound_tombstones`: dead = {3, 64, 70},
    // compacted = {3, 64}.
    const DEAD_W0: u64 = 1 << 3;
    const DEAD_W1: u64 = (1 << 0) | (1 << 6);
    const COMP_W0: u64 = 1 << 3;
    const COMP_W1: u64 = 1 << 0;

    #[test]
    fn check_tombstones_accepts_sound_state() {
        let t = sound_tombstones();
        assert!(check_tombstones("test", 100, &t).is_empty());
        // The round-tripped raw parts reproduce the same sound state.
        let same = tombstones_from_parts(&[DEAD_W0, DEAD_W1], &[COMP_W0, COMP_W1], 3, 2, 100);
        assert_eq!(same, t);
    }

    #[test]
    fn check_tombstones_flags_each_defect() {
        use InvariantViolation as V;
        let t = sound_tombstones();

        // Population mismatch against the annotated structure.
        assert!(check_tombstones("test", 90, &t)
            .iter()
            .any(|x| matches!(x, V::SizeMismatch { .. })));

        // Forged dead count.
        let bad = tombstones_from_parts(&[DEAD_W0, DEAD_W1], &[COMP_W0, COMP_W1], 7, 2, 100);
        assert!(check_tombstones("test", 100, &bad).iter().any(|x| matches!(
            x,
            V::DeadCountMismatch {
                recorded: 7,
                actual: 3,
                ..
            }
        )));

        // Forged compacted count.
        let bad = tombstones_from_parts(&[DEAD_W0, DEAD_W1], &[COMP_W0, COMP_W1], 3, 9, 100);
        assert!(check_tombstones("test", 100, &bad)
            .iter()
            .any(|x| matches!(x, V::DeadCountMismatch { recorded: 9, .. })));

        // Compacted bit without the dead bit: clear id 3 from the dead
        // bitmap (leaving {64, 70}) while compacted still holds {3, 64}.
        // Counts desynchronize too, but the subset violation must surface
        // specifically.
        let bad = tombstones_from_parts(&[0, DEAD_W1], &[COMP_W0, COMP_W1], 2, 2, 100);
        assert!(check_tombstones("test", 100, &bad)
            .iter()
            .any(|x| matches!(x, V::RetiredNotDead { id: 3, .. })));

        // A dead bit past the population (id 120 >= 100) is invisible to
        // per-id reads but recount() sees the raw word.
        let bad = tombstones_from_parts(
            &[DEAD_W0, DEAD_W1 | (1 << 56)],
            &[COMP_W0, COMP_W1],
            3,
            2,
            100,
        );
        assert!(!check_tombstones("test", 100, &bad).is_empty());
    }

    #[test]
    fn check_edges_live_flags_only_compacted_targets() {
        use InvariantViolation as V;
        let mut t = Tombstones::new(10);
        t.kill(2);
        t.mark_all_compacted();
        t.kill(5); // dead but not compacted — edges into it are legal
        let edges = vec![(0u32, 1u32), (0, 2), (3, 5), (4, 2)];
        let v = check_edges_live("test", edges.into_iter(), &t);
        assert_eq!(v.len(), 2);
        assert!(v
            .iter()
            .any(|x| matches!(x, V::EdgeIntoRetired { from: 0, to: 2, .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, V::EdgeIntoRetired { from: 4, to: 2, .. })));
    }
}
