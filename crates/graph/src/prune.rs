//! Neighbour-selection (edge pruning) strategies.
//!
//! This is the pipeline's third stage and where the navigation-graph family
//! members differ most: given a candidate pool around a vertex, choose a
//! bounded, *diverse* out-neighbour set. Diversity (not keeping two
//! candidates that cover the same direction) is what lets greedy routing
//! escape local neighbourhoods with few hops.

use mqa_vector::{Candidate, Metric, VecId, VectorStore};

/// Keeps the `r` nearest candidates — no diversification. The baseline
/// selection (and what a raw kNN graph amounts to).
pub fn select_nearest(mut candidates: Vec<Candidate>, r: usize) -> Vec<VecId> {
    candidates.sort_unstable();
    candidates.dedup_by_key(|c| c.id);
    candidates.into_iter().take(r).map(|c| c.id).collect()
}

/// The α-robust pruning rule of Vamana/DiskANN; with `alpha = 1.0` it is
/// the MRNG rule NSG uses.
///
/// Repeatedly commit the closest remaining candidate `p`, then discard
/// every remaining candidate `q` with `alpha · d(p, q) <= d(v, q)` — `q` is
/// reachable *through* `p`, so the direct edge is redundant. Larger `alpha`
/// keeps more long edges (denser graph, easier routing, more memory).
///
/// # Panics
/// Panics if `alpha < 1.0` (would prune the closest candidate's own
/// certificate) or `r == 0`.
pub fn robust_prune(
    store: &VectorStore,
    metric: Metric,
    v: VecId,
    mut candidates: Vec<Candidate>,
    alpha: f32,
    r: usize,
) -> Vec<VecId> {
    assert!(alpha >= 1.0, "robust prune requires alpha >= 1.0");
    assert!(r > 0, "robust prune requires r >= 1");
    candidates.sort_unstable();
    candidates.dedup_by_key(|c| c.id);
    candidates.retain(|c| c.id != v);

    let mut selected: Vec<VecId> = Vec::with_capacity(r);
    let mut alive = vec![true; candidates.len()];
    for i in 0..candidates.len() {
        // INVARIANT: alive has one flag per candidate and i < len.
        let p = candidates[i];
        if !alive[i] {
            continue;
        }
        selected.push(p.id);
        if selected.len() == r {
            break;
        }
        let pv = store.get(p.id);
        for (j, q) in candidates.iter().enumerate().skip(i + 1) {
            // INVARIANT: j enumerates candidates, so j < alive.len().
            if alive[j] && alpha * metric.distance(pv, store.get(q.id)) <= q.dist {
                alive[j] = false;
            }
        }
    }
    selected
}

/// HNSW's `SELECT-NEIGHBORS-HEURISTIC`: scan candidates by increasing
/// distance; keep one only if it is closer to `v` than to every neighbour
/// already kept.
pub fn hnsw_heuristic(
    store: &VectorStore,
    metric: Metric,
    v: VecId,
    mut candidates: Vec<Candidate>,
    m: usize,
) -> Vec<VecId> {
    assert!(m > 0, "heuristic selection requires m >= 1");
    candidates.sort_unstable();
    candidates.dedup_by_key(|c| c.id);
    candidates.retain(|c| c.id != v);

    let mut selected: Vec<VecId> = Vec::with_capacity(m);
    for c in &candidates {
        if selected.len() == m {
            break;
        }
        let cv = store.get(c.id);
        let dominated = selected
            .iter()
            .any(|&s| metric.distance(cv, store.get(s)) < c.dist);
        if !dominated {
            selected.push(c.id);
        }
    }
    // HNSW keeps discarded candidates as fallback to fill up to m.
    if selected.len() < m {
        for c in &candidates {
            if selected.len() == m {
                break;
            }
            if !selected.contains(&c.id) {
                selected.push(c.id);
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line: 0,1,2,...; candidate distances from v=0.
    fn line_store(n: usize) -> VectorStore {
        let mut s = VectorStore::new(1);
        for i in 0..n {
            s.push(&[i as f32]);
        }
        s
    }

    fn cands(store: &VectorStore, v: VecId, ids: &[VecId]) -> Vec<Candidate> {
        ids.iter()
            .map(|&u| Candidate::new(u, Metric::L2.distance(store.get(v), store.get(u))))
            .collect()
    }

    #[test]
    fn select_nearest_takes_closest() {
        let store = line_store(10);
        let c = cands(&store, 0, &[5, 1, 9, 2]);
        assert_eq!(select_nearest(c, 2), vec![1, 2]);
    }

    #[test]
    fn select_nearest_dedups() {
        let store = line_store(5);
        let mut c = cands(&store, 0, &[1, 2]);
        c.extend(cands(&store, 0, &[1]));
        assert_eq!(select_nearest(c, 5), vec![1, 2]);
    }

    #[test]
    fn robust_prune_drops_collinear() {
        // On a line from v=0: candidates 1,2,3. 1 covers 2 and 3
        // (d(1,2)=1 <= d(0,2)=4), so only 1 survives with alpha=1.
        let store = line_store(4);
        let c = cands(&store, 0, &[1, 2, 3]);
        assert_eq!(robust_prune(&store, Metric::L2, 0, c, 1.0, 3), vec![1]);
    }

    #[test]
    fn robust_prune_keeps_diverse_directions() {
        // v at origin; candidates at +1 and -1 cannot cover each other.
        let mut store = VectorStore::new(1);
        store.push(&[0.0]); // v = 0
        store.push(&[1.0]);
        store.push(&[-1.0]);
        let c = cands(&store, 0, &[1, 2]);
        let sel = robust_prune(&store, Metric::L2, 0, c, 1.0, 4);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn higher_alpha_keeps_more_edges() {
        let store = line_store(6);
        let c = cands(&store, 0, &[1, 2, 3, 4, 5]);
        let strict = robust_prune(&store, Metric::L2, 0, c.clone(), 1.0, 5);
        let loose = robust_prune(&store, Metric::L2, 0, c, 2.0, 5);
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn robust_prune_respects_degree_cap() {
        let mut store = VectorStore::new(2);
        store.push(&[0.0, 0.0]);
        // diverse directions so nothing is pruned by the rule itself
        store.push(&[1.0, 0.0]);
        store.push(&[-1.0, 0.0]);
        store.push(&[0.0, 1.0]);
        store.push(&[0.0, -1.0]);
        let c = cands(&store, 0, &[1, 2, 3, 4]);
        assert_eq!(robust_prune(&store, Metric::L2, 0, c, 1.0, 2).len(), 2);
    }

    #[test]
    fn robust_prune_excludes_self() {
        let store = line_store(3);
        let c = cands(&store, 0, &[0, 1]);
        assert_eq!(robust_prune(&store, Metric::L2, 0, c, 1.0, 3), vec![1]);
    }

    #[test]
    #[should_panic(expected = "alpha >= 1.0")]
    fn alpha_below_one_panics() {
        let store = line_store(2);
        robust_prune(&store, Metric::L2, 0, vec![], 0.5, 1);
    }

    #[test]
    fn heuristic_prefers_diversity_then_fills() {
        // v=0; candidates 1 (near), 2 (collinear behind 1), -1 direction.
        let mut store = VectorStore::new(1);
        store.push(&[0.0]);
        store.push(&[1.0]);
        store.push(&[2.0]);
        store.push(&[-1.5]);
        let c = cands(&store, 0, &[1, 2, 3]);
        let sel = hnsw_heuristic(&store, Metric::L2, 0, c, 3);
        // 1 kept; 2 dominated by 1 but refilled afterwards; 3 kept (diverse)
        assert_eq!(sel[0], 1);
        assert!(sel.contains(&3));
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn heuristic_cap() {
        let store = line_store(10);
        let c = cands(&store, 0, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(hnsw_heuristic(&store, Metric::L2, 0, c, 2).len(), 2);
    }
}
