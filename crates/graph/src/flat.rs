//! Exhaustive (brute-force) search: the exactness baseline.
//!
//! Used three ways: as the ground-truth oracle for recall measurements, as
//! the "no index" configuration of the panel, and — because it drives every
//! candidate through [`DistanceFn::eval`] with the running top-k bound — as
//! the cleanest demonstration of incremental-scanning savings (E8).

use crate::scratch::SearchScratch;
use crate::search::{SearchOutput, SearchStats};
use crate::traits::{DistanceFn, GraphSearcher};
use mqa_vector::{Candidate, TopK, VecId};

/// Brute-force searcher over `n` stored vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FlatSearcher {
    n: usize,
}

impl FlatSearcher {
    /// Creates a searcher over a population of `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl GraphSearcher for FlatSearcher {
    fn search_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        _ef: usize,
        _scratch: &mut SearchScratch,
    ) -> SearchOutput {
        // The exhaustive scan keeps no visited state; the scratch is
        // accepted (and ignored) so flat search slots into the same
        // worker-pool plumbing as the graph indexes.
        assert!(k > 0, "search requires k >= 1");
        let mut stats = SearchStats::default();
        let mut top = TopK::new(k);
        for id in 0..self.n as VecId {
            match dist.eval(id, top.bound()) {
                Some(d) => {
                    stats.evals += 1;
                    top.offer(Candidate::new(id, d));
                }
                None => stats.pruned += 1,
            }
        }
        SearchOutput {
            results: top.into_sorted(),
            stats,
        }
    }

    fn len(&self) -> usize {
        self.n
    }

    fn avg_degree(&self) -> f64 {
        0.0
    }

    fn describe(&self) -> String {
        format!("flat exhaustive scan over {} vectors", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FlatDistance;
    use mqa_vector::{Metric, VectorStore};

    #[test]
    fn finds_exact_nearest() {
        let mut store = VectorStore::new(1);
        for x in [5.0f32, 1.0, 3.0, 2.0, 4.0] {
            store.push(&[x]);
        }
        let q = [2.2f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2).unwrap();
        let out = FlatSearcher::new(5).search(&mut d, 2, 0);
        assert_eq!(out.ids(), vec![3, 2]); // 2.0 then 3.0
        assert_eq!(out.stats.evals, 5);
    }

    #[test]
    fn k_exceeding_population() {
        let mut store = VectorStore::new(1);
        store.push(&[0.0]);
        let q = [1.0f32];
        let mut d = FlatDistance::new(&store, &q, Metric::L2).unwrap();
        let out = FlatSearcher::new(1).search(&mut d, 5, 0);
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn describe_mentions_flat() {
        assert!(FlatSearcher::new(3).describe().contains("flat"));
        assert_eq!(FlatSearcher::new(3).avg_degree(), 0.0);
        assert_eq!(FlatSearcher::new(3).len(), 3);
    }
}
