//! Hierarchical Navigable Small World graphs.
//!
//! A faithful HNSW implementation: geometric level assignment, greedy
//! descent through the upper layers, beam search with
//! `SELECT-NEIGHBORS-HEURISTIC` diversification at insertion, bidirectional
//! linking with overflow re-pruning. Built directly (its layered structure
//! does not flatten into the five-stage pipeline) but exposed through the
//! same [`GraphSearcher`] interface as the pipeline-built graphs, which is
//! what makes it selectable from the configuration panel.

use crate::live::Tombstones;
use crate::prune::hnsw_heuristic;
use crate::scratch::{SearchScratch, VisitedSet};
use crate::search::{SearchOutput, SearchStats};
use crate::traits::{DistanceFn, FlatDistance, GraphSearcher};
use crate::validate::InvariantViolation;
use mqa_rng::StdRng;
use mqa_vector::{Candidate, Metric, MinCandidate, TopK, VecId, VectorStore};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// HNSW hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HnswParams {
    /// Target degree of upper layers (`M`); layer 0 allows `2·M`.
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Level-assignment RNG seed.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            seed: 0,
        }
    }
}

/// A built HNSW index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hnsw {
    /// `links[v][level]` = out-neighbours of `v` at `level`.
    links: Vec<Vec<Vec<VecId>>>,
    entry: VecId,
    max_level: usize,
    params: HnswParams,
}

impl Hnsw {
    /// Builds the index over every vector of `store`.
    ///
    /// # Panics
    /// Panics if the store is empty or `m == 0`.
    pub fn build(store: &VectorStore, metric: Metric, params: &HnswParams) -> Self {
        assert!(!store.is_empty(), "HNSW over an empty store");
        assert!(params.m > 0, "HNSW requires m >= 1");
        let n = store.len();
        let mut hnsw = Hnsw {
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            params: *params,
        };
        let mut visited = VisitedSet::new(n);
        for _ in 0..n {
            hnsw.insert_next(store, metric, &mut visited);
        }
        hnsw
    }

    /// Inserts the next not-yet-indexed vector of `store`.
    ///
    /// The vertex inserted is always `self.len()`; its level derives
    /// deterministically from `(seed, id)`, so batch builds and incremental
    /// growth produce identical indexes.
    ///
    /// # Panics
    /// Panics if the store holds no vector beyond the indexed population.
    fn insert_next(&mut self, store: &VectorStore, metric: Metric, visited: &mut VisitedSet) {
        let v = self.links.len() as VecId;
        assert!(
            (v as usize) < store.len(),
            "no unindexed vector: index covers {} of {}",
            self.links.len(),
            store.len()
        );
        if visited.len() < store.len() {
            visited.grow(store.len());
        }
        let level_mult = 1.0 / (self.params.m as f64).ln().max(f64::EPSILON);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x9A55 ^ (v as u64) << 17);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let level = (-u.ln() * level_mult).floor() as usize;
        self.links.push(vec![Vec::new(); level + 1]);
        if v == 0 {
            self.max_level = level;
            self.entry = 0;
            return;
        }
        self.insert(store, metric, v, level, visited);
    }

    /// Appends every not-yet-indexed vector of `store` — incremental growth
    /// after a batch build. HNSW is the family member with natural
    /// *incremental* construction, which is how MQA can grow a knowledge
    /// base without a rebuild: push new objects to the store, then call
    /// this. Batch building and incremental growth produce identical
    /// indexes (levels derive from `(seed, id)`).
    pub fn extend_from(&mut self, store: &VectorStore, metric: Metric) {
        let mut visited = VisitedSet::new(store.len());
        while self.links.len() < store.len() {
            self.insert_next(store, metric, &mut visited);
        }
    }

    fn insert(
        &mut self,
        store: &VectorStore,
        metric: Metric,
        v: VecId,
        level: usize,
        visited: &mut VisitedSet,
    ) {
        let mut dist = FlatDistance::for_vertex(store, v, metric);
        let mut ep = Candidate::new(self.entry, dist.exact(self.entry));

        // Greedy descent through layers above the node's level.
        let mut lc = self.max_level;
        while lc > level {
            ep = self.greedy_step(&mut dist, ep, lc);
            lc -= 1;
        }

        // Beam insertion from min(level, max_level) down to 0.
        for lc in (0..=level.min(self.max_level)).rev() {
            let cands =
                self.search_layer(&mut dist, &[ep], lc, self.params.ef_construction, visited);
            let cap = if lc == 0 {
                self.params.m * 2
            } else {
                self.params.m
            };
            let selected = hnsw_heuristic(store, metric, v, cands.clone(), cap);
            for &u in &selected {
                // INVARIANT: v and every candidate u are inserted vertices
                // whose level lists extend past lc (selection is level-aware).
                self.links[v as usize][lc].push(u);
                let ul = &mut self.links[u as usize][lc];
                if !ul.contains(&v) {
                    ul.push(v);
                    if ul.len() > cap {
                        // Overflow: re-prune u's neighbours.
                        let uv = store.get(u);
                        let pool: Vec<Candidate> = ul
                            .iter()
                            .map(|&w| Candidate::new(w, metric.distance(uv, store.get(w))))
                            .collect();
                        // INVARIANT: u's level list reaches lc (checked on entry).
                        self.links[u as usize][lc] = hnsw_heuristic(store, metric, u, pool, cap);
                    }
                }
            }
            // Best candidate of this layer seeds the next one down.
            if let Some(best) = cands.first() {
                ep = *best;
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = v;
        }
    }

    /// One greedy (ef = 1) routing step through layer `lc`.
    fn greedy_step(&self, dist: &mut dyn DistanceFn, mut ep: Candidate, lc: usize) -> Candidate {
        loop {
            let mut improved = false;
            for &u in self.neighbors(ep.id, lc) {
                let d = dist.exact(u);
                if d < ep.dist {
                    ep = Candidate::new(u, d);
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    fn neighbors(&self, v: VecId, level: usize) -> &[VecId] {
        // An out-of-range id or level reads as "no neighbours" — the beam
        // dead-ends instead of panicking mid-search.
        self.links
            .get(v as usize)
            .and_then(|levels| levels.get(level))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Beam search restricted to one layer; returns candidates ascending.
    fn search_layer(
        &self,
        dist: &mut dyn DistanceFn,
        entries: &[Candidate],
        level: usize,
        ef: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Candidate> {
        visited.next_epoch();
        let mut results = TopK::new(ef);
        let mut frontier: BinaryHeap<MinCandidate> = BinaryHeap::new();
        for &e in entries {
            if visited.insert(e.id) {
                results.offer(e);
                frontier.push(MinCandidate(e));
            }
        }
        while let Some(MinCandidate(c)) = frontier.pop() {
            if c.dist > results.bound() {
                break;
            }
            for &u in self.neighbors(c.id, level) {
                if !visited.insert(u) {
                    continue;
                }
                if let Some(d) = dist.eval(u, results.bound()) {
                    let cand = Candidate::new(u, d);
                    if results.offer(cand) {
                        frontier.push(MinCandidate(cand));
                    }
                }
            }
        }
        results.into_sorted()
    }

    /// Highest populated layer.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Base-layer adjacency as a flat [`crate::Adjacency`] (used by the
    /// Starling layout, which pages the base layer).
    pub fn base_layer(&self) -> crate::adjacency::Adjacency {
        let mut g = crate::adjacency::Adjacency::new(self.links.len());
        for v in 0..self.links.len() as VecId {
            g.set_neighbors(v, self.neighbors(v, 0).to_vec());
        }
        g
    }

    /// The current global entry vertex.
    pub fn entry(&self) -> VecId {
        self.entry
    }

    /// Visits every directed edge of every layer as `(level, from, to)`.
    /// Feeds the tombstone-aware structural validator.
    pub fn for_each_edge(&self, mut f: impl FnMut(usize, VecId, VecId)) {
        for (vi, layers) in self.links.iter().enumerate() {
            for (level, nb) in layers.iter().enumerate() {
                for &u in nb {
                    f(level, vi as VecId, u);
                }
            }
        }
    }

    /// Rewires every layer around the dead vertices of `tomb`: a live
    /// vertex with dead neighbours splices in those neighbours' live
    /// same-layer neighbours (re-pruned through the construction
    /// heuristic, so the degree caps hold); dead vertices other than the
    /// entry are unlinked entirely; a dead entry keeps live-spliced
    /// out-edges so it can continue to seed searches. After this pass no
    /// edge points *into* a dead vertex.
    pub fn compact(&mut self, store: &VectorStore, metric: Metric, tomb: &Tombstones) {
        let entry = self.entry;
        let m = self.params.m;
        let old = self.links.clone();
        for (vi, layers) in self.links.iter_mut().enumerate() {
            let v = vi as VecId;
            let dead_v = tomb.is_dead(v);
            for (level, nb) in layers.iter_mut().enumerate() {
                if dead_v && v != entry {
                    nb.clear();
                    continue;
                }
                if !nb.iter().any(|&u| tomb.is_dead(u)) {
                    continue;
                }
                let vv = store.get(v);
                let mut seen = std::collections::HashSet::new();
                let mut pool: Vec<Candidate> = Vec::new();
                for &u in nb.iter() {
                    if tomb.is_dead(u) {
                        // Splice: the dead neighbour's live neighbours at
                        // the same layer keep v connected past the hole.
                        let through = old
                            .get(u as usize)
                            .and_then(|ls| ls.get(level))
                            .map(Vec::as_slice)
                            .unwrap_or(&[]);
                        for &w in through {
                            if w != v && !tomb.is_dead(w) && seen.insert(w) {
                                pool.push(Candidate::new(w, metric.distance(vv, store.get(w))));
                            }
                        }
                    } else if seen.insert(u) {
                        pool.push(Candidate::new(u, metric.distance(vv, store.get(u))));
                    }
                }
                let cap = if level == 0 { m * 2 } else { m };
                *nb = hnsw_heuristic(store, metric, v, pool, cap);
            }
        }
    }
}

impl GraphSearcher for Hnsw {
    fn search_with(
        &self,
        dist: &mut dyn DistanceFn,
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> SearchOutput {
        assert!(k > 0, "search requires k >= 1");
        let ef = ef.max(k);
        let mut stats = SearchStats::default();
        let mut ep = Candidate::new(self.entry, dist.exact(self.entry));
        stats.evals += 1;
        for lc in (1..=self.max_level).rev() {
            let before = ep;
            ep = self.greedy_step(dist, ep, lc);
            stats.hops += 1;
            let _ = before;
        }
        // Base layer beam search on the reusable scratch.
        scratch.begin(self.links.len());
        let SearchScratch {
            visited, frontier, ..
        } = scratch;
        let mut results = TopK::new(ef);
        visited.insert(ep.id);
        results.offer(ep);
        frontier.push(MinCandidate(ep));
        while let Some(MinCandidate(c)) = frontier.pop() {
            if c.dist > results.bound() {
                break;
            }
            stats.hops += 1;
            for &u in self.neighbors(c.id, 0) {
                if !visited.insert(u) {
                    continue;
                }
                match dist.eval(u, results.bound()) {
                    Some(d) => {
                        stats.evals += 1;
                        let cand = Candidate::new(u, d);
                        if results.offer(cand) {
                            frontier.push(MinCandidate(cand));
                        }
                    }
                    None => stats.pruned += 1,
                }
            }
        }
        let mut out = results.into_sorted();
        out.truncate(k);
        SearchOutput {
            results: out,
            stats,
        }
    }

    fn len(&self) -> usize {
        self.links.len()
    }

    fn avg_degree(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        // INVARIANT: every inserted vertex has at least a base layer.
        let total: usize = self.links.iter().map(|l| l[0].len()).sum();
        total as f64 / self.links.len() as f64
    }

    fn describe(&self) -> String {
        format!(
            "hnsw over {} vertices ({} layers, M={}, efC={})",
            self.links.len(),
            self.max_level + 1,
            self.params.m,
            self.params.ef_construction
        )
    }
}

impl Hnsw {
    /// Fraction of vertices that must be reachable from the entry over the
    /// base layer for [`Hnsw::validate`] to accept the index. HNSW gives no
    /// hard connectivity guarantee (neighbour re-pruning can orphan
    /// vertices), but on any realistic corpus the reachable fraction is
    /// essentially 1; a structurally corrupted graph falls far below this.
    pub const REACHABILITY_FLOOR: f64 = 0.9;

    /// Audits the structural invariants of the built index and returns
    /// every violation found (empty = sound).
    ///
    /// Checked invariants:
    /// - the entry vertex is in range and populated up to `max_level`;
    /// - `max_level` equals the highest populated layer over all vertices;
    /// - every vertex has at least the base layer;
    /// - per layer: degree within the cap (`2m` at layer 0, `m` above), no
    ///   self-loops, no duplicate neighbours, endpoints in range;
    /// - layer-`l` edges only point at vertices populated at layer `l`
    ///   (the HNSW hierarchy property);
    /// - at least [`Hnsw::REACHABILITY_FLOOR`] of the vertices are
    ///   reachable from the entry over the base layer.
    ///
    /// Strict edge *symmetry* is deliberately not required: insertion
    /// re-prunes the reverse lists, so a forward edge may legally lack its
    /// mirror.
    pub fn validate(&self) -> Vec<InvariantViolation> {
        let n = self.links.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        if self.entry as usize >= n {
            out.push(InvariantViolation::BadEntry {
                detail: format!("entry {} out of range (n = {n})", self.entry),
            });
        // INVARIANT: the else-if branch only runs with entry < n checked.
        } else if self.links[self.entry as usize].len() != self.max_level + 1 {
            out.push(InvariantViolation::BadEntry {
                detail: format!(
                    "entry {} has {} layer(s), expected max_level + 1 = {}",
                    self.entry,
                    // INVARIANT: entry < n re-checked in this branch.
                    self.links[self.entry as usize].len(),
                    self.max_level + 1
                ),
            });
        }
        let highest = self.links.iter().map(Vec::len).max().unwrap_or(1) - 1;
        if highest != self.max_level {
            out.push(InvariantViolation::SizeMismatch {
                context: "hnsw max_level".to_string(),
                expected: highest,
                got: self.max_level,
            });
        }
        for (vi, layers) in self.links.iter().enumerate() {
            let v = vi as VecId;
            if layers.is_empty() {
                out.push(InvariantViolation::SizeMismatch {
                    context: format!("hnsw vertex {v} layer count"),
                    expected: 1,
                    got: 0,
                });
                continue;
            }
            for (level, nb) in layers.iter().enumerate() {
                let context = format!("hnsw layer {level}");
                let cap = if level == 0 {
                    self.params.m * 2
                } else {
                    self.params.m
                };
                if nb.len() > cap {
                    out.push(InvariantViolation::DegreeOverflow {
                        context: context.clone(),
                        id: v,
                        degree: nb.len(),
                        cap,
                    });
                }
                let mut seen = std::collections::HashSet::new();
                for &u in nb {
                    if u as usize >= n {
                        out.push(InvariantViolation::IdOutOfRange {
                            context: context.clone(),
                            id: u,
                            n,
                        });
                        continue;
                    }
                    if u == v {
                        out.push(InvariantViolation::SelfLoop {
                            context: context.clone(),
                            id: v,
                        });
                    }
                    if !seen.insert(u) {
                        out.push(InvariantViolation::DuplicateNeighbor {
                            context: context.clone(),
                            id: v,
                            neighbor: u,
                        });
                    }
                    // INVARIANT: out-of-range u was reported + skipped above.
                    let u_levels = self.links[u as usize].len();
                    if u_levels <= level {
                        out.push(InvariantViolation::CrossLevelEdge {
                            vertex: v,
                            level,
                            neighbor: u,
                            neighbor_levels: u_levels,
                        });
                    }
                }
            }
        }
        if (self.entry as usize) < n {
            // BFS over the raw base layer (not `base_layer()`, whose
            // construction would debug-assert on the very defects this
            // audit exists to report). Out-of-range ids are skipped; they
            // are already reported above.
            let mut seen = VisitedSet::new(n);
            seen.next_epoch();
            let mut queue = std::collections::VecDeque::from([self.entry]);
            seen.insert(self.entry);
            let mut reached = 1usize;
            while let Some(v) = queue.pop_front() {
                // INVARIANT: only ids < n are enqueued (guarded below).
                for &u in self.links[v as usize]
                    .first()
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    if (u as usize) < n && seen.insert(u) {
                        reached += 1;
                        queue.push_back(u);
                    }
                }
            }
            if (reached as f64) < Self::REACHABILITY_FLOOR * n as f64 {
                out.push(InvariantViolation::LowReachability {
                    context: "hnsw base layer".to_string(),
                    reached,
                    n,
                    floor: Self::REACHABILITY_FLOOR,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatSearcher;
    use mqa_rng::StdRng;

    fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn single_vector_index() {
        let mut store = VectorStore::new(2);
        store.push(&[1.0, 2.0]);
        let h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let q = [1.0f32, 2.0];
        let mut d = FlatDistance::new(&store, &q, Metric::L2).unwrap();
        let out = h.search(&mut d, 1, 10);
        assert_eq!(out.ids(), vec![0]);
    }

    #[test]
    fn recall_against_flat() {
        let store = random_store(1_500, 12, 1);
        let h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let flat = FlatSearcher::new(store.len());
        let mut rng = StdRng::seed_from_u64(9);
        let k = 10;
        let mut hits = 0;
        let queries = 30;
        for _ in 0..queries {
            let q: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut d1 = FlatDistance::new(&store, &q, Metric::L2).unwrap();
            let truth = flat.search(&mut d1, k, 0).ids();
            let mut d2 = FlatDistance::new(&store, &q, Metric::L2).unwrap();
            let got = h.search(&mut d2, k, 80).ids();
            hits += got.iter().filter(|id| truth.contains(id)).count();
        }
        let recall = hits as f64 / (queries * k) as f64;
        assert!(recall > 0.9, "hnsw recall {recall}");
    }

    #[test]
    fn base_layer_degrees_bounded() {
        let store = random_store(500, 8, 2);
        let params = HnswParams {
            m: 8,
            ef_construction: 60,
            seed: 0,
        };
        let h = Hnsw::build(&store, Metric::L2, &params);
        let base = h.base_layer();
        assert!(
            base.max_degree() <= 16,
            "layer-0 degree {}",
            base.max_degree()
        );
        for v in 0..500u32 {
            assert!(!base.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn base_layer_is_mostly_connected() {
        let store = random_store(800, 8, 3);
        let h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let base = h.base_layer();
        // Bidirectional linking keeps layer 0 connected in practice.
        let reach = base.reachable_count(h.entry());
        assert!(reach as f64 / 800.0 > 0.99, "reachable {reach}/800");
    }

    #[test]
    fn deterministic_in_seed() {
        let store = random_store(300, 6, 4);
        let a = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let b = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        assert_eq!(a.base_layer(), b.base_layer());
        assert_eq!(a.entry(), b.entry());
    }

    #[test]
    fn describe_reports_layers() {
        let store = random_store(200, 4, 5);
        let h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        assert!(h.describe().contains("hnsw"));
        assert!(h.max_level() < 10);
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn empty_store_panics() {
        Hnsw::build(&VectorStore::new(2), Metric::L2, &HnswParams::default());
    }

    #[test]
    fn incremental_growth_matches_batch_build() {
        let store = random_store(400, 8, 7);
        let batch = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        // Build over the first half, then grow to the full store.
        let mut half_store = VectorStore::new(8);
        for id in 0..200u32 {
            half_store.push(store.get(id));
        }
        let mut grown = Hnsw::build(&half_store, Metric::L2, &HnswParams::default());
        grown.extend_from(&store, Metric::L2);
        assert_eq!(grown.len(), 400);
        assert_eq!(batch.base_layer(), grown.base_layer());
        assert_eq!(batch.entry(), grown.entry());
    }

    #[test]
    fn grown_index_finds_new_objects() {
        let mut store = random_store(300, 8, 8);
        let mut h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        // Ingest 50 new objects and grow the index.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            store.push(&v);
        }
        h.extend_from(&store, Metric::L2);
        for id in 300..350u32 {
            let mut d = FlatDistance::for_vertex(&store, id, Metric::L2);
            let out = h.search(&mut d, 1, 64);
            assert_eq!(out.results[0].id, id, "new object {id} not found");
        }
    }

    #[test]
    fn compact_unlinks_dead_vertices() {
        let store = random_store(400, 8, 21);
        let mut h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let mut tomb = Tombstones::new(400);
        // Kill a spread of vertices (skip the entry so the entry-exception
        // path is exercised separately below).
        for id in (0..400u32).step_by(7) {
            if id != h.entry() {
                tomb.kill(id);
            }
        }
        h.compact(&store, Metric::L2, &tomb);
        let mut into_dead = 0usize;
        h.for_each_edge(|_, _, u| {
            if tomb.is_dead(u) {
                into_dead += 1;
            }
        });
        assert_eq!(into_dead, 0, "compaction left edges into dead vertices");
        // Dead vertices are fully unlinked; live ones keep bounded degree.
        for id in tomb.iter_dead() {
            assert!(h.neighbors(id, 0).is_empty(), "dead {id} still linked");
        }
        assert!(h
            .validate()
            .iter()
            .all(|v| matches!(v, InvariantViolation::LowReachability { .. })));
        // Live objects are still discoverable after the rewiring.
        let mut found = 0usize;
        let mut probed = 0usize;
        for id in (1..400u32).step_by(13).filter(|&id| !tomb.is_dead(id)) {
            probed += 1;
            let mut d = FlatDistance::for_vertex(&store, id, Metric::L2);
            let out = h.search(&mut d, 5, 64);
            if out.ids().contains(&id) {
                found += 1;
            }
        }
        assert!(
            found * 10 >= probed * 9,
            "post-compaction discoverability {found}/{probed}"
        );
    }

    #[test]
    fn compact_keeps_dead_entry_routing() {
        let store = random_store(200, 6, 22);
        let mut h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let entry = h.entry();
        let mut tomb = Tombstones::new(200);
        tomb.kill(entry);
        h.compact(&store, Metric::L2, &tomb);
        // The dead entry keeps out-edges (to live targets only) so search
        // can still seed from it.
        assert!(!h.neighbors(entry, 0).is_empty());
        assert!(h.neighbors(entry, 0).iter().all(|&u| !tomb.is_dead(u)));
        let mut into_dead = 0usize;
        h.for_each_edge(|_, _, u| {
            if tomb.is_dead(u) {
                into_dead += 1;
            }
        });
        assert_eq!(into_dead, 0);
    }

    #[test]
    fn validate_accepts_built_index() {
        let store = random_store(400, 8, 3);
        let h = Hnsw::build(&store, Metric::L2, &HnswParams::default());
        let violations = h.validate();
        assert!(violations.is_empty(), "sound index flagged: {violations:?}");
    }

    #[test]
    fn validate_detects_corruption() {
        use crate::validate::InvariantViolation as V;
        let store = random_store(200, 6, 4);
        let sound = Hnsw::build(&store, Metric::L2, &HnswParams::default());

        // Out-of-range neighbour.
        let mut h = sound.clone();
        h.links[3][0].push(10_000);
        assert!(h
            .validate()
            .iter()
            .any(|v| matches!(v, V::IdOutOfRange { id: 10_000, .. })));

        // Self-loop.
        let mut h = sound.clone();
        h.links[5][0].push(5);
        assert!(h
            .validate()
            .iter()
            .any(|v| matches!(v, V::SelfLoop { id: 5, .. })));

        // Duplicate neighbour.
        let mut h = sound.clone();
        if let Some(&u) = h.links[7][0].first() {
            h.links[7][0].push(u);
        }
        assert!(h
            .validate()
            .iter()
            .any(|v| matches!(v, V::DuplicateNeighbor { id: 7, .. })));

        // Degree overflow at layer 0 (cap 2m).
        let mut h = sound.clone();
        let cap = h.params.m * 2;
        h.links[2][0] = (0..=cap as VecId).map(|i| (i + 10) % 200).collect();
        assert!(h
            .validate()
            .iter()
            .any(|v| matches!(v, V::DegreeOverflow { id: 2, .. })));

        // Cross-level edge: a layer-1 edge to a base-only vertex.
        let mut h = sound.clone();
        let tall = (0..h.links.len()).find(|&v| h.links[v].len() > 1);
        let short = (0..h.links.len()).find(|&v| h.links[v].len() == 1);
        if let (Some(t), Some(s)) = (tall, short) {
            h.links[t][1].insert(0, s as VecId);
            assert!(h
                .validate()
                .iter()
                .any(|v| matches!(v, V::CrossLevelEdge { .. })));
        }

        // Forged entry: points below the top layer.
        let mut h = sound.clone();
        if let Some(s) = short {
            h.entry = s as VecId;
            assert!(h.validate().iter().any(|v| matches!(v, V::BadEntry { .. })));
        }

        // Severed base layer: isolate most of the graph from the entry.
        let mut h = sound;
        for v in 0..150usize {
            h.links[v][0].clear();
        }
        assert!(h
            .validate()
            .iter()
            .any(|v| matches!(v, V::LowReachability { .. })));
    }
}
