//! Small shared utilities for index construction.

use mqa_vector::{ops, Metric, VecId, VectorStore};

/// Runs `f(id)` for every id in `0..n` across scoped worker threads and
/// collects the results in id order. `f` must be pure with respect to the
/// shared captured state (construction passes read-only snapshots).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(VecId) -> T + Send + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if threads <= 1 || n < 256 {
        return (0..mqa_vector::cast::vec_id(n)).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<T> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move || (start..end).map(|i| f(i as VecId)).collect::<Vec<T>>())
            })
            .collect();
        // Joining in spawn order preserves id order; a worker panic is
        // re-raised on the caller thread once every sibling has finished.
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// The medoid of a store: the vector closest (under `metric`) to the
/// elementwise mean. Standard entry-point choice of NSG/Vamana.
///
/// # Panics
/// Panics if the store is empty.
pub fn medoid(store: &VectorStore, metric: Metric) -> VecId {
    assert!(!store.is_empty(), "medoid of an empty store");
    let dim = store.dim();
    let mut mean = vec![0.0f32; dim];
    for (_, v) in store.iter() {
        ops::axpy(1.0, v, &mut mean);
    }
    ops::scale(1.0 / mqa_vector::cast::count_f32(store.len()), &mut mean);
    let mut best = 0 as VecId;
    let mut best_d = f32::INFINITY;
    for (id, v) in store.iter() {
        let d = metric.distance(&mean, v);
        if d < best_d {
            best_d = d;
            best = id;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(1000, |id| id * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u32) * 2);
        }
    }

    #[test]
    fn parallel_map_small_input() {
        assert_eq!(parallel_map(3, |id| id + 1), vec![1, 2, 3]);
        assert!(parallel_map(0, |id| id).is_empty());
    }

    #[test]
    fn medoid_of_cluster() {
        let mut store = VectorStore::new(1);
        for x in [0.0f32, 1.0, 2.0, 10.0] {
            store.push(&[x]);
        }
        // mean = 3.25; closest point is 2.0 (id 2)
        assert_eq!(medoid(&store, Metric::L2), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn medoid_empty_panics() {
        medoid(&VectorStore::new(2), Metric::L2);
    }
}
