//! Property test: a shared page cache must never change paged-search
//! answers — only where page touches are served from.
//!
//! For every navigation-graph algorithm (HNSW base layer, NSG, Vamana),
//! both page-layout strategies, and both cache regimes (a tiny capacity
//! that thrashes and evicts, a large capacity that goes fully warm), a
//! cached [`PagedIndex`] must return results bit-identical to an uncached
//! twin, and every distinct page touch must be accounted for as exactly
//! one of a device read or a cache hit:
//!
//! ```text
//! cached.pages_read + cached.pages_cached == uncached.pages_read
//! ```

use mqa_cache::PageCache;
use mqa_graph::starling::{LayoutStrategy, PageLayout, PagedIndex};
use mqa_graph::{hnsw, nsg, vamana, Adjacency, FlatDistance};
use mqa_rng::StdRng;
use mqa_vector::{Metric, VecId, VectorStore};
use std::sync::Arc;

fn store(n: usize, dim: usize, seed: u64) -> Arc<VectorStore> {
    let mut s = VectorStore::new(dim);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    Arc::new(s)
}

/// Builds `(name, adjacency, entry points)` for every algorithm under test.
fn graphs(s: &Arc<VectorStore>) -> Vec<(&'static str, Adjacency, Vec<VecId>)> {
    let h = hnsw::Hnsw::build(s, Metric::L2, &hnsw::HnswParams::default());
    let n = nsg::build(s, Metric::L2, 12, 32, 12, 5);
    let v = vamana::build(s, Metric::L2, 12, 32, 1.2, 5);
    vec![
        ("hnsw", h.base_layer(), vec![h.entry()]),
        ("nsg", n.graph().clone(), n.entries().to_vec()),
        ("vamana", v.graph().clone(), v.entries().to_vec()),
    ]
}

#[test]
fn cached_paged_search_is_bit_identical_across_algorithms_and_regimes() {
    let s = store(500, 8, 3);
    let mut rng = StdRng::seed_from_u64(17);
    let queries: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();

    for (name, graph, entries) in graphs(&s) {
        for strategy in [LayoutStrategy::InsertionOrder, LayoutStrategy::BfsCluster] {
            let layout = PageLayout::build(&graph, 4, strategy);
            let uncached = PagedIndex::new(graph.clone(), entries.clone(), layout.clone());
            // Tiny capacity: far fewer slots than distinct pages, so the
            // clock sweeps and evicts constantly. Large capacity: the
            // whole working set becomes resident.
            for capacity in [4usize, 4096] {
                let cache = Arc::new(PageCache::new(capacity));
                let cached = PagedIndex::new(graph.clone(), entries.clone(), layout.clone())
                    .with_page_cache(Arc::clone(&cache));
                // Two passes: cold, then warm (or still-thrashing at the
                // tiny capacity). The invariants hold in both.
                for pass in ["cold", "warm"] {
                    for (qi, q) in queries.iter().enumerate() {
                        let mut d1 = FlatDistance::new(&s, q, Metric::L2).unwrap();
                        let plain = uncached.search_paged(&mut d1, 5, 24);
                        let mut d2 = FlatDistance::new(&s, q, Metric::L2).unwrap();
                        let with_cache = cached.search_paged(&mut d2, 5, 24);
                        assert_eq!(
                            plain.results, with_cache.results,
                            "{name}/{strategy:?}/cap={capacity}/{pass} query {qi}: \
                             cached results diverge"
                        );
                        assert_eq!(
                            with_cache.stats.pages_read + with_cache.stats.pages_cached,
                            plain.stats.pages_read,
                            "{name}/{strategy:?}/cap={capacity}/{pass} query {qi}: \
                             page touches unaccounted for"
                        );
                    }
                }
                assert!(
                    cache.len() <= cache.capacity(),
                    "{name}/{strategy:?}: cache overfilled"
                );
                if capacity == 4 {
                    // The working set dwarfs 4 pages (8-entry slots after
                    // shard rounding), so the thrashing regime must have
                    // filled the cache completely — evictions happened.
                    assert_eq!(
                        cache.len(),
                        cache.capacity(),
                        "{name}/{strategy:?}: tiny cache never reached \
                         capacity, eviction path untested"
                    );
                }
            }
        }
    }
}
