//! Overhead guard for the always-on search instrumentation.
//!
//! Every `VectorIndex::search` records one counter/histogram bundle into
//! the `mqa-obs` registry. With the journal disabled (the default), that
//! bundle must stay in the noise: this test pins it below 5% of a flat
//! exhaustive search over a modest store, measured on the same machine in
//! the same process.

use mqa_graph::{IndexAlgorithm, SearchStats, VectorIndex};
use mqa_rng::StdRng;
use mqa_vector::{Metric, VectorStore};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`trials` per-operation cost in nanoseconds.
fn per_op_ns<F: FnMut()>(iters: u64, trials: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

const DIM: usize = 64;

fn flat_index() -> (VectorIndex, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = VectorStore::with_capacity(DIM, 2_000);
    for _ in 0..2_000 {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        store.push(&v);
    }
    let idx = VectorIndex::build(store, Metric::L2, &IndexAlgorithm::Flat);
    let q: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    (idx, q)
}

const STATS: SearchStats = SearchStats {
    hops: 3,
    evals: 2_000,
    pruned: 10,
    pages_read: 0,
    pages_cached: 0,
};

#[test]
fn metric_recording_overhead_below_five_percent_of_flat_search() {
    assert!(
        !mqa_obs::journal::global().is_enabled(),
        "overhead is specified with the journal disabled"
    );

    let (idx, q) = flat_index();

    // The full search path (which already includes one recording bundle
    // per call) versus the bundle alone.
    let search_ns = per_op_ns(50, 5, || {
        black_box(idx.search(black_box(&q), 10, 64).results.len());
    });
    let record_ns = per_op_ns(10_000, 5, || {
        STATS.record(black_box("overhead-test"), black_box(123));
    });

    assert!(
        record_ns < search_ns * 0.05,
        "recording bundle {record_ns:.0} ns/op is not <5% of flat search {search_ns:.0} ns/op"
    );
}

/// Same pin with per-query tracing live: the collector is enabled and a
/// trace is adopted on the measuring thread, so every `record` call also
/// folds its counters into the active trace. That extra path (one
/// thread-local read + one uncontended mutex) must stay under the same
/// 5% budget — tracing is meant to be cheap enough to leave on.
#[test]
fn tracing_overhead_below_five_percent_of_flat_search() {
    mqa_obs::trace::configure(mqa_obs::TraceConfig::default());
    mqa_obs::trace::enable();
    let handle =
        mqa_obs::trace::begin_detached("graph.overhead.query").expect("tracing was just enabled");
    let ctx = handle.context();
    let adopted = ctx.adopt();

    let (idx, q) = flat_index();
    let search_ns = per_op_ns(50, 5, || {
        black_box(idx.search(black_box(&q), 10, 64).results.len());
    });
    let record_ns = per_op_ns(10_000, 5, || {
        STATS.record(black_box("overhead-test"), black_box(123));
    });

    drop(adopted);
    handle.finish();

    assert!(
        record_ns < search_ns * 0.05,
        "traced recording bundle {record_ns:.0} ns/op is not <5% of flat search {search_ns:.0} ns/op"
    );
}
