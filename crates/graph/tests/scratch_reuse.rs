//! Property tests for scratch reuse: one [`SearchScratch`] driven through
//! interleaved searches over every index family must produce bit-identical
//! results and work counters to a fresh pooled search — including straight
//! through a visited-epoch wraparound. This is the correctness contract
//! that lets engine workers own one scratch for their whole lifetime.

use mqa_graph::starling::{LayoutStrategy, PageLayout, PagedIndex};
use mqa_graph::{FlatDistance, IndexAlgorithm, SearchOutput, SearchScratch, VectorIndex};
use mqa_rng::StdRng;
use mqa_vector::{Metric, VectorStore};
use std::sync::Arc;

fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = VectorStore::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    s
}

fn random_queries(count: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

fn assert_identical(a: &SearchOutput, b: &SearchOutput, what: &str) {
    assert_eq!(a.results, b.results, "{what}: results diverged");
    assert_eq!(a.stats, b.stats, "{what}: work counters diverged");
}

/// Every index family, one shared scratch, interleaved round-robin: each
/// `*_with` answer must equal the fresh pooled-path answer.
#[test]
fn interleaved_reuse_matches_fresh_search_everywhere() {
    let dim = 8;
    let indexes: Vec<(&str, VectorIndex)> = [
        ("flat", IndexAlgorithm::Flat),
        ("hnsw", IndexAlgorithm::hnsw()),
        ("nsg", IndexAlgorithm::nsg()),
        ("vamana", IndexAlgorithm::vamana()),
    ]
    .into_iter()
    .map(|(name, algo)| {
        (
            name,
            VectorIndex::build(random_store(300, dim, 11), Metric::L2, &algo),
        )
    })
    .collect();

    let paged_store = Arc::new(random_store(300, dim, 11));
    let nav = mqa_graph::vamana::build(&paged_store, Metric::L2, 16, 48, 1.2, 3);
    let layout = PageLayout::build(nav.graph(), 4, LayoutStrategy::BfsCluster);
    let paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout);

    let mut scratch = SearchScratch::new();
    for (round, q) in random_queries(12, dim, 99).iter().enumerate() {
        let k = 1 + round % 7;
        let ef = 16 + round * 3;
        for (name, idx) in &indexes {
            let reused = idx
                .try_search_with(q, k, ef, &mut scratch)
                .expect("dims match");
            let fresh = idx.search(q, k, ef);
            assert_identical(&reused, &fresh, name);
        }
        let mut d1 = FlatDistance::new(&paged_store, q, Metric::L2).expect("dims match");
        let reused = paged.search_paged_with(&mut d1, k, ef, &mut scratch);
        let mut d2 = FlatDistance::new(&paged_store, q, Metric::L2).expect("dims match");
        let fresh = paged.search_paged(&mut d2, k, ef);
        assert_identical(&reused, &fresh, "starling");
    }
}

/// The epoch counter crossing `u32::MAX` mid-stream must be invisible:
/// searches right before, during, and after the wraparound all agree with
/// fresh searches.
#[test]
fn epoch_wraparound_is_invisible() {
    let dim = 6;
    let idx = VectorIndex::build(
        random_store(250, dim, 21),
        Metric::L2,
        &IndexAlgorithm::hnsw(),
    );
    let mut scratch = SearchScratch::new();
    // Three epochs of headroom before the stamp array must re-zero.
    scratch.force_epoch(u32::MAX - 3);
    for (i, q) in random_queries(10, dim, 77).iter().enumerate() {
        let reused = idx
            .try_search_with(q, 5, 32, &mut scratch)
            .expect("dims match");
        let fresh = idx.search(q, 5, 32);
        assert_identical(&reused, &fresh, &format!("query {i} around wraparound"));
    }
}
