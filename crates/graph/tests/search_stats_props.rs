//! Property tests for `SearchStats::merge`: over all five counter fields
//! the operation must be commutative and associative (with the default
//! record as identity), since the experiment harness folds per-query stats
//! in arbitrary grouping and order.

use mqa_graph::SearchStats;
use mqa_rng::StdRng;

fn random_stats(rng: &mut StdRng) -> SearchStats {
    SearchStats {
        hops: rng.gen_range(0..1_000_000u64),
        evals: rng.gen_range(0..1_000_000u64),
        pruned: rng.gen_range(0..1_000_000u64),
        pages_read: rng.gen_range(0..1_000_000u64),
        pages_cached: rng.gen_range(0..1_000_000u64),
    }
}

fn merged(a: &SearchStats, b: &SearchStats) -> SearchStats {
    let mut out = *a;
    out.merge(b);
    out
}

#[test]
fn merge_is_commutative() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..200 {
        let a = random_stats(&mut rng);
        let b = random_stats(&mut rng);
        assert_eq!(merged(&a, &b), merged(&b, &a));
    }
}

#[test]
fn merge_is_associative() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..200 {
        let a = random_stats(&mut rng);
        let b = random_stats(&mut rng);
        let c = random_stats(&mut rng);
        assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c)),
            "grouping must not matter"
        );
    }
}

#[test]
fn default_is_merge_identity() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let a = random_stats(&mut rng);
        assert_eq!(merged(&a, &SearchStats::default()), a);
        assert_eq!(merged(&SearchStats::default(), &a), a);
    }
}

#[test]
fn total_distance_work_sums_completed_and_abandoned() {
    let s = SearchStats {
        hops: 3,
        evals: 10,
        pruned: 4,
        pages_read: 0,
        pages_cached: 0,
    };
    assert_eq!(s.total_distance_work(), 14);
    assert_eq!(SearchStats::default().total_distance_work(), 0);
}
