//! Property tests for online index mutation: an interleaved script of
//! inserts, tombstoned deletes, and searches across every index family
//! must (a) never surface a dead object, and (b) keep post-mutation
//! recall@10 within a pinned bound of a from-scratch rebuild over the
//! same live content.
//!
//! The unified families (flat / HNSW / NSG / Vamana) run through
//! [`UnifiedIndex::add_objects`] / [`UnifiedIndex::remove_objects`] so the
//! epoch-published snapshot path itself is exercised; the paged (Starling)
//! index runs its filter-then-compact path directly.

use mqa_graph::starling::LayoutStrategy;
use mqa_graph::{
    BuiltGraph, FlatDistance, GraphSearcher, IndexAlgorithm, PageLayout, PagedIndex, Tombstones,
    UnifiedIndex,
};
use mqa_rng::StdRng;
use mqa_vector::{Metric, MultiVector, MultiVectorStore, Schema, VecId, VectorStore, Weights};
use std::collections::HashSet;

const K: usize = 10;
/// Post-mutation graph recall may trail a fresh rebuild by at most this
/// much (absolute, on recall@10 against each index's own exact oracle).
const RECALL_SLACK: f64 = 0.15;

fn random_object(schema: &Schema, rng: &mut StdRng) -> MultiVector {
    let parts: Vec<Vec<f32>> = (0..schema.arity())
        .map(|m| {
            (0..schema.dim(m))
                .map(|_| rng.gen_range(-2.0f32..2.0))
                .collect()
        })
        .collect();
    MultiVector::complete(schema, parts)
}

/// Graph-search recall@10 against the index's own exhaustive live oracle.
fn recall_at_10(idx: &UnifiedIndex, queries: &[MultiVector]) -> f64 {
    let mut hits = 0usize;
    for q in queries {
        let truth = idx.search_exact(q, None, K).ids();
        let got = idx.search(q, None, K, 96).ids();
        hits += got.iter().filter(|id| truth.contains(id)).count();
    }
    hits as f64 / (queries.len() * K) as f64
}

#[test]
fn unified_families_only_return_live_objects_and_keep_recall() {
    let schema = Schema::text_image(8, 8);
    let weights = Weights::normalized(&[1.0, 1.0]);
    let families = [
        IndexAlgorithm::Flat,
        IndexAlgorithm::hnsw(),
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
    ];
    for (fi, algo) in families.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xD15C0 + fi as u64);
        let mut store = MultiVectorStore::new(schema.clone());
        for _ in 0..240 {
            store.push(&random_object(&schema, &mut rng));
        }
        let idx = UnifiedIndex::build(store, weights.clone(), Metric::L2, algo);
        let queries: Vec<MultiVector> = (0..12).map(|_| random_object(&schema, &mut rng)).collect();
        let mut killed: HashSet<VecId> = HashSet::new();

        // Six rounds alternating insert / delete; the delete volume is
        // sized so the pending-dead fraction crosses the compaction
        // threshold on the last delete round, exercising rewiring too.
        for round in 0..6 {
            if round % 2 == 0 {
                let batch: Vec<MultiVector> =
                    (0..8).map(|_| random_object(&schema, &mut rng)).collect();
                let before = idx.len();
                let report = idx.add_objects(&batch).expect("insert batch");
                assert_eq!(report.applied, 8, "{}", algo.name());
                assert_eq!(idx.len(), before + 8, "{}", algo.name());
            } else {
                let len = idx.len() as VecId;
                let mut batch: Vec<VecId> = Vec::new();
                while batch.len() < 20 {
                    let id = rng.gen_range(0..len);
                    if !killed.contains(&id) && !batch.contains(&id) {
                        batch.push(id);
                    }
                }
                let report = idx.remove_objects(&batch).expect("delete batch");
                assert_eq!(report.applied, 20, "{}", algo.name());
                killed.extend(batch);
            }
            // Property: no search after any mutation may surface a dead id.
            for q in &queries {
                let ids = idx.search(q, None, K, 96).ids();
                assert!(
                    !ids.is_empty(),
                    "{}: live index stopped answering",
                    algo.name()
                );
                for id in &ids {
                    assert!(
                        !killed.contains(id),
                        "{}: round {round} surfaced dead object {id}",
                        algo.name()
                    );
                    assert!((*id as usize) < idx.len());
                }
            }
        }
        assert_eq!(idx.len(), 264, "{}", algo.name());
        assert_eq!(idx.live_len(), 264 - killed.len(), "{}", algo.name());

        // Recall bound: rebuild from scratch over exactly the live
        // content and compare recall@10 (each index against its own
        // exact oracle, so id spaces never need aligning).
        let mutated_recall = recall_at_10(&idx, &queries);
        let mut fresh = MultiVectorStore::new(schema.clone());
        {
            let pinned = idx.store();
            for id in 0..idx.len() as VecId {
                if !killed.contains(&id) {
                    fresh.push(&pinned.multivector_of(id));
                }
            }
        }
        let fresh_idx = UnifiedIndex::build(fresh, weights.clone(), Metric::L2, algo);
        let fresh_recall = recall_at_10(&fresh_idx, &queries);
        assert!(
            mutated_recall >= fresh_recall - RECALL_SLACK,
            "{}: mutated recall {mutated_recall:.3} trails fresh rebuild {fresh_recall:.3} \
             by more than {RECALL_SLACK}",
            algo.name()
        );
    }
}

/// Exhaustive live top-k for the paged test's single-modal store.
fn brute_force_live(store: &VectorStore, q: &[f32], tomb: &Tombstones, k: usize) -> Vec<VecId> {
    let mut scored: Vec<(f32, VecId)> = store
        .iter()
        .filter(|(id, _)| !tomb.is_dead(*id))
        .map(|(id, v)| {
            let d: f32 = v.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
            (d, id)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| id).collect()
}

#[test]
fn paged_index_filters_dead_and_survives_compaction() {
    let dim = 8usize;
    let mut rng = StdRng::seed_from_u64(0xD15C5);
    let mut store = VectorStore::new(dim);
    for _ in 0..500 {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        store.push(&v);
    }
    let store = std::sync::Arc::new(store);
    let built = IndexAlgorithm::vamana().build_graph(&store, Metric::L2);
    let nav = match &built {
        BuiltGraph::Nav(nav) => nav,
        other => panic!("vamana must build a Nav graph, got {}", other.describe()),
    };
    let layout = PageLayout::build(nav.graph(), 4, LayoutStrategy::BfsCluster);
    let mut paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout);
    let mut tomb = Tombstones::new(500);
    let queries: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut killed: HashSet<VecId> = HashSet::new();
    let mut compactions = 0usize;

    for round in 0..6 {
        let mut batch: Vec<VecId> = Vec::new();
        while batch.len() < 25 {
            let id = rng.gen_range(0..500u32);
            if !killed.contains(&id) && !batch.contains(&id) {
                batch.push(id);
            }
        }
        for &id in &batch {
            assert!(tomb.kill(id));
        }
        killed.extend(batch);
        if tomb.pending_fraction() > 0.2 {
            paged.apply_compaction(&tomb);
            tomb.mark_all_compacted();
            compactions += 1;
        }
        for q in &queries {
            let mut dist = FlatDistance::new(&store, q, Metric::L2).expect("dim matches");
            let ids = paged.search_paged_live(&mut dist, K, 48, &tomb).ids();
            assert!(!ids.is_empty(), "paged live search stopped answering");
            for id in &ids {
                assert!(
                    !killed.contains(id),
                    "round {round} surfaced dead vertex {id}"
                );
            }
        }
    }
    assert!(compactions >= 1, "delete volume must cross the threshold");
    assert_eq!(tomb.live_count(), 500 - killed.len());

    // Recall bound vs a fresh rebuild over only the live vectors. The
    // fresh index's result ids are remapped back to original ids so both
    // sides are judged against the same brute-force live oracle.
    let live_ids: Vec<VecId> = (0..500u32).filter(|id| !tomb.is_dead(*id)).collect();
    let mut fresh_store = VectorStore::new(dim);
    for &id in &live_ids {
        fresh_store.push(store.get(id));
    }
    let fresh_store = std::sync::Arc::new(fresh_store);
    let fresh_built = IndexAlgorithm::vamana().build_graph(&fresh_store, Metric::L2);
    let fresh_nav = match &fresh_built {
        BuiltGraph::Nav(nav) => nav,
        other => panic!("vamana must build a Nav graph, got {}", other.describe()),
    };
    let (mut mutated_hits, mut fresh_hits) = (0usize, 0usize);
    for q in &queries {
        let truth = brute_force_live(&store, q, &tomb, K);
        let mut dist = FlatDistance::new(&store, q, Metric::L2).expect("dim matches");
        let got = paged.search_paged_live(&mut dist, K, 48, &tomb).ids();
        mutated_hits += got.iter().filter(|id| truth.contains(id)).count();
        let mut fdist = FlatDistance::new(&fresh_store, q, Metric::L2).expect("dim matches");
        let fresh_got = fresh_nav.search(&mut fdist, K, 48).ids();
        fresh_hits += fresh_got
            .iter()
            // INVARIANT: fresh-store ids index live_ids by construction.
            .filter(|&&id| truth.contains(&live_ids[id as usize]))
            .count();
    }
    let denom = (queries.len() * K) as f64;
    let mutated_recall = mutated_hits as f64 / denom;
    let fresh_recall = fresh_hits as f64 / denom;
    assert!(
        mutated_recall >= fresh_recall - RECALL_SLACK,
        "paged: mutated recall {mutated_recall:.3} trails fresh rebuild {fresh_recall:.3} \
         by more than {RECALL_SLACK}"
    );
}
