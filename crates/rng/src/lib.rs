//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! Determinism is a design goal of this reproduction (seeded builds must be
//! byte-identical across runs and platforms), so the workspace carries its
//! own PRNG instead of an external dependency: a [`SplitMix64`] stream for
//! seeding and a [`Xoshiro256ss`] (xoshiro256**) stream for bulk
//! generation. [`StdRng`] is the workspace-wide handle: seed it with
//! [`StdRng::seed_from_u64`] and draw with [`StdRng::gen_range`],
//! [`StdRng::gen`], or [`StdRng::gen_bool`].
//!
//! Both generators are the reference algorithms of Blackman & Vigna
//! (<https://prng.di.unimi.it/>); they are small, fast, and pass BigCrush,
//! which is more than enough for index construction, synthetic corpora,
//! and randomized tests.

/// SplitMix64: a tiny 64-bit generator used to expand one `u64` seed into
/// the larger xoshiro state. Also usable standalone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the general-purpose stream behind [`StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

impl Xoshiro256ss {
    /// State expanded from `seed` via [`SplitMix64`] (the seeding scheme
    /// recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // INVARIANT: `s` is `[u64; 4]` and every index below is a literal
        // in 0..4 — the compiler proves these in-bounds.
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        // INVARIANT: literal indices into `[u64; 4]` (see above).
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        // INVARIANT: literal indices into `[u64; 4]` (see above).
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The workspace's standard generator: a seeded xoshiro256** stream with
/// the sampling surface the codebase uses (`gen_range`, `gen`, `gen_bool`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    inner: Xoshiro256ss,
}

impl StdRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: Xoshiro256ss::seed_from_u64(seed),
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniformly distributed value of `T` (over `T`'s full domain for
    /// integers, `[0, 1)` for floats).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`. Supports half-open (`a..b`) and
    /// inclusive (`a..=b`) ranges over the integer and float primitives.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.next_f64() < p
    }

    /// A uniform integer in `[0, bound)` by Lemire's nearly-divisionless
    /// method (unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            // INVARIANT: bound > 0 — every caller passes a length or range
            // width that was checked non-empty first (see the asserts in
            // `Range::sample` / `RangeInclusive::sample`, and `shuffle`
            // passes i + 1 >= 2).
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_f32()
    }
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_f64()
    }
}

/// Ranges [`StdRng::gen_range`] can sample from. Generic over the element
/// type (mirroring `rand`), so an unsuffixed literal range like `-1.0..1.0`
/// infers its type from the call site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 range: every output is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let v = self.start + (self.end - self.start) * rng.$unit();
                // Guard the (rare) rounding case where v lands on `end`.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
impl_range_float!(f32 => next_f32, f64 => next_f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // First output for seed 0 of the canonical implementation.
        assert_eq!(a, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn streams_are_deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_int_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..2_000 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(w >= f64::EPSILON && w < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should occur: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input in order");
    }

    #[test]
    fn choose_covers_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let xs = [1, 2, 3];
        for _ in 0..10 {
            assert!(xs.contains(rng.choose(&xs).expect("non-empty")));
        }
    }

    #[test]
    fn uniformity_of_unit_floats() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
