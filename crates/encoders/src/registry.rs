//! Encoder registry: the backend of the configuration panel's
//! "embedding options" dropdown.
//!
//! The paper's frontend lets the user pick encoders per modality (LSTM,
//! ResNet, CLIP, …). [`EncoderChoice`] is the serializable configuration
//! value; [`EncoderRegistry::instantiate`] turns it into a live encoder.

use crate::clip::ClipPair;
use crate::image::VisualEncoder;
use crate::text::{HashingTextEncoder, LstmTextEncoder};
use crate::traits::Encoder;
use mqa_vector::{Dim, ModalityKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A serializable encoder selection, as stored in the system configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderChoice {
    /// Bag-of-n-grams text encoder ([`HashingTextEncoder`]).
    HashingText {
        /// Output dimensionality.
        dim: Dim,
    },
    /// Order-sensitive recurrent text encoder ([`LstmTextEncoder`]).
    LstmText {
        /// Output dimensionality.
        dim: Dim,
    },
    /// Dense visual encoder ([`VisualEncoder`]).
    VisualResnet {
        /// Raw descriptor length accepted.
        raw_dim: usize,
        /// Output dimensionality.
        dim: Dim,
    },
    /// Text tower of the CLIP pair.
    ClipText {
        /// Shared output dimensionality of the pair.
        dim: Dim,
    },
    /// Image tower of the CLIP pair.
    ClipImage {
        /// Raw descriptor length accepted.
        raw_dim: usize,
        /// Shared output dimensionality of the pair.
        dim: Dim,
    },
}

impl EncoderChoice {
    /// The modality kind the resulting encoder accepts.
    pub fn kind(&self) -> ModalityKind {
        match self {
            EncoderChoice::HashingText { .. }
            | EncoderChoice::LstmText { .. }
            | EncoderChoice::ClipText { .. } => ModalityKind::Text,
            EncoderChoice::VisualResnet { .. } | EncoderChoice::ClipImage { .. } => {
                ModalityKind::Image
            }
        }
    }

    /// Output dimensionality of the resulting encoder.
    pub fn dim(&self) -> Dim {
        match self {
            EncoderChoice::HashingText { dim }
            | EncoderChoice::LstmText { dim }
            | EncoderChoice::ClipText { dim }
            | EncoderChoice::VisualResnet { dim, .. }
            | EncoderChoice::ClipImage { dim, .. } => *dim,
        }
    }

    /// Panel display name.
    pub fn display_name(&self) -> &'static str {
        match self {
            EncoderChoice::HashingText { .. } => "hashing-text",
            EncoderChoice::LstmText { .. } => "lstm-text",
            EncoderChoice::VisualResnet { .. } => "visual-resnet",
            EncoderChoice::ClipText { .. } => "clip-text",
            EncoderChoice::ClipImage { .. } => "clip-image",
        }
    }
}

/// Instantiates encoders from configuration values. A registry carries the
/// model seed so that an entire system configuration is reproducible from
/// `(registry seed, choices)`.
#[derive(Debug, Clone, Copy)]
pub struct EncoderRegistry {
    seed: u64,
}

impl EncoderRegistry {
    /// Creates a registry with the given model seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The registry's model seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Names of all selectable encoders, as listed by the configuration
    /// panel.
    pub fn available() -> &'static [&'static str] {
        &[
            "hashing-text",
            "lstm-text",
            "visual-resnet",
            "clip-text",
            "clip-image",
        ]
    }

    /// Builds a live encoder from a configuration choice.
    pub fn instantiate(&self, choice: &EncoderChoice) -> Arc<dyn Encoder> {
        match *choice {
            EncoderChoice::HashingText { dim } => Arc::new(HashingTextEncoder::new(dim, self.seed)),
            EncoderChoice::LstmText { dim } => Arc::new(LstmTextEncoder::new(dim, self.seed)),
            EncoderChoice::VisualResnet { raw_dim, dim } => {
                Arc::new(VisualEncoder::new(raw_dim, dim, self.seed))
            }
            EncoderChoice::ClipText { dim } => {
                // raw_dim is irrelevant for the text tower; use a nominal 1.
                ClipPair::new(dim, 1, self.seed).text_tower()
            }
            EncoderChoice::ClipImage { raw_dim, dim } => {
                ClipPair::new(dim, raw_dim, self.seed).image_tower()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RawContent;

    #[test]
    fn instantiate_matches_choice_metadata() {
        let reg = EncoderRegistry::new(42);
        let choices = [
            EncoderChoice::HashingText { dim: 32 },
            EncoderChoice::LstmText { dim: 16 },
            EncoderChoice::VisualResnet {
                raw_dim: 8,
                dim: 24,
            },
            EncoderChoice::ClipText { dim: 48 },
            EncoderChoice::ClipImage {
                raw_dim: 8,
                dim: 48,
            },
        ];
        for c in &choices {
            let e = reg.instantiate(c);
            assert_eq!(e.dim(), c.dim(), "{c:?}");
            assert_eq!(e.kind(), c.kind(), "{c:?}");
        }
    }

    #[test]
    fn same_seed_same_embeddings() {
        let a = EncoderRegistry::new(1).instantiate(&EncoderChoice::HashingText { dim: 16 });
        let b = EncoderRegistry::new(1).instantiate(&EncoderChoice::HashingText { dim: 16 });
        let input = RawContent::text("reproducible");
        assert_eq!(a.encode(&input), b.encode(&input));
    }

    #[test]
    fn clip_towers_from_registry_share_space_with_clip_pair() {
        let reg = EncoderRegistry::new(5);
        let tower = reg.instantiate(&EncoderChoice::ClipText { dim: 32 });
        let pair = ClipPair::new(32, 8, 5);
        let input = RawContent::text("aligned");
        assert_eq!(tower.encode(&input), pair.text_tower().encode(&input));
    }

    #[test]
    fn available_lists_all_choices() {
        assert_eq!(EncoderRegistry::available().len(), 5);
    }

    #[test]
    fn choice_serde_round_trip() {
        let c = EncoderChoice::VisualResnet {
            raw_dim: 8,
            dim: 24,
        };
        let j = serde_json::to_string(&c).unwrap();
        let back: EncoderChoice = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }
}
