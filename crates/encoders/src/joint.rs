//! Joint encoder: the single-vector object representation the JE baseline
//! uses.
//!
//! The Joint Embedding retrieval framework (paper §1, baseline "JE")
//! encodes *all* modalities of an object into one vector and searches a
//! single index. [`JointEncoder`] reproduces that: it runs one encoder per
//! modality, scales every block equally (`1/sqrt(M)`), concatenates, and
//! normalizes. The fixed equal weighting — no per-modality importance — is
//! precisely the limitation MUST's weight learning removes, and what
//! experiment F5/E5 measures.

use crate::traits::{Encoder, RawContent};
use mqa_vector::{ops, Dim};
use std::sync::Arc;

/// Encodes a whole multi-modal object into one joint vector.
pub struct JointEncoder {
    towers: Vec<Arc<dyn Encoder>>,
}

impl JointEncoder {
    /// Builds a joint encoder from one tower per modality (schema order).
    ///
    /// # Panics
    /// Panics if no towers are supplied.
    pub fn new(towers: Vec<Arc<dyn Encoder>>) -> Self {
        assert!(
            !towers.is_empty(),
            "joint encoder requires at least one tower"
        );
        Self { towers }
    }

    /// Output dimensionality (sum of tower dimensions).
    pub fn dim(&self) -> Dim {
        self.towers.iter().map(|t| t.dim()).sum()
    }

    /// Number of modality towers.
    pub fn arity(&self) -> usize {
        self.towers.len()
    }

    /// Encodes one object given per-modality raw content (schema order;
    /// `None` = modality absent, encoded as a zero block — the JE
    /// framework has no other way to express absence).
    pub fn encode(&self, contents: &[Option<RawContent>]) -> Vec<f32> {
        assert_eq!(contents.len(), self.towers.len(), "modality arity mismatch");
        let scale = 1.0 / (self.towers.len() as f32).sqrt();
        // ALLOC: per-query embedding buffer, bounded by the schema's modality dim.
        let mut out = Vec::with_capacity(self.dim());
        for (tower, content) in self.towers.iter().zip(contents) {
            match content {
                Some(c) => {
                    let mut v = tower.encode(c);
                    ops::scale(scale, &mut v);
                    out.extend_from_slice(&v);
                }
                None => out.extend(std::iter::repeat_n(0.0, tower.dim())),
            }
        }
        ops::normalize(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{ImageData, VisualEncoder};
    use crate::text::HashingTextEncoder;

    fn encoder() -> JointEncoder {
        JointEncoder::new(vec![
            Arc::new(HashingTextEncoder::new(16, 1)),
            Arc::new(VisualEncoder::new(8, 12, 1)),
        ])
    }

    #[test]
    fn dim_is_sum_of_towers() {
        assert_eq!(encoder().dim(), 28);
        assert_eq!(encoder().arity(), 2);
    }

    #[test]
    fn encodes_complete_object() {
        let e = encoder();
        let v = e.encode(&[
            Some(RawContent::text("foggy clouds")),
            Some(RawContent::Image(ImageData::new(vec![0.3; 8]))),
        ]);
        assert_eq!(v.len(), 28);
        assert!((ops::norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn missing_modality_becomes_zero_block() {
        let e = encoder();
        let v = e.encode(&[Some(RawContent::text("foggy clouds")), None]);
        assert!(v[16..].iter().all(|&x| x == 0.0));
        // text block still carries signal
        assert!(v[..16].iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        encoder().encode(&[Some(RawContent::text("x"))]);
    }
}
