//! Text encoders: feature-hashing bag-of-n-grams and an order-sensitive
//! LSTM stand-in.

use crate::project::{splitmix64, ProjectionMatrix};
use crate::traits::{Encoder, RawContent};
use mqa_vector::{ops, Dim, ModalityKind};

/// Size of the virtual hashed feature space for bag-of-n-grams.
const HASH_SPACE: usize = 1 << 20;

/// Function words carrying no retrieval signal. Real text encoders learn
/// to ignore these; the synthetic ones filter them so a conversational
/// request ("could you assist me in finding images of …") embeds near the
/// content words it shares with a caption.
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "with", "and", "or", "is", "are", "be",
    "it", "its", "this", "that", "these", "those", "i", "you", "me", "my", "your", "we", "would",
    "could", "can", "will", "shall", "please", "like", "want", "need", "some", "any", "more",
    "most", "one", "ones", "do", "does", "did", "have", "has", "had", "find", "finding", "show",
    "locate", "assist", "help", "provide", "get", "give", "images", "image", "pictures", "picture",
    "photos", "photo", "similar", "type", "so", "very", "such", "as", "by", "from", "about",
];

/// Lowercases, splits into alphanumeric tokens, and drops stopwords.
pub(crate) fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && !STOPWORDS.contains(t))
        .map(str::to_string)
        // ALLOC: per-query token list, bounded by the query text length.
        .collect()
}

fn token_hash(seed: u64, token: &str) -> u64 {
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    for b in token.as_bytes() {
        h = splitmix64(h ^ *b as u64);
    }
    h
}

/// Bag-of-1–2-grams text encoder with feature hashing and random projection.
///
/// Stands in for bag-of-words / sentence-embedding text models: texts that
/// share vocabulary encode to nearby vectors; the 2-grams add mild phrase
/// sensitivity. Output is unit-normalized.
#[derive(Debug, Clone)]
pub struct HashingTextEncoder {
    name: String,
    proj: ProjectionMatrix,
    seed: u64,
}

impl HashingTextEncoder {
    /// Creates an encoder with output dimensionality `dim`, deterministic in
    /// `seed`.
    pub fn new(dim: Dim, seed: u64) -> Self {
        Self {
            name: "hashing-text".to_string(),
            proj: ProjectionMatrix::new(splitmix64(seed), dim, HASH_SPACE),
            seed,
        }
    }

    /// Renames the encoder (used when registering aligned CLIP-side text
    /// towers under distinct panel names).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn sparse_features(&self, text: &str) -> Vec<(u32, f32)> {
        let tokens = tokenize(text);
        // ALLOC: per-query sparse-feature list, bounded by the token count.
        let mut feats = Vec::with_capacity(tokens.len() * 2);
        for t in &tokens {
            feats.push(((token_hash(self.seed, t) as usize % HASH_SPACE) as u32, 1.0));
        }
        for pair in tokens.windows(2) {
            // INVARIANT: windows(2) yields exactly-2-element slices, and
            // HASH_SPACE is a non-zero const.
            // ALLOC: per-query bigram key, bounded by the token count.
            let bigram = format!("{} {}", pair[0], pair[1]);
            feats.push((
                (token_hash(self.seed, &bigram) as usize % HASH_SPACE) as u32,
                0.5,
            ));
        }
        feats
    }
}

impl Encoder for HashingTextEncoder {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModalityKind {
        ModalityKind::Text
    }

    fn dim(&self) -> Dim {
        self.proj.rows()
    }

    fn encode(&self, input: &RawContent) -> Vec<f32> {
        let text = match input {
            RawContent::Text(t) | RawContent::Audio(t) => t,
            other => panic!("text encoder fed {:?} content", other.kind()),
        };
        // ALLOC: per-query embedding buffer, bounded by the schema's modality dim.
        let mut out = vec![0.0f32; self.dim()];
        self.proj
            .project_sparse(&self.sparse_features(text), &mut out);
        ops::normalize(&mut out);
        out
    }
}

/// Order-sensitive recurrent text encoder (LSTM stand-in).
///
/// Maintains a hidden state updated per token:
/// `h ← tanh(0.8·h + e(token))` where `e(token)` is a seeded pseudo-random
/// token embedding. Unlike [`HashingTextEncoder`] the result depends on
/// token *order*, matching the characteristic the paper cites LSTM for.
#[derive(Debug, Clone)]
pub struct LstmTextEncoder {
    dim: Dim,
    seed: u64,
}

impl LstmTextEncoder {
    /// Creates the encoder with output dimensionality `dim`.
    pub fn new(dim: Dim, seed: u64) -> Self {
        assert!(dim > 0, "encoder dimension must be non-zero");
        Self { dim, seed }
    }

    fn token_embedding(&self, token: &str, out: &mut [f32]) {
        let h0 = token_hash(self.seed ^ 0x5151, token);
        for (i, o) in out.iter_mut().enumerate() {
            let h = splitmix64(h0 ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
            *o = ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
        }
    }
}

impl Encoder for LstmTextEncoder {
    fn name(&self) -> &str {
        "lstm-text"
    }

    fn kind(&self) -> ModalityKind {
        ModalityKind::Text
    }

    fn dim(&self) -> Dim {
        self.dim
    }

    fn encode(&self, input: &RawContent) -> Vec<f32> {
        let text = match input {
            RawContent::Text(t) | RawContent::Audio(t) => t,
            other => panic!("text encoder fed {:?} content", other.kind()),
        };
        // ALLOC: per-query recurrent state buffers, bounded by the schema's modality dim.
        let mut state = vec![0.0f32; self.dim];
        let mut embed = vec![0.0f32; self.dim];
        for token in tokenize(text) {
            self.token_embedding(&token, &mut embed);
            for (s, e) in state.iter_mut().zip(&embed) {
                *s = (0.8 * *s + e).tanh();
            }
        }
        ops::normalize(&mut state);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_vector::Metric;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(tokenize("Hello, World! 42"), vec!["hello", "world", "42"]);
        assert!(tokenize("  ...  ").is_empty());
    }

    #[test]
    fn hashing_encoder_is_deterministic() {
        let e = HashingTextEncoder::new(32, 3);
        let a = e.encode(&RawContent::text("foggy clouds over hills"));
        let b = e.encode(&RawContent::text("foggy clouds over hills"));
        assert_eq!(a, b);
    }

    #[test]
    fn shared_vocabulary_is_closer_than_disjoint() {
        let e = HashingTextEncoder::new(64, 3);
        let q = e.encode(&RawContent::text("moldy blue cheese wheel"));
        let near = e.encode(&RawContent::text("a wheel of moldy cheese"));
        let far = e.encode(&RawContent::text("red racing car engine"));
        assert!(Metric::L2.distance(&q, &near) < Metric::L2.distance(&q, &far));
    }

    #[test]
    fn hashing_output_is_unit_norm() {
        let e = HashingTextEncoder::new(48, 9);
        let v = e.encode(&RawContent::text("some words"));
        assert!((ops::norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_encodes_to_zero() {
        let e = HashingTextEncoder::new(16, 1);
        let v = e.encode(&RawContent::text(""));
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn audio_is_accepted_as_transcript() {
        let e = HashingTextEncoder::new(16, 1);
        let t = e.encode(&RawContent::text("long sleeved top"));
        let a = e.encode(&RawContent::Audio("long sleeved top".into()));
        assert_eq!(t, a);
    }

    #[test]
    #[should_panic(expected = "text encoder fed")]
    fn image_input_panics() {
        let e = HashingTextEncoder::new(16, 1);
        e.encode(&RawContent::Image(crate::image::ImageData::new(vec![
            0.0;
            4
        ])));
    }

    #[test]
    fn lstm_is_order_sensitive() {
        let e = LstmTextEncoder::new(32, 5);
        let ab = e.encode(&RawContent::text("dog bites man"));
        let ba = e.encode(&RawContent::text("man bites dog"));
        assert!(Metric::L2.distance(&ab, &ba) > 1e-4);
    }

    #[test]
    fn lstm_still_reflects_content_overlap() {
        let e = LstmTextEncoder::new(64, 5);
        // The recurrent state weights recent tokens most, so the "near"
        // text shares its suffix with the query and differs at the front.
        let q = e.encode(&RawContent::text("dawn foggy clouds"));
        let near = e.encode(&RawContent::text("dusk foggy clouds"));
        let far = e.encode(&RawContent::text("spreadsheet quarterly revenue"));
        assert!(Metric::L2.distance(&q, &near) < Metric::L2.distance(&q, &far));
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let a = HashingTextEncoder::new(32, 1).encode(&RawContent::text("cheese"));
        let b = HashingTextEncoder::new(32, 2).encode(&RawContent::text("cheese"));
        assert_ne!(a, b);
    }
}
