//! Seeded hash-based random projection.
//!
//! All synthetic encoders share this primitive: a virtual `rows × cols`
//! projection matrix whose entries are *computed on demand* from a hash of
//! `(seed, row, col)`. Nothing is materialized, so arbitrarily wide hashed
//! feature spaces (`cols = 2^20` for text) cost only the non-zero inputs.
//!
//! Entries are uniform in `[-1, 1]` scaled by `1/sqrt(rows)`; for random
//! projection purposes sub-gaussian rows preserve distances (the
//! Johnson–Lindenstrauss property) just as well as gaussian ones.

/// SplitMix64: tiny, high-quality 64-bit mixer used to derive matrix
/// entries and token hashes deterministically.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a u64 hash to a uniform f32 in `[-1, 1)`.
#[inline]
fn to_unit(h: u64) -> f32 {
    // take the top 24 bits for a clean mantissa
    let u = (h >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
    2.0 * u - 1.0
}

/// A virtual random projection matrix `R ∈ [-1,1]^{rows × cols} / sqrt(rows)`
/// defined entirely by a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionMatrix {
    seed: u64,
    rows: usize,
    cols: usize,
}

impl ProjectionMatrix {
    /// Creates the virtual matrix for `rows` output dimensions over `cols`
    /// input dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(seed: u64, rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "projection matrix must be non-degenerate"
        );
        Self { seed, rows, cols }
    }

    /// Output dimensionality.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimensionality.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix entry `(i, j)`.
    #[inline]
    pub fn entry(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        let h = splitmix64(
            self.seed
                ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ (j as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        to_unit(h) / (self.rows as f32).sqrt()
    }

    /// `out = R · x` for a *sparse* input given as `(index, value)` pairs.
    ///
    /// # Panics
    /// Panics in debug builds if `out.len() != rows` or any index is out of
    /// range.
    pub fn project_sparse(&self, input: &[(u32, f32)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for &(j, v) in input {
            debug_assert!((j as usize) < self.cols, "sparse index out of range");
            for (i, o) in out.iter_mut().enumerate() {
                *o += v * self.entry(i, j as usize);
            }
        }
    }

    /// `out = R · x` for a dense input.
    ///
    /// # Panics
    /// Panics in debug builds on dimension mismatch.
    pub fn project_dense(&self, input: &[f32], out: &mut [f32]) {
        debug_assert_eq!(input.len(), self.cols, "dense input length mismatch");
        debug_assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (j, &v) in input.iter().enumerate() {
                acc += v * self.entry(i, j);
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_vector::ops;

    #[test]
    fn deterministic_across_instances() {
        let a = ProjectionMatrix::new(7, 8, 100);
        let b = ProjectionMatrix::new(7, 8, 100);
        for i in 0..8 {
            for j in (0..100).step_by(13) {
                assert_eq!(a.entry(i, j), b.entry(i, j));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProjectionMatrix::new(1, 4, 10);
        let b = ProjectionMatrix::new(2, 4, 10);
        let same = (0..4)
            .flat_map(|i| (0..10).map(move |j| (i, j)))
            .filter(|&(i, j)| a.entry(i, j) == b.entry(i, j))
            .count();
        assert!(
            same < 5,
            "seeds should decorrelate entries, got {same} equal"
        );
    }

    #[test]
    fn entries_bounded() {
        let m = ProjectionMatrix::new(3, 16, 50);
        let bound = 1.0 / (16.0f32).sqrt();
        for i in 0..16 {
            for j in 0..50 {
                assert!(m.entry(i, j).abs() <= bound + 1e-6);
            }
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let m = ProjectionMatrix::new(11, 6, 20);
        let mut dense_in = vec![0.0f32; 20];
        dense_in[3] = 1.5;
        dense_in[17] = -0.5;
        let sparse_in = [(3u32, 1.5f32), (17, -0.5)];
        let mut out_d = vec![0.0f32; 6];
        let mut out_s = vec![0.0f32; 6];
        m.project_dense(&dense_in, &mut out_d);
        m.project_sparse(&sparse_in, &mut out_s);
        for (a, b) in out_d.iter().zip(&out_s) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn roughly_preserves_relative_distances() {
        // JL sanity check: nearby inputs stay nearer than far inputs.
        let m = ProjectionMatrix::new(5, 32, 64);
        let base: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 64) as f32 / 64.0) - 0.5)
            .collect();
        let mut near = base.clone();
        near[0] += 0.05;
        let far: Vec<f32> = base.iter().map(|x| -x).collect();
        let mut pb = vec![0.0; 32];
        let mut pn = vec![0.0; 32];
        let mut pf = vec![0.0; 32];
        m.project_dense(&base, &mut pb);
        m.project_dense(&near, &mut pn);
        m.project_dense(&far, &mut pf);
        assert!(ops::l2_sq(&pb, &pn) < ops::l2_sq(&pb, &pf));
    }

    #[test]
    fn projection_of_zero_is_zero() {
        let m = ProjectionMatrix::new(9, 4, 8);
        let mut out = vec![1.0f32; 4];
        m.project_dense(&[0.0; 8], &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
        m.project_sparse(&[], &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }
}
