//! CLIP stand-in: a *pair* of text and image towers with a shared output
//! space and a shared seed.
//!
//! In the real system CLIP gives cross-modal alignment because it was
//! contrastively pretrained. In this reproduction, alignment is a property
//! of the *data generation* process (`mqa-kb` synthesizes captions and image
//! descriptors from the same latent concept), and [`ClipPair`] supplies the
//! matching pair of towers: equal output dimensionality, one configuration
//! seed, so that a knowledge base and its queries are guaranteed to be
//! encoded consistently. This mirrors how the paper's "complex multi-modal
//! encoder" option differs from standalone unimodal encoders: one
//! configuration item produces all modality embeddings.

use crate::image::VisualEncoder;
use crate::text::HashingTextEncoder;
use crate::traits::{Encoder, RawContent};
use mqa_vector::Dim;
use std::sync::Arc;

/// A matched text/image encoder pair sharing one output dimensionality.
#[derive(Clone)]
pub struct ClipPair {
    text: Arc<HashingTextEncoder>,
    image: Arc<VisualEncoder>,
}

impl ClipPair {
    /// Builds the pair: both towers output `dim`-dimensional embeddings;
    /// the image tower accepts `raw_dim`-length descriptors.
    pub fn new(dim: Dim, raw_dim: usize, seed: u64) -> Self {
        Self {
            text: Arc::new(HashingTextEncoder::new(dim, seed).with_name("clip-text")),
            image: Arc::new(
                VisualEncoder::new(raw_dim, dim, seed ^ 0xC11F).with_name("clip-image"),
            ),
        }
    }

    /// The text tower.
    pub fn text_tower(&self) -> Arc<dyn Encoder> {
        Arc::clone(&self.text) as Arc<dyn Encoder>
    }

    /// The image tower.
    pub fn image_tower(&self) -> Arc<dyn Encoder> {
        Arc::clone(&self.image) as Arc<dyn Encoder>
    }

    /// Shared output dimensionality of both towers.
    pub fn dim(&self) -> Dim {
        self.text.dim()
    }

    /// Encodes a caption/image pair into the shared space.
    pub fn encode_pair(
        &self,
        caption: &str,
        image: &crate::image::ImageData,
    ) -> (Vec<f32>, Vec<f32>) {
        (
            self.text.encode(&RawContent::text(caption)),
            self.image.encode(&RawContent::Image(image.clone())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageData;

    #[test]
    fn towers_share_dimension() {
        let pair = ClipPair::new(48, 24, 7);
        assert_eq!(pair.text_tower().dim(), 48);
        assert_eq!(pair.image_tower().dim(), 48);
        assert_eq!(pair.dim(), 48);
    }

    #[test]
    fn tower_names_identify_clip() {
        let pair = ClipPair::new(8, 8, 7);
        assert_eq!(pair.text_tower().name(), "clip-text");
        assert_eq!(pair.image_tower().name(), "clip-image");
    }

    #[test]
    fn encode_pair_produces_both_embeddings() {
        let pair = ClipPair::new(16, 8, 7);
        let (t, i) = pair.encode_pair("foggy clouds", &ImageData::new(vec![0.2; 8]));
        assert_eq!(t.len(), 16);
        assert_eq!(i.len(), 16);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ClipPair::new(16, 8, 7);
        let b = ClipPair::new(16, 8, 7);
        let img = ImageData::new(vec![0.1; 8]);
        assert_eq!(a.encode_pair("x", &img), b.encode_pair("x", &img));
    }
}
