//! # mqa-encoders
//!
//! Embedding encoders for multi-modal content, with the *universal vector
//! support* the MQA configuration panel exposes: any encoder that turns raw
//! content into a fixed-dimension `f32` vector can be plugged into the
//! Vector Representation component.
//!
//! ## Substitution note (see DESIGN.md §2)
//!
//! The paper wires real pretrained models (CLIP, ResNet, LSTM) through this
//! interface. In this reproduction the encoders are **deterministic
//! synthetic models** built on feature hashing and seeded random
//! projections. They preserve the two geometric properties the downstream
//! techniques rely on:
//!
//! 1. *Semantic locality* — content about the same latent concept encodes to
//!    nearby vectors (token overlap for text, shared raw features for
//!    images);
//! 2. *Cross-modal alignment* (the CLIP pair) — text and image encoders can
//!    share a projection target so that matching captions and pictures land
//!    close in a common space.
//!
//! ## Encoders
//!
//! | name | stands in for | input | mechanism |
//! |---|---|---|---|
//! | [`HashingTextEncoder`] | bag-of-words text models | text | hashed 1–2-grams → random projection |
//! | [`LstmTextEncoder`] | LSTM sentence encoders | text | token-chained state updates (order-sensitive) |
//! | [`VisualEncoder`] | ResNet | image | dense random projection + tanh of raw descriptors |
//! | [`ClipPair`] | CLIP | text+image | aligned text/image projections into one space |
//! | [`JointEncoder`] | joint-embedding models (JE baseline) | whole object | weighted concatenation of per-modality encodings |
//!
//! All encoders are pure functions of `(seed, input)` — two processes with
//! the same configuration produce bit-identical embeddings, which keeps the
//! experiment harness reproducible.

pub mod clip;
pub mod image;
pub mod joint;
pub mod project;
pub mod registry;
pub mod text;
pub mod traits;

pub use clip::ClipPair;
pub use image::{ImageData, VisualEncoder};
pub use joint::JointEncoder;
pub use project::ProjectionMatrix;
pub use registry::{EncoderChoice, EncoderRegistry};
pub use text::{HashingTextEncoder, LstmTextEncoder};
pub use traits::{Encoder, RawContent};
