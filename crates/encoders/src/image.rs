//! Image content and the visual encoder (ResNet stand-in).

use crate::project::ProjectionMatrix;
use crate::traits::{Encoder, RawContent};
use mqa_vector::{ops, Dim, ModalityKind};
use serde::{Deserialize, Serialize};

/// A synthetic image: a dense raw visual descriptor, standing in for pixel
/// content after standard preprocessing.
///
/// The knowledge-base generators (`mqa-kb`) synthesize these descriptors
/// from latent concepts, and the generative baseline (`mqa-llm`) produces
/// them from text — both only need "a dense vector a visual encoder can
/// consume", which is exactly what real preprocessing pipelines hand to a
/// CNN backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageData {
    features: Vec<f32>,
}

impl ImageData {
    /// Wraps a raw descriptor.
    ///
    /// # Panics
    /// Panics if the descriptor is empty.
    pub fn new(features: Vec<f32>) -> Self {
        assert!(!features.is_empty(), "image descriptor must be non-empty");
        Self { features }
    }

    /// The raw descriptor.
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Descriptor length.
    pub fn raw_dim(&self) -> usize {
        self.features.len()
    }
}

/// Dense visual encoder: random projection of the raw descriptor followed
/// by a `tanh` nonlinearity and unit normalization. Stands in for a ResNet
/// image tower.
#[derive(Debug, Clone)]
pub struct VisualEncoder {
    name: String,
    proj: ProjectionMatrix,
    raw_dim: usize,
}

impl VisualEncoder {
    /// Creates an encoder mapping `raw_dim`-length descriptors to `dim`
    /// dimensional embeddings, deterministic in `seed`.
    pub fn new(raw_dim: usize, dim: Dim, seed: u64) -> Self {
        Self {
            name: "visual-resnet".to_string(),
            proj: ProjectionMatrix::new(seed ^ 0xD1E5_EAB1, dim, raw_dim),
            raw_dim,
        }
    }

    /// Renames the encoder (for the CLIP image tower).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The raw descriptor length this encoder accepts.
    pub fn raw_dim(&self) -> usize {
        self.raw_dim
    }
}

impl Encoder for VisualEncoder {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModalityKind {
        ModalityKind::Image
    }

    fn dim(&self) -> Dim {
        self.proj.rows()
    }

    fn encode(&self, input: &RawContent) -> Vec<f32> {
        let img = match input {
            RawContent::Image(img) => img,
            other => panic!("visual encoder fed {:?} content", other.kind()),
        };
        assert_eq!(
            img.raw_dim(),
            self.raw_dim,
            "descriptor length {} does not match encoder raw_dim {}",
            img.raw_dim(),
            self.raw_dim
        );
        // ALLOC: per-query embedding buffer, bounded by the schema's modality dim.
        let mut out = vec![0.0f32; self.dim()];
        self.proj.project_dense(img.features(), &mut out);
        for x in &mut out {
            *x = x.tanh();
        }
        ops::normalize(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_rng::StdRng;
    use mqa_vector::Metric;

    fn random_image(rng: &mut StdRng, dim: usize) -> ImageData {
        ImageData::new((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn deterministic() {
        let e = VisualEncoder::new(16, 8, 1);
        let img = ImageData::new(vec![0.5; 16]);
        assert_eq!(
            e.encode(&RawContent::Image(img.clone())),
            e.encode(&RawContent::Image(img))
        );
    }

    #[test]
    fn similar_descriptors_stay_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = VisualEncoder::new(32, 16, 1);
        let base = random_image(&mut rng, 32);
        let mut near_feats = base.features().to_vec();
        near_feats[0] += 0.01;
        let near = ImageData::new(near_feats);
        let far = random_image(&mut rng, 32);
        let vb = e.encode(&RawContent::Image(base));
        let vn = e.encode(&RawContent::Image(near));
        let vf = e.encode(&RawContent::Image(far));
        assert!(Metric::L2.distance(&vb, &vn) < Metric::L2.distance(&vb, &vf));
    }

    #[test]
    fn output_unit_norm() {
        let e = VisualEncoder::new(8, 4, 9);
        let v = e.encode(&RawContent::Image(ImageData::new(vec![1.0; 8])));
        assert!((mqa_vector::ops::norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "descriptor length")]
    fn wrong_raw_dim_panics() {
        let e = VisualEncoder::new(8, 4, 9);
        e.encode(&RawContent::Image(ImageData::new(vec![1.0; 7])));
    }

    #[test]
    #[should_panic(expected = "visual encoder fed")]
    fn text_input_panics() {
        let e = VisualEncoder::new(8, 4, 9);
        e.encode(&RawContent::text("not an image"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_descriptor_panics() {
        ImageData::new(vec![]);
    }

    #[test]
    fn serde_round_trip() {
        let img = ImageData::new(vec![1.0, -0.5]);
        let j = serde_json::to_string(&img).unwrap();
        let back: ImageData = serde_json::from_str(&j).unwrap();
        assert_eq!(img, back);
    }
}
