//! The universal encoder interface and raw-content model.

use mqa_vector::{Dim, ModalityKind};
use serde::{Deserialize, Serialize};

/// Raw multi-modal content before vectorization.
///
/// Text and audio carry natural language (the paper's audio inputs are
/// transcribed before encoding, so both are token streams here); images
/// carry a dense raw-feature descriptor (see
/// [`crate::image::ImageData`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RawContent {
    /// Natural-language text.
    Text(String),
    /// An image as a raw visual descriptor.
    Image(crate::image::ImageData),
    /// An audio clip, represented by its transcript.
    Audio(String),
}

impl RawContent {
    /// The modality kind of this content.
    pub fn kind(&self) -> ModalityKind {
        match self {
            RawContent::Text(_) => ModalityKind::Text,
            RawContent::Image(_) => ModalityKind::Image,
            RawContent::Audio(_) => ModalityKind::Audio,
        }
    }

    /// Convenience constructor for text content.
    pub fn text(s: impl Into<String>) -> Self {
        RawContent::Text(s.into())
    }
}

/// A model that embeds raw content of one modality kind into a
/// fixed-dimension vector space.
///
/// Implementations must be pure: the same input always encodes to the same
/// vector. All workspace encoders are also cheap enough to call inline
/// during query execution.
pub trait Encoder: Send + Sync {
    /// Model name as shown in the configuration and status panels
    /// (e.g. `"hashing-text"`, `"clip-image"`).
    fn name(&self) -> &str;

    /// The modality kind this encoder accepts.
    fn kind(&self) -> ModalityKind;

    /// Output dimensionality.
    fn dim(&self) -> Dim;

    /// Encodes `input` into a `dim()`-length vector.
    ///
    /// # Panics
    /// Implementations panic if `input.kind()` does not match
    /// [`Encoder::kind`] — feeding an image to a text encoder is a wiring
    /// bug, not a runtime condition.
    fn encode(&self, input: &RawContent) -> Vec<f32>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_content_kind() {
        assert_eq!(RawContent::text("hi").kind(), ModalityKind::Text);
        assert_eq!(RawContent::Audio("hi".into()).kind(), ModalityKind::Audio);
    }
}
