//! **E5 — Recall vs QPS frontier: MUST vs MR vs JE.**
//!
//! The quantitative backing for the paper's accuracy+efficiency claim.
//! Sweeps the search beam width `ef` and reports, per framework, semantic
//! recall@10 (concept ground truth) and query throughput on the round-2
//! style multi-modal workload (text + reference image). Expected shape:
//! MUST dominates the frontier — at matched recall it answers with one
//! graph traversal where MR pays one per modality, and JE saturates below
//! the others because equal weighting misranks.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_recall_qps [-- --quick]
//! ```

use mqa_bench::{build_frameworks, encode, SetupParams, Table};
use mqa_encoders::RawContent;
use mqa_kb::{recall_at_k, DatasetSpec, WorkloadSpec};
use mqa_retrieval::{MultiModalQuery, RetrievalFramework};

const K: usize = 10;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, queries) = if quick { (2_000, 80) } else { (20_000, 300) };
    let params = SetupParams {
        spec: DatasetSpec::weather()
            .objects(objects)
            .concepts(100)
            .styles(4)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    };
    println!(
        "E5: {objects} objects, {queries} multi-modal queries, k={K}, index={}\n",
        params.algo.name()
    );
    let enc = encode(&params);
    let fws = build_frameworks(&enc, &params.algo);
    println!(
        "build times: MUST {:.2}s, MR {:.2}s, JE {:.2}s\n",
        fws.build_times[0].as_secs_f64(),
        fws.build_times[1].as_secs_f64(),
        fws.build_times[2].as_secs_f64()
    );

    // Multi-modal workload: concept text + a same-concept reference image.
    let workload = WorkloadSpec::new(queries, 555).generate(&enc.info);
    let queries_mm: Vec<(MultiModalQuery, u32)> = workload
        .cases
        .iter()
        .map(|case| {
            let member = enc.gt.members(case.concept)[0];
            let img = match enc.corpus.kb().get(member).content(1) {
                Some(RawContent::Image(i)) => i.clone(),
                _ => unreachable!(),
            };
            (
                MultiModalQuery::text_and_image(&case.round2_text, img),
                case.concept,
            )
        })
        .collect();

    let mut table = Table::new(&["framework", "ef", "recall@10", "QPS", "evals/query"]);
    let frameworks: [(&str, &dyn RetrievalFramework); 3] =
        [("MUST", &fws.must), ("MR", &fws.mr), ("JE", &fws.je)];
    for (name, fw) in frameworks {
        for ef in [16usize, 32, 64, 128, 256] {
            let t0 = std::time::Instant::now();
            let mut recall = 0.0f64;
            let mut evals = 0u64;
            for (q, concept) in &queries_mm {
                let out = fw.search(q, K, ef);
                evals += out.stats.evals;
                recall += recall_at_k(&enc.gt, &out.ids(), *concept, K);
            }
            let elapsed = t0.elapsed().as_secs_f64();
            table.row(vec![
                name.to_string(),
                ef.to_string(),
                format!("{:.3}", recall / queries_mm.len() as f64),
                format!("{:.0}", queries_mm.len() as f64 / elapsed),
                format!("{:.0}", evals as f64 / queries_mm.len() as f64),
            ]);
        }
    }
    table.print();
}
