//! **E6 — Vector weight learning ablation.**
//!
//! Sweeps the modality-noise asymmetry of the corpus and compares four
//! weight configurations on exact fused retrieval (no graph, so the effect
//! of *weights alone* is measured):
//!
//! * `learned`  — contrastive vector weight learning (the paper's model);
//! * `uniform`  — equal weights (what JE/MR implicitly assume);
//! * `oracle`   — the best of a weight grid, evaluated on the workload
//!   itself (an upper reference, not a deployable setting);
//! * `user`     — a plausible hand-set override `[1.5, 0.5]`.
//!
//! Expected shape: learned ≈ oracle ≥ user > uniform, with the uniform gap
//! widening as the modalities become more asymmetric.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_weights [-- --quick]
//! ```

use mqa_bench::Table;
use mqa_encoders::EncoderRegistry;
use mqa_kb::{recall_at_k, DatasetSpec, GroundTruth, WorkloadSpec};
use mqa_retrieval::{EncodedCorpus, EncoderSet, MultiModalQuery};
use mqa_vector::{Metric, MultiVector, Weights};
use mqa_weights::WeightLearner;
use std::sync::Arc;

const K: usize = 10;

/// Exact fused recall of a weight setting over a text+image workload.
fn recall_with(
    corpus: &Arc<EncodedCorpus>,
    gt: &GroundTruth,
    queries: &[(MultiVector, u32)],
    weights: &Weights,
) -> f64 {
    use mqa_graph::unified::FusedDistance;
    use mqa_graph::{flat::FlatSearcher, GraphSearcher};
    let flat = FlatSearcher::new(corpus.store().len());
    let mut total = 0.0;
    for (qv, concept) in queries {
        let mut dist = FusedDistance::new(corpus.store(), qv, weights, Metric::L2);
        let out = flat.search(&mut dist, K, K);
        total += recall_at_k(gt, &out.ids(), *concept, K);
    }
    total / queries.len() as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, n_queries) = if quick { (1_000, 60) } else { (5_000, 200) };
    println!("E6: {objects} objects, {n_queries} multi-modal queries, exact fused search, k={K}\n");

    let mut table = Table::new(&[
        "caption noise",
        "image noise",
        "learned w",
        "learned",
        "uniform",
        "oracle",
        "user [1.5,0.5]",
    ]);
    // Sweep from image-favourable to text-favourable asymmetry. Noise
    // levels are high enough that neither modality alone is perfect, so
    // the fused weighting itself carries the recall difference.
    for (cap_noise, img_noise) in [
        (0.02, 1.60),
        (0.30, 1.20),
        (0.60, 0.80),
        (0.85, 0.40),
        (0.95, 0.25),
    ] {
        let (kb, info) = DatasetSpec::weather()
            .objects(objects)
            .concepts(240)
            .styles(3)
            .caption_noise(cap_noise)
            .image_noise(img_noise)
            .seed(99)
            .generate_with_info();
        let gt = GroundTruth::build(&kb);
        let registry = EncoderRegistry::new(0);
        let schema = kb.schema().clone();
        let encoders = EncoderSet::default_for(&registry, &schema, 48);
        let corpus = Arc::new(EncodedCorpus::encode(kb, encoders));
        let labels = corpus.concept_labels().unwrap();
        let learned = WeightLearner::default()
            .learn(corpus.store(), &labels)
            .weights;

        // Workload: round-2-style text + reference image queries.
        let workload = WorkloadSpec::new(n_queries, 31).generate(&info);
        let queries: Vec<(MultiVector, u32)> = workload
            .cases
            .iter()
            .map(|case| {
                let member = gt.members(case.concept)[1 % gt.members(case.concept).len()];
                let img = match corpus.kb().get(member).content(1) {
                    Some(mqa_encoders::RawContent::Image(i)) => i.clone(),
                    _ => unreachable!(),
                };
                let q = MultiModalQuery::text_and_image(&case.round2_text, img);
                (corpus.encoders().encode_query(&q), case.concept)
            })
            .collect();

        let r_learned = recall_with(&corpus, &gt, &queries, &learned);
        let r_uniform = recall_with(&corpus, &gt, &queries, &Weights::uniform(2));
        let r_user = recall_with(&corpus, &gt, &queries, &Weights::normalized(&[1.5, 0.5]));
        // Oracle: best of an 11-point weight grid.
        let mut r_oracle = 0.0f64;
        for i in 0..=10 {
            let wt = i as f32 / 10.0;
            if wt == 0.0 && i == 0 {
                // avoid the all-zero corner for the other modality too
            }
            let w = Weights::normalized(&[wt.max(0.01), (1.0 - wt).max(0.01)]);
            r_oracle = r_oracle.max(recall_with(&corpus, &gt, &queries, &w));
        }

        table.row(vec![
            format!("{cap_noise:.2}"),
            format!("{img_noise:.2}"),
            format!(
                "[{:.2},{:.2}]",
                learned.as_slice()[0],
                learned.as_slice()[1]
            ),
            format!("{r_learned:.3}"),
            format!("{r_uniform:.3}"),
            format!("{r_oracle:.3}"),
            format!("{r_user:.3}"),
        ]);
    }
    table.print();
    println!("\nshape check: learned tracks oracle; uniform degrades as asymmetry grows.");
}
