//! **E13 — Shared page cache: capacity × workers sweep.**
//!
//! A Vamana graph behind the Starling paged layout with a simulated
//! 200 µs device read per distinct page, searched through the worker
//! pool with a shared [`mqa_cache::PageCache`] at several capacities.
//! Each cell runs the query set twice on a fresh cache:
//!
//! - **cold** — the cache starts empty. At small capacities this tracks
//!   the uncached index (evictions force re-reads); at large capacities
//!   cross-query page sharing already absorbs reads mid-pass.
//! - **warm** — repeat queries touch resident pages; device reads drop
//!   by the factor the capacity can absorb, and the per-query latency
//!   tail collapses with them.
//!
//! Results are bit-identical in every regime — the cache only decides
//! where a page touch is served from, never what search returns.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_cache [-- --quick]
//! ```
//!
//! Writes the final obs snapshot to `results/exp_cache.json`.

use mqa_bench::Table;
use mqa_cache::PageCache;
use mqa_engine::WorkerPool;
use mqa_graph::starling::{DeviceProfile, LayoutStrategy, PageLayout, PagedIndex};
use mqa_graph::FlatDistance;
use mqa_rng::StdRng;
use mqa_vector::{Metric, VectorStore};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const K: usize = 10;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

fn random_store(n: usize, dim: usize, seed: u64) -> Arc<VectorStore> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = VectorStore::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    Arc::new(s)
}

/// One pass of the query set through the pool. Returns per-query
/// latencies (µs) and the total distinct device page reads.
fn run_pass(
    paged: &Arc<PagedIndex>,
    store: &Arc<VectorStore>,
    query_vecs: &Arc<Vec<Vec<f32>>>,
    workers: usize,
) -> (Vec<u64>, u64) {
    let queries = query_vecs.len();
    let tallies: Arc<Mutex<(Vec<u64>, u64)>> =
        Arc::new(Mutex::new((Vec::with_capacity(queries), 0)));
    {
        let pool = WorkerPool::new(workers, 2 * queries);
        for qi in 0..queries {
            let paged = Arc::clone(paged);
            let store = Arc::clone(store);
            let query_vecs = Arc::clone(query_vecs);
            let tallies = Arc::clone(&tallies);
            let submitted = pool.submit(Box::new(move |scratch| {
                let sw = mqa_obs::Stopwatch::start();
                if let Ok(mut dist) = FlatDistance::new(&store, &query_vecs[qi], Metric::L2) {
                    let out = paged.search_paged_with(&mut dist, K, 32, scratch);
                    assert!(!out.results.is_empty());
                    let us = sw.elapsed_us();
                    if let Ok(mut t) = tallies.lock() {
                        t.0.push(us);
                        t.1 += out.stats.pages_read;
                    }
                }
            }));
            assert!(submitted.is_ok(), "pool refused work mid-benchmark");
        }
        // Dropping the pool drains the queue and joins the workers.
    }
    let (mut lats, reads) = match Arc::try_unwrap(tallies) {
        Ok(m) => m.into_inner().unwrap_or_else(|p| p.into_inner()),
        Err(_) => unreachable!("workers joined; no other owner remains"),
    };
    lats.sort_unstable();
    (lats, reads)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, queries) = if quick { (1_500, 48) } else { (6_000, 120) };
    let dim = 16;
    let capacities: &[usize] = if quick {
        &[64, PageCache::DEFAULT_CAPACITY]
    } else {
        &[64, 512, PageCache::DEFAULT_CAPACITY]
    };
    println!(
        "E13: shared page cache, capacity x workers sweep{}\n",
        if quick { " (quick)" } else { "" }
    );

    let store = random_store(n, dim, 42);
    let nav = mqa_graph::vamana::build(&store, Metric::L2, 16, 48, 1.2, 7);
    let layout = PageLayout::build(nav.graph(), 8, LayoutStrategy::BfsCluster);
    let device = DeviceProfile::with_read_latency(Duration::from_micros(200));
    let mut rng = StdRng::seed_from_u64(99);
    let query_vecs: Arc<Vec<Vec<f32>>> = Arc::new(
        (0..queries)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect(),
    );

    let mut table = Table::new(&[
        "capacity",
        "workers",
        "cold p50 µs",
        "cold p99 µs",
        "warm p50 µs",
        "warm p99 µs",
        "cold reads",
        "warm reads",
        "reduction",
    ]);
    for &capacity in capacities {
        for workers in WORKER_SWEEP {
            // A fresh cache per cell: the first pass starts cold, the
            // second replays the same queries against whatever survived.
            let cache = Arc::new(PageCache::new(capacity));
            let paged = Arc::new(
                PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout.clone())
                    .with_device(device)
                    .with_page_cache(Arc::clone(&cache)),
            );
            let (cold_lat, cold_reads) = run_pass(&paged, &store, &query_vecs, workers);
            let (warm_lat, warm_reads) = run_pass(&paged, &store, &query_vecs, workers);
            table.row(vec![
                capacity.to_string(),
                workers.to_string(),
                quantile(&cold_lat, 0.5).to_string(),
                quantile(&cold_lat, 0.99).to_string(),
                quantile(&warm_lat, 0.5).to_string(),
                quantile(&warm_lat, 0.99).to_string(),
                cold_reads.to_string(),
                warm_reads.to_string(),
                format!("{:.1}x", cold_reads as f64 / (warm_reads.max(1)) as f64),
            ]);
        }
    }
    table.print();

    let out = std::path::Path::new("results/exp_cache.json");
    match mqa_bench::write_snapshot(out) {
        Ok(()) => println!("\nobs snapshot -> {}", out.display()),
        Err(e) => {
            eprintln!("writing snapshot failed: {e}");
            std::process::exit(1);
        }
    }
}
