//! **E12 — Concurrent query throughput: the worker-pool engine.**
//!
//! Two workloads, each swept over 1/2/4 engine workers:
//!
//! 1. **I/O-bound paged search** — a Vamana graph behind the Starling
//!    paged layout with a simulated device latency per distinct page read.
//!    Latency-dominated search is exactly what the pool overlaps: with the
//!    device stalling one worker, another walks its own beam, so QPS
//!    scales with workers even on one core.
//! 2. **End-to-end MUST retrieval** — real multi-modal queries through a
//!    [`mqa_engine::QueryEngine`] over the MUST framework (CPU-bound; on a
//!    single core this measures pool overhead and p50/p99 tail shape from
//!    the `engine.query.latency_us` histogram rather than speedup).
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_concurrent [-- --quick]
//! ```
//!
//! Writes the final obs snapshot to `results/exp_concurrent.json`.

use mqa_bench::{build_must_with, encode, SetupParams, Table};
use mqa_engine::{EngineOptions, QueryEngine, WorkerPool};
use mqa_graph::starling::{DeviceProfile, LayoutStrategy, PageLayout, PagedIndex};
use mqa_graph::FlatDistance;
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_retrieval::MultiModalQuery;
use mqa_rng::StdRng;
use mqa_vector::{Metric, VectorStore};
use std::sync::Arc;
use std::time::Duration;

const K: usize = 10;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

fn random_store(n: usize, dim: usize, seed: u64) -> Arc<VectorStore> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = VectorStore::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    Arc::new(s)
}

/// Workload 1: paged search with a simulated per-page read latency.
fn paged_io_sweep(quick: bool, table: &mut Table) {
    let (n, queries) = if quick { (1_500, 48) } else { (6_000, 120) };
    let dim = 16;
    let store = random_store(n, dim, 42);
    let nav = mqa_graph::vamana::build(&store, Metric::L2, 16, 48, 1.2, 7);
    let layout = PageLayout::build(nav.graph(), 8, LayoutStrategy::BfsCluster);
    let device = DeviceProfile::with_read_latency(Duration::from_micros(200));
    let paged = Arc::new(
        PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout).with_device(device),
    );
    let mut rng = StdRng::seed_from_u64(99);
    let query_vecs: Arc<Vec<Vec<f32>>> = Arc::new(
        (0..queries)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect(),
    );

    let mut baseline_qps = 0.0f64;
    for workers in WORKER_SWEEP {
        let sw = mqa_obs::Stopwatch::start();
        {
            let pool = WorkerPool::new(workers, 2 * queries);
            for qi in 0..queries {
                let paged = Arc::clone(&paged);
                let store = Arc::clone(&store);
                let query_vecs = Arc::clone(&query_vecs);
                let submitted = pool.submit(Box::new(move |scratch| {
                    if let Ok(mut dist) = FlatDistance::new(&store, &query_vecs[qi], Metric::L2) {
                        let out = paged.search_paged_with(&mut dist, K, 32, scratch);
                        assert!(!out.results.is_empty());
                    }
                }));
                assert!(submitted.is_ok(), "pool refused work mid-benchmark");
            }
            // Dropping the pool drains the queue and joins the workers.
        }
        let elapsed_s = sw.elapsed_us() as f64 / 1e6;
        let qps = queries as f64 / elapsed_s;
        if workers == 1 {
            baseline_qps = qps;
        }
        table.row(vec![
            "paged-io".to_string(),
            workers.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / baseline_qps),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
}

/// Workload 2: end-to-end MUST retrieval through the engine.
fn must_engine_sweep(quick: bool, table: &mut Table) {
    let (objects, queries) = if quick { (1_200, 60) } else { (4_000, 150) };
    let params = SetupParams {
        spec: DatasetSpec::weather()
            .objects(objects)
            .concepts(40)
            .styles(4)
            .caption_noise(0.3)
            .image_noise(0.15)
            .seed(2025),
        ..SetupParams::default()
    };
    let enc = encode(&params);
    let must = Arc::new(build_must_with(
        &enc,
        enc.learned.weights.clone(),
        &params.algo,
    ));
    let workload = WorkloadSpec::new(queries, 777).generate(&enc.info);
    let qs: Vec<MultiModalQuery> = workload
        .cases
        .iter()
        .map(|case| MultiModalQuery::text(&case.round1_text))
        .collect();

    let mut baseline_qps = 0.0f64;
    for workers in WORKER_SWEEP {
        mqa_obs::global().reset();
        let engine = QueryEngine::new(
            Arc::<mqa_retrieval::MustFramework>::clone(&must),
            EngineOptions::with_workers(workers),
        );
        let sw = mqa_obs::Stopwatch::start();
        let outs = match engine.retrieve_batch(qs.clone(), K, 64) {
            Ok(outs) => outs,
            Err(e) => {
                eprintln!("engine refused the batch: {e}");
                std::process::exit(1);
            }
        };
        let elapsed_s = sw.elapsed_us() as f64 / 1e6;
        assert_eq!(outs.len(), qs.len());
        let qps = qs.len() as f64 / elapsed_s;
        if workers == 1 {
            baseline_qps = qps;
        }
        let lat = mqa_obs::histogram("engine.query.latency_us");
        table.row(vec![
            "must-e2e".to_string(),
            workers.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / baseline_qps),
            format!("{}", lat.quantile(0.5)),
            format!("{}", lat.quantile(0.99)),
        ]);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "E12: concurrent engine throughput at {:?} workers{}\n",
        WORKER_SWEEP,
        if quick { " (quick)" } else { "" }
    );
    let mut table = Table::new(&["workload", "workers", "QPS", "speedup", "p50 µs", "p99 µs"]);
    paged_io_sweep(quick, &mut table);
    must_engine_sweep(quick, &mut table);
    table.print();

    let out = std::path::Path::new("results/exp_concurrent.json");
    match mqa_bench::write_snapshot(out) {
        Ok(()) => println!("\nobs snapshot -> {}", out.display()),
        Err(e) => {
            eprintln!("writing snapshot failed: {e}");
            std::process::exit(1);
        }
    }
}
