//! **F5 — Figure 5 (comparative analysis).**
//!
//! Two-round dialogues under identical query conditions, answered by MUST,
//! MR, JE, and the generative (GPT-4 + DALL·E 2 stand-in) baseline.
//! Reproduces the figure's qualitative claims as statistics:
//!
//! * MUST delivers the best results in both rounds;
//! * MR matches MUST on the text-only round 1 but falls behind on the
//!   multi-modal round 2;
//! * JE underperforms throughout (fixed equal weighting);
//! * the generative baseline's images are not knowledge-base members and
//!   sit measurably farther from real corpus images than real images sit
//!   from each other ("miss a touch of realism").
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin fig5_comparative [-- --quick]
//! ```

use mqa_bench::{build_frameworks, encode, two_round, SetupParams, Table};
use mqa_encoders::RawContent;
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_llm::GenerativeImageModel;
use mqa_retrieval::RetrievalFramework;
use mqa_vector::ops;

const K: usize = 3;
const EF: usize = 64;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, queries) = if quick { (2_000, 60) } else { (10_000, 300) };
    let params = SetupParams {
        spec: DatasetSpec::weather()
            .objects(objects)
            .concepts(80)
            .styles(4)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    };
    println!(
        "F5: {} objects, {} two-round dialogues, k={K}, ef={EF}, index={}",
        objects,
        queries,
        params.algo.name()
    );
    let enc = encode(&params);
    println!(
        "learned weights: {:?} (triplet accuracy {:.2})\n",
        enc.learned.weights.as_slice(),
        enc.learned.triplet_accuracy
    );
    let fws = build_frameworks(&enc, &params.algo);

    let mut table = Table::new(&[
        "framework",
        "round1 recall@3",
        "round2 style-recall@3",
        "good picks",
        "mean latency/round (ms)",
    ]);
    let frameworks: [(&str, &dyn RetrievalFramework); 3] =
        [("MUST", &fws.must), ("MR", &fws.mr), ("JE", &fws.je)];
    for (name, fw) in frameworks {
        let s = two_round(&enc, fw, queries, K, EF, 777);
        table.row(vec![
            name.to_string(),
            format!("{:.3}", s.round1),
            format!("{:.3}", s.round2),
            format!("{:.2}", s.good_picks),
            format!(
                "{:.3}",
                s.elapsed.as_secs_f64() * 1e3 / (2.0 * queries as f64)
            ),
        ]);
    }
    table.print();

    // The generative baseline: per round-1 prompt, synthesize K images and
    // measure (a) knowledge-base membership, (b) the "realism gap" —
    // distance from the generated descriptor to its nearest corpus image,
    // relative to the typical distance between same-style corpus images.
    println!("\ngenerative baseline (GPT-4 + DALL·E-2 stand-in):");
    let raw_dim = enc.corpus.kb().schema().raw_image_dim();
    let generator = GenerativeImageModel::new(0, raw_dim, 0.3);
    let workload = WorkloadSpec::new(queries.min(50), 777).generate(&enc.info);
    let mut members = 0usize;
    let mut total = 0usize;
    let mut gen_nearest = 0.0f64;
    for case in &workload.cases {
        for g in generator.generate_batch(&case.round1_text, K) {
            total += 1;
            let mut nearest = f32::INFINITY;
            let mut exact = false;
            for (_, r) in enc.corpus.kb().iter() {
                if let Some(RawContent::Image(img)) = r.content(1) {
                    let d = ops::l2_sq(g.features(), img.features());
                    nearest = nearest.min(d);
                    exact |= d == 0.0;
                }
            }
            members += exact as usize;
            gen_nearest += nearest as f64;
        }
    }
    // Reference scale: mean distance between two same-style corpus images.
    let mut same_style = 0.0f64;
    let mut pairs = 0usize;
    'outer: for c in 0..10u32 {
        for s in 0..2u32 {
            let m = enc.gt.style_members(c, s);
            if m.len() < 2 {
                continue;
            }
            let img = |id| match enc.corpus.kb().get(id).content(1) {
                Some(RawContent::Image(i)) => i.features().to_vec(),
                _ => unreachable!(),
            };
            same_style += ops::l2_sq(&img(m[0]), &img(m[1])) as f64;
            pairs += 1;
            if pairs >= 40 {
                break 'outer;
            }
        }
    }
    println!("  generated images that are knowledge-base members: {members}/{total}");
    println!(
        "  mean d² to nearest real image: {:.3}  (same-style real pairs: {:.3})",
        gen_nearest / total as f64,
        same_style / pairs as f64
    );
    println!("  → generated outputs are synthetic: never retrievable corpus members,");
    println!("    and geometrically offset from every real image (the realism gap).");
}
