//! **F4 — Figure 4 (interaction scenarios).**
//!
//! (a) *Text-only input*: a vague text request, then two iterative
//!     refinement rounds, each clicking a result and asking for "more of
//!     this type". Measures how recall sharpens round over round.
//! (b) *Image-assisted input*: the user uploads a reference image with a
//!     textual requirement in the first turn.
//!
//! Runs on the full MQA system (coordinator + dialogue sessions), not the
//! bare frameworks, so the query-augmentation path of Figure 2's dotted
//! arrow is what is being measured.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin fig4_interaction [-- --quick]
//! ```

use mqa_bench::Table;
use mqa_core::{Config, MqaSystem, Turn};
use mqa_encoders::RawContent;
use mqa_kb::{recall_at_k, round2_recall_at_k, DatasetSpec, GroundTruth, WorkloadSpec};
use mqa_rng::StdRng;

const K: usize = 5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, dialogues) = if quick { (2_000, 40) } else { (10_000, 200) };
    let (kb, info) = DatasetSpec::weather()
        .objects(objects)
        .concepts(80)
        .styles(4)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(11)
        .generate_with_info();
    let gt = GroundTruth::build(&kb);
    println!("F4: {objects} objects, {dialogues} dialogues per scenario, k={K}\n");
    let system = MqaSystem::build(
        Config {
            k: K,
            ..Config::default()
        },
        kb,
    )
    .expect("builds");
    let workload = WorkloadSpec::new(dialogues, 4242).generate(&info);

    // ── Scenario (a): text-only input, three rounds ──
    let (mut r1, mut r2, mut r3) = (0.0f64, 0.0f64, 0.0f64);
    for case in &workload.cases {
        let mut session = system.open_session();
        let reply1 = session.ask(Turn::text(&case.round1_text)).expect("round 1");
        let ids1: Vec<u32> = reply1.results.iter().map(|r| r.id).collect();
        r1 += recall_at_k(&gt, &ids1, case.concept, K);

        let pick = ids1
            .iter()
            .position(|&id| gt.is_relevant(id, case.concept))
            .unwrap_or(0);
        let picked_id = ids1[pick];
        let style = system.corpus().kb().get(picked_id).style.unwrap();

        let reply2 = session
            .ask(Turn::select_and_text(pick, &case.round2_text))
            .expect("round 2");
        let ids2: Vec<u32> = reply2.results.iter().map(|r| r.id).collect();
        r2 += round2_recall_at_k(&gt, &ids2, picked_id, case.concept, style, K);

        // Round 3: click the best same-style result of round 2 and refine
        // again — recall should not degrade.
        let pick3 = ids2
            .iter()
            .position(|&id| id != picked_id && gt.is_style_relevant(id, case.concept, style))
            .unwrap_or(0);
        let reply3 = session
            .ask(Turn::select_and_text(pick3, &case.round2_text))
            .expect("round 3");
        let ids3: Vec<u32> = reply3.results.iter().map(|r| r.id).collect();
        r3 += round2_recall_at_k(&gt, &ids3, ids2[pick3], case.concept, style, K);
    }
    let n = dialogues as f64;
    let mut ta = Table::new(&["scenario (a) text-only", "metric", "value"]);
    ta.row(vec![
        "round 1".into(),
        "concept recall@5".into(),
        format!("{:.3}", r1 / n),
    ]);
    ta.row(vec![
        "round 2 (click + refine)".into(),
        "style recall@5".into(),
        format!("{:.3}", r2 / n),
    ]);
    ta.row(vec![
        "round 3 (click + refine)".into(),
        "style recall@5".into(),
        format!("{:.3}", r3 / n),
    ]);
    ta.print();

    // ── Scenario (b): image-assisted input ──
    let mut rng = StdRng::seed_from_u64(7);
    let mut rb_style = 0.0f64;
    let mut rb_concept = 0.0f64;
    for case in &workload.cases {
        // The "upload": a random corpus member of the target concept (its
        // photo is what the user happens to have).
        let members = gt.members(case.concept);
        let upload_id = members[rng.gen_range(0..members.len())];
        let style = system.corpus().kb().get(upload_id).style.unwrap();
        let img = match system.corpus().kb().get(upload_id).content(1) {
            Some(RawContent::Image(i)) => i.clone(),
            _ => unreachable!(),
        };
        let mut session = system.open_session();
        let reply = session
            .ask(Turn::text_and_image(&case.round1_text, img))
            .expect("image-assisted turn");
        let ids: Vec<u32> = reply.results.iter().map(|r| r.id).collect();
        rb_concept += recall_at_k(&gt, &ids, case.concept, K);
        rb_style += round2_recall_at_k(&gt, &ids, upload_id, case.concept, style, K);
    }
    let mut tb = Table::new(&["scenario (b) image-assisted", "metric", "value"]);
    tb.row(vec![
        "single round".into(),
        "concept recall@5".into(),
        format!("{:.3}", rb_concept / n),
    ]);
    tb.row(vec![
        "single round".into(),
        "style recall@5 (vs upload)".into(),
        format!("{:.3}", rb_style / n),
    ]);
    println!();
    tb.print();
}
