//! **E9 — Scalability: build time and QPS vs corpus size.**
//!
//! The paper's Scalability feature claims the navigation-graph index keeps
//! retrieval efficient "over a vast knowledge base". This experiment grows
//! the corpus and reports index build time, query throughput, recall
//! against exact fused search, and per-query distance evaluations — the
//! expected shape is near-flat evals/query (logarithmic search) while flat
//! scan cost grows linearly.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_scalability [-- --quick]
//! ```

use mqa_bench::{encode, SetupParams, Table};
use mqa_encoders::RawContent;
use mqa_graph::UnifiedIndex;
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_retrieval::MultiModalQuery;
use mqa_vector::Metric;

const K: usize = 10;
const EF: usize = 64;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[1_000, 2_000, 4_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    let n_queries = if quick { 40 } else { 150 };
    println!("E9: sizes {sizes:?}, {n_queries} queries each, k={K}, ef={EF}\n");

    let mut table = Table::new(&[
        "objects",
        "encode (s)",
        "build (s)",
        "QPS (graph)",
        "evals/query (graph)",
        "QPS (flat exact)",
        "recall@10 vs exact",
    ]);
    for &n in sizes {
        let params = SetupParams {
            spec: DatasetSpec::weather()
                .objects(n)
                .concepts(100.min(n / 20))
                .caption_noise(0.35)
                .image_noise(0.15)
                .seed(2024),
            ..SetupParams::default()
        };
        let t0 = std::time::Instant::now();
        let enc = encode(&params);
        let t_encode = t0.elapsed().as_secs_f64();
        let index = UnifiedIndex::build(
            enc.corpus.store().clone(),
            enc.learned.weights.clone(),
            Metric::L2,
            &params.algo,
        );

        let workload = WorkloadSpec::new(n_queries, 606).generate(&enc.info);
        let queries: Vec<mqa_vector::MultiVector> = workload
            .cases
            .iter()
            .map(|case| {
                let member = enc.gt.members(case.concept)[0];
                let img = match enc.corpus.kb().get(member).content(1) {
                    Some(RawContent::Image(i)) => i.clone(),
                    _ => unreachable!(),
                };
                enc.corpus
                    .encoders()
                    .encode_query(&MultiModalQuery::text_and_image(&case.round2_text, img))
            })
            .collect();

        // Graph search.
        let t0 = std::time::Instant::now();
        let mut evals = 0u64;
        let graph_ids: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| {
                let out = index.search(q, None, K, EF);
                evals += out.output.stats.evals;
                out.ids()
            })
            .collect();
        let t_graph = t0.elapsed().as_secs_f64();

        // Exact fused scan (the no-index baseline the panel also offers).
        let t0 = std::time::Instant::now();
        let exact_ids: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| index.search_exact(q, None, K).ids())
            .collect();
        let t_flat = t0.elapsed().as_secs_f64();

        let mut hits = 0usize;
        for (g, e) in graph_ids.iter().zip(&exact_ids) {
            hits += g.iter().filter(|id| e.contains(id)).count();
        }

        table.row(vec![
            n.to_string(),
            format!("{t_encode:.2}"),
            format!("{:.2}", index.build_time().as_secs_f64()),
            format!("{:.0}", n_queries as f64 / t_graph),
            format!("{:.0}", evals as f64 / n_queries as f64),
            format!("{:.0}", n_queries as f64 / t_flat),
            format!("{:.3}", hits as f64 / (n_queries * K) as f64),
        ]);
    }
    table.print();
    println!("\nshape check: graph evals/query grows far slower than corpus size, so the");
    println!("graph-vs-flat QPS gap widens with scale at held recall.");
}
