//! **E7 — Pluggable navigation-graph comparison + Starling layout.**
//!
//! The configuration panel lets users swap NSG, HNSW, DiskANN (Vamana),
//! the combined MQA-graph, or no index at all; Starling adds a
//! disk-resident page layout. This experiment builds each over the same
//! weighted multi-vector corpus and reports build time, degree, memory,
//! recall@10 against exact search, and QPS. For Starling it additionally
//! reports 4 KiB page reads per query for the BFS-clustered layout vs the
//! naive insertion-order layout at identical search parameters.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_indexes [-- --quick]
//! ```

use mqa_bench::{encode, SetupParams, Table};
use mqa_graph::{
    starling::{LayoutStrategy, PageLayout, PagedIndex},
    FlatDistance, IndexAlgorithm, VectorIndex,
};
use mqa_kb::DatasetSpec;
use mqa_rng::StdRng;

const K: usize = 10;
const EF: usize = 64;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, n_queries) = if quick { (2_000, 50) } else { (20_000, 200) };
    let params = SetupParams {
        spec: DatasetSpec::weather()
            .objects(objects)
            .concepts(100)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    };
    println!("E7: {objects} objects, {n_queries} queries, k={K}, ef={EF}\n");
    let enc = encode(&params);
    // The store every index sees: the weighted concatenation (so graph L2
    // equals the fused weighted distance MUST uses).
    let store = enc.corpus.store().weighted_store(&enc.learned.weights);
    let dim = store.dim();

    // Query vectors: perturbed corpus members (realistic near-data load).
    let mut rng = StdRng::seed_from_u64(42);
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|_| {
            let id = rng.gen_range(0..store.len()) as u32;
            store
                .get(id)
                .iter()
                .map(|x| x + rng.gen_range(-0.05f32..0.05))
                .collect()
        })
        .collect();

    // Exact ground truth from the flat index.
    let flat = VectorIndex::build(store.clone(), mqa_vector::Metric::L2, &IndexAlgorithm::Flat);
    let truth: Vec<Vec<u32>> = queries.iter().map(|q| flat.search(q, K, K).ids()).collect();

    let mut table = Table::new(&[
        "index",
        "build (s)",
        "avg degree",
        "graph+vec MiB",
        "recall@10",
        "QPS",
        "evals/query",
    ]);
    let algos = [
        IndexAlgorithm::Flat,
        IndexAlgorithm::ivf(),
        IndexAlgorithm::hnsw(),
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
        IndexAlgorithm::mqa_graph(),
    ];
    for algo in &algos {
        let idx = VectorIndex::build(store.clone(), mqa_vector::Metric::L2, algo);
        let t0 = std::time::Instant::now();
        let mut hits = 0usize;
        let mut evals = 0u64;
        for (q, t) in queries.iter().zip(&truth) {
            let out = idx.search(q, K, EF);
            evals += out.stats.evals;
            hits += out.ids().iter().filter(|id| t.contains(id)).count();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let mem_mib = (store.bytes() as f64 + idx.avg_degree() * store.len() as f64 * 4.0)
            / (1024.0 * 1024.0);
        table.row(vec![
            algo.name().to_string(),
            format!("{:.2}", idx.build_time().as_secs_f64()),
            format!("{:.1}", idx.avg_degree()),
            format!("{:.1}", mem_mib),
            format!("{:.3}", hits as f64 / (n_queries * K) as f64),
            format!("{:.0}", n_queries as f64 / elapsed),
            format!("{:.0}", evals as f64 / n_queries as f64),
        ]);
    }
    table.print();

    // ── Starling layout ablation on the Vamana graph ──
    println!("\nStarling page-layout ablation (4 KiB pages):");
    let store_arc = std::sync::Arc::new(store.clone());
    let nav = mqa_graph::vamana::build(&store_arc, mqa_vector::Metric::L2, 24, 64, 1.2, 0);
    let per_page = PageLayout::vertices_per_page(dim, 24);
    let mut st = Table::new(&[
        "variant",
        "pages",
        "recall@10",
        "page reads/query",
        "RAM codes",
    ]);
    for strategy in [LayoutStrategy::InsertionOrder, LayoutStrategy::BfsCluster] {
        let layout = PageLayout::build(nav.graph(), per_page, strategy);
        let paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout);
        let mut reads = 0u64;
        let mut hits = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let mut dist = match FlatDistance::new(&store, q, mqa_vector::Metric::L2) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("query construction failed: {e}");
                    std::process::exit(1);
                }
            };
            let out = paged.search_paged(&mut dist, K, EF);
            reads += out.stats.pages_read;
            hits += out.ids().iter().filter(|id| t.contains(id)).count();
        }
        st.row(vec![
            format!("one-phase, {strategy:?}"),
            paged.layout().pages().to_string(),
            format!("{:.3}", hits as f64 / (n_queries * K) as f64),
            format!("{:.1}", reads as f64 / n_queries as f64),
            "—".to_string(),
        ]);
    }
    // Two-phase PQ-routed search: route on in-RAM codes (no I/O), read
    // pages only for the beam's survivors, rerank exactly.
    let layout = PageLayout::build(nav.graph(), per_page, LayoutStrategy::BfsCluster);
    let pq = mqa_graph::PqPagedIndex::build(
        nav.graph().clone(),
        nav.entries().to_vec(),
        layout,
        &store,
        &mqa_vector::PqParams::default(),
    );
    let mut reads = 0u64;
    let mut hits = 0usize;
    for (q, t) in queries.iter().zip(&truth) {
        let out = pq.search_two_phase(q, &store, K, EF);
        reads += out.stats.pages_read;
        hits += out.ids().iter().filter(|id| t.contains(id)).count();
    }
    st.row(vec![
        "two-phase PQ, BfsCluster".to_string(),
        pq.layout().pages().to_string(),
        format!("{:.3}", hits as f64 / (n_queries * K) as f64),
        format!("{:.1}", reads as f64 / n_queries as f64),
        format!("{:.2} MiB", pq.code_bytes() as f64 / 1048576.0),
    ]);
    st.print();
    println!("\nshape check: graph indexes trade small recall loss for large QPS gains over");
    println!("flat; the clustered layout cuts page reads at identical recall; PQ-routed");
    println!("two-phase search cuts them by an order of magnitude at a small recall cost.");
}
