//! **E10 — End-to-end pipeline latency and grounding fidelity.**
//!
//! Builds the full MQA system through the coordinator and reports
//! (a) the per-component build-time breakdown the status panel records,
//! (b) per-turn latency split into retrieval vs answer generation, and
//! (c) the grounding contrast of the Answer Generation component: grounded
//! replies cite only retrieved knowledge-base objects, while LLM-only mode
//! (knowledge ingestion disabled) fabricates attributes — the
//! hallucination failure retrieval augmentation exists to fix.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_pipeline [-- --quick]
//! ```

use mqa_bench::Table;
use mqa_core::{Config, Milestone, MqaSystem, Turn};
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_llm::{LanguageModel, MockChatModel, Prompt};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, n_turns) = if quick { (2_000, 40) } else { (10_000, 200) };
    let (kb, info) = DatasetSpec::weather()
        .objects(objects)
        .concepts(80)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(17)
        .generate_with_info();
    println!("E10: {objects} objects, {n_turns} turns\n");

    let t0 = std::time::Instant::now();
    let system = MqaSystem::build(Config::default(), kb).expect("builds");
    let total_build = t0.elapsed();

    // (a) build-time component breakdown from the status panel.
    let mut tb = Table::new(&["component", "time (ms)", "share"]);
    for m in [
        Milestone::DataPreprocessing,
        Milestone::VectorRepresentation,
        Milestone::IndexConstruction,
    ] {
        let d = system.status().elapsed(m).unwrap_or_default();
        tb.row(vec![
            m.label().to_string(),
            format!("{:.1}", d.as_secs_f64() * 1e3),
            format!(
                "{:.1}%",
                100.0 * d.as_secs_f64() / total_build.as_secs_f64()
            ),
        ]);
    }
    tb.print();
    println!("total build: {:.2}s\n", total_build.as_secs_f64());

    // (b) per-turn latency: retrieval vs answer generation.
    let workload = WorkloadSpec::new(n_turns, 404).generate(&info);
    let mut retrieval_ms = 0.0f64;
    let mut answer_ms = 0.0f64;
    for case in &workload.cases {
        let t0 = std::time::Instant::now();
        let reply = system
            .ask_once(Turn::text(&case.round1_text))
            .expect("answers");
        let turn_total = t0.elapsed().as_secs_f64() * 1e3;
        let r = reply.latency.as_secs_f64() * 1e3;
        retrieval_ms += r;
        answer_ms += (turn_total - r).max(0.0);
    }
    let mut tt = Table::new(&["turn stage", "mean latency (ms)"]);
    tt.row(vec![
        "query execution (retrieval)".into(),
        format!("{:.3}", retrieval_ms / n_turns as f64),
    ]);
    tt.row(vec![
        "answer generation (+ encode/assembly)".into(),
        format!("{:.3}", answer_ms / n_turns as f64),
    ]);
    tt.print();

    // (c) grounding fidelity: do replies cite fabricated attributes?
    let parametric = [
        "vintage",
        "handcrafted",
        "limited",
        "signature",
        "premium",
        "bespoke",
        "artisanal",
        "iconic",
        "exclusive",
        "heritage",
        "curated",
        "timeless",
        "renowned",
        "celebrated",
    ];
    let model = MockChatModel::new(0);
    let mut grounded_fab = 0usize;
    let mut bare_fab = 0usize;
    let sample = workload.cases.iter().take(n_turns.min(100));
    let mut counted = 0usize;
    for case in sample {
        let reply = system
            .ask_once(Turn::text(&case.round1_text))
            .expect("answers");
        let text = reply.message.expect("mock LLM configured");
        grounded_fab += parametric.iter().any(|w| text.contains(w)) as usize;
        // LLM-only mode: same question, knowledge ingestion disabled.
        let bare = model.generate(&Prompt::bare(&case.round1_text), 0.0);
        bare_fab += parametric.iter().any(|w| bare.text.contains(w)) as usize;
        counted += 1;
    }
    println!("\ngrounding fidelity over {counted} questions:");
    println!(
        "  retrieval-augmented replies citing fabricated attributes: {grounded_fab}/{counted}"
    );
    println!("  LLM-only (no knowledge base)  citing fabricated attributes: {bare_fab}/{counted}");
    println!("\nshape check: retrieval latency dominates the turn; grounded replies never");
    println!("fabricate while parametric-only replies almost always do.");
}
