//! **E8 — Incremental scanning (early-abandon) ablation.**
//!
//! The paper's Query Execution component computes fused distances "via
//! incremental scanning, enhancing efficiency by circumventing unnecessary
//! calculations". This experiment runs identical unified-graph searches
//! with pruning on and off and reports: scalar multiply-accumulate terms
//! per query, the fraction saved, wall-clock speedup, and a verification
//! that the result sets are bit-identical (the abandonment rule is exact,
//! not approximate).
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_pruning [-- --quick]
//! ```

use mqa_bench::{encode, SetupParams, Table};
use mqa_encoders::RawContent;
use mqa_graph::UnifiedIndex;
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_retrieval::MultiModalQuery;
use mqa_vector::Metric;

const K: usize = 10;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, n_queries) = if quick { (2_000, 60) } else { (20_000, 300) };
    let params = SetupParams {
        spec: DatasetSpec::weather()
            .objects(objects)
            .concepts(100)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    };
    println!("E8: {objects} objects, {n_queries} multi-modal queries, k={K}\n");
    let enc = encode(&params);
    let index = UnifiedIndex::build(
        enc.corpus.store().clone(),
        enc.learned.weights.clone(),
        Metric::L2,
        &params.algo,
    );

    let workload = WorkloadSpec::new(n_queries, 808).generate(&enc.info);
    let queries: Vec<mqa_vector::MultiVector> = workload
        .cases
        .iter()
        .map(|case| {
            let member = enc.gt.members(case.concept)[0];
            let img = match enc.corpus.kb().get(member).content(1) {
                Some(RawContent::Image(i)) => i.clone(),
                _ => unreachable!(),
            };
            enc.corpus
                .encoders()
                .encode_query(&MultiModalQuery::text_and_image(&case.round2_text, img))
        })
        .collect();

    let mut table = Table::new(&[
        "ef",
        "terms/query (full)",
        "terms/query (pruned)",
        "saved",
        "speedup",
        "results identical",
    ]);
    for ef in [16usize, 32, 64, 128] {
        let mut terms_full = 0u64;
        let mut terms_pruned = 0u64;
        let mut skipped = 0u64;
        let mut identical = true;

        let t0 = std::time::Instant::now();
        let full_out: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| {
                let out = index.search_with_pruning(q, None, K, ef, false);
                terms_full += out.scan.terms;
                out.ids()
            })
            .collect();
        let t_full = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        for (q, full_ids) in queries.iter().zip(&full_out) {
            let out = index.search_with_pruning(q, None, K, ef, true);
            terms_pruned += out.scan.terms;
            skipped += out.scan.terms_skipped;
            identical &= &out.ids() == full_ids;
        }
        let t_pruned = t0.elapsed().as_secs_f64();

        table.row(vec![
            ef.to_string(),
            format!("{:.0}", terms_full as f64 / queries.len() as f64),
            format!("{:.0}", terms_pruned as f64 / queries.len() as f64),
            format!(
                "{:.1}%",
                100.0 * skipped as f64 / (terms_pruned + skipped) as f64
            ),
            format!("{:.2}x", t_full / t_pruned),
            identical.to_string(),
        ]);
    }
    table.print();
    println!("\nshape check: a large fraction of scalar terms is skipped at every ef,");
    println!("with measurable wall-clock speedup and exactly identical results.");
}
