//! **E11 — Ablations of the design choices DESIGN.md §6 calls out.**
//!
//! A. *Construction-pipeline stages* (on the unified multi-vector graph):
//!    entry selection (single medoid vs medoid+random), initialization
//!    (kNN vs random), pruning slack α, and connectivity repair.
//! B. *Weight-learning regularization*: the pull toward uniform weights
//!    that keeps partial-query routing alive (`uniform_reg`).
//! C. *JE partial-query policy*: faithful blank-placeholder encoding vs
//!    the idealized zero-fill upper bound.
//!
//! Each ablation reports the two-round dialogue metrics of the F5
//! protocol, so the numbers compose directly with the headline comparison.
//!
//! ```bash
//! cargo run --release -p mqa-bench --bin exp_ablation [-- --quick]
//! ```

use mqa_bench::{encode, two_round, SetupParams, Table};
use mqa_graph::pipeline::{
    EntryStage, GraphPipeline, InitStage, RefineStage, RepairStage, SelectStage,
};
use mqa_graph::{BuiltGraph, IndexAlgorithm, UnifiedIndex};
use mqa_kb::DatasetSpec;
use mqa_retrieval::{JeFramework, JePartialPolicy, MustFramework};
use mqa_vector::Metric;
use mqa_weights::{TrainerConfig, WeightLearner};
use std::sync::Arc;

const K: usize = 3;
const EF: usize = 64;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (objects, queries) = if quick { (2_000, 60) } else { (10_000, 200) };
    let params = SetupParams {
        spec: DatasetSpec::weather()
            .objects(objects)
            .concepts(80)
            .styles(4)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    };
    println!("E11: {objects} objects, {queries} dialogues per cell, k={K}, ef={EF}\n");
    let enc = encode(&params);

    // ── A. pipeline-stage ablations on the unified graph ──
    println!("A. construction-pipeline stages (MUST, learned weights):");
    let mut ta = Table::new(&["variant", "round1", "round2", "avg degree", "connectivity"]);
    let base =
        |entry: EntryStage, init: InitStage, alpha: f32, repair: RepairStage| GraphPipeline {
            init,
            entry,
            refine: RefineStage { l: 64, passes: 2 },
            select: SelectStage::RobustPrune { alpha, r: 24 },
            repair,
        };
    let variants: Vec<(&str, GraphPipeline)> = vec![
        (
            "default (knn, medoid+4, a=1.2, repair)",
            base(
                EntryStage::MedoidPlusRandom { extra: 4, seed: 0 },
                InitStage::Knn { k: 20, seed: 0 },
                1.2,
                RepairStage::GrowFromEntry,
            ),
        ),
        (
            "single medoid entry",
            base(
                EntryStage::Medoid,
                InitStage::Knn { k: 20, seed: 0 },
                1.2,
                RepairStage::GrowFromEntry,
            ),
        ),
        (
            "random init (no knn)",
            base(
                EntryStage::MedoidPlusRandom { extra: 4, seed: 0 },
                InitStage::Random {
                    degree: 24,
                    seed: 0,
                },
                1.2,
                RepairStage::GrowFromEntry,
            ),
        ),
        (
            "alpha = 1.0 (MRNG rule)",
            base(
                EntryStage::MedoidPlusRandom { extra: 4, seed: 0 },
                InitStage::Knn { k: 20, seed: 0 },
                1.0,
                RepairStage::GrowFromEntry,
            ),
        ),
        (
            "alpha = 1.6",
            base(
                EntryStage::MedoidPlusRandom { extra: 4, seed: 0 },
                InitStage::Knn { k: 20, seed: 0 },
                1.6,
                RepairStage::GrowFromEntry,
            ),
        ),
        (
            "no connectivity repair",
            base(
                EntryStage::MedoidPlusRandom { extra: 4, seed: 0 },
                InitStage::Knn { k: 20, seed: 0 },
                1.2,
                RepairStage::None,
            ),
        ),
    ];
    for (name, pipeline) in variants {
        let weighted = Arc::new(enc.corpus.store().weighted_store(&enc.learned.weights));
        let nav = pipeline.run(&weighted, Metric::L2, name);
        let degree = nav.report().avg_degree;
        let connectivity = nav.report().connectivity;
        let index = UnifiedIndex::from_parts(
            enc.corpus.store().clone(),
            enc.learned.weights.clone(),
            Metric::L2,
            BuiltGraph::Nav(nav),
            IndexAlgorithm::mqa_graph(),
        );
        let must = match MustFramework::from_index(Arc::clone(&enc.corpus), index) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("ablation setup failed: {e}");
                std::process::exit(1);
            }
        };
        let s = two_round(&enc, &must, queries, K, EF, 777);
        ta.row(vec![
            name.to_string(),
            format!("{:.3}", s.round1),
            format!("{:.3}", s.round2),
            format!("{degree:.1}"),
            format!("{connectivity:.3}"),
        ]);
    }
    ta.print();

    // ── B. weight-learning regularization ──
    println!("\nB. weight-learning pull toward uniform (uniform_reg):");
    let mut tb = Table::new(&["uniform_reg", "learned w", "round1", "round2"]);
    let labels = enc.corpus.concept_labels().unwrap();
    for reg in [0.0f32, 0.2, 0.6, 2.0, 8.0] {
        let learned = WeightLearner::new(TrainerConfig {
            uniform_reg: reg,
            ..Default::default()
        })
        .learn(enc.corpus.store(), &labels);
        let must = MustFramework::build(
            Arc::clone(&enc.corpus),
            learned.weights.clone(),
            Metric::L2,
            &params.algo,
        );
        let s = two_round(&enc, &must, queries, K, EF, 777);
        tb.row(vec![
            format!("{reg}"),
            format!(
                "[{:.2},{:.2}]",
                learned.weights.as_slice()[0],
                learned.weights.as_slice()[1]
            ),
            format!("{:.3}", s.round1),
            format!("{:.3}", s.round2),
        ]);
    }
    tb.print();

    // ── C. JE partial-query policy ──
    println!("\nC. JE partial-query policy:");
    let mut tc = Table::new(&["policy", "round1", "round2"]);
    for (name, policy) in [
        ("placeholder (faithful)", JePartialPolicy::Placeholder),
        ("zero-fill (idealized)", JePartialPolicy::ZeroFill),
    ] {
        let je = JeFramework::build_with_policy(
            Arc::clone(&enc.corpus),
            Metric::L2,
            &params.algo,
            policy,
        );
        let s = two_round(&enc, &je, queries, K, EF, 777);
        tc.row(vec![
            name.to_string(),
            format!("{:.3}", s.round1),
            format!("{:.3}", s.round2),
        ]);
    }
    tc.print();
    println!("\nshape check: multi-entry + repair + knn-init each buy recall; moderate");
    println!("alpha balances degree vs routing; uniform_reg trades round-1 routing");
    println!("against round-2 weighting; JE's realism gap comes from its placeholder.");
}
