//! # mqa-bench
//!
//! Shared harness utilities for the experiment binaries (`src/bin/fig*`,
//! `src/bin/exp*`) and the micro-benchmarks (`benches/`). The
//! per-experiment index — which binary regenerates which figure/claim of
//! the paper — lives in `DESIGN.md` §5; measured outputs are recorded in
//! `EXPERIMENTS.md`.
//!
//! Every harness is deterministic: corpora, workloads, and models all
//! derive from fixed seeds, so reruns reproduce the recorded numbers up to
//! wall-clock jitter.

pub mod protocol;
pub mod setup;
pub mod table;
pub mod timing;

pub use protocol::{two_round, RoundScores};
pub use setup::{build_frameworks, build_must_with, encode, Frameworks, SetupParams};
pub use table::Table;
pub use timing::{write_snapshot, Bencher};
