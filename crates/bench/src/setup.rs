//! Shared experiment setup: corpus generation, encoding, framework builds.

use mqa_encoders::EncoderRegistry;
use mqa_graph::IndexAlgorithm;
use mqa_kb::{DatasetInfo, DatasetSpec, GroundTruth};
use mqa_retrieval::{EncodedCorpus, EncoderSet, JeFramework, MrFramework, MustFramework};
use mqa_vector::{Metric, Weights};
use mqa_weights::{LearnedWeights, WeightLearner};
use std::sync::Arc;
use std::time::Duration;

/// Knobs shared by most experiments.
#[derive(Debug, Clone)]
pub struct SetupParams {
    /// Corpus spec (domain, size, noise profile).
    pub spec: DatasetSpec,
    /// Embedding dimensionality per modality.
    pub dim: usize,
    /// Encoder/model seed.
    pub model_seed: u64,
    /// Graph algorithm for all frameworks.
    pub algo: IndexAlgorithm,
}

impl Default for SetupParams {
    fn default() -> Self {
        Self {
            // The Figure 5 profile: noisy captions, clean images — modality
            // weighting matters, and styles are visually separable.
            spec: DatasetSpec::weather()
                .objects(20_000)
                .concepts(100)
                .styles(4)
                .caption_noise(0.35)
                .image_noise(0.15)
                .seed(2024),
            dim: 64,
            model_seed: 0,
            algo: IndexAlgorithm::mqa_graph(),
        }
    }
}

/// An encoded corpus with its generator metadata and ground truth.
pub struct Encoded {
    /// Shared encoded corpus.
    pub corpus: Arc<EncodedCorpus>,
    /// Generator metadata (concept vocabulary).
    pub info: DatasetInfo,
    /// Relevance ground truth.
    pub gt: GroundTruth,
    /// Learned modality weights (trained on the corpus labels).
    pub learned: LearnedWeights,
}

/// Generates and encodes the corpus, and learns modality weights.
pub fn encode(params: &SetupParams) -> Encoded {
    let (kb, info) = params.spec.generate_with_info();
    let gt = GroundTruth::build(&kb);
    let registry = EncoderRegistry::new(params.model_seed);
    let schema = kb.schema().clone();
    let encoders = EncoderSet::default_for(&registry, &schema, params.dim);
    let corpus = Arc::new(EncodedCorpus::encode(kb, encoders));
    let labels = corpus
        .concept_labels()
        .expect("generated corpora are labelled");
    let learned = WeightLearner::default().learn(corpus.store(), &labels);
    Encoded {
        corpus,
        info,
        gt,
        learned,
    }
}

/// The three frameworks built over one corpus, with build times.
pub struct Frameworks {
    /// MUST with learned weights.
    pub must: MustFramework,
    /// Multi-streamed retrieval.
    pub mr: MrFramework,
    /// Joint embedding.
    pub je: JeFramework,
    /// Build wall-clock per framework (MUST, MR, JE).
    pub build_times: [Duration; 3],
}

/// Builds MUST (learned weights), MR, and JE over the encoded corpus.
pub fn build_frameworks(enc: &Encoded, algo: &IndexAlgorithm) -> Frameworks {
    let t0 = std::time::Instant::now();
    let must = MustFramework::build(
        Arc::clone(&enc.corpus),
        enc.learned.weights.clone(),
        Metric::L2,
        algo,
    );
    let t_must = t0.elapsed();
    let t0 = std::time::Instant::now();
    let mr = MrFramework::build(Arc::clone(&enc.corpus), Metric::L2, algo);
    let t_mr = t0.elapsed();
    let t0 = std::time::Instant::now();
    let je = JeFramework::build(Arc::clone(&enc.corpus), Metric::L2, algo);
    let t_je = t0.elapsed();
    Frameworks {
        must,
        mr,
        je,
        build_times: [t_must, t_mr, t_je],
    }
}

/// A MUST framework built with explicit weights (for the E6 ablation).
pub fn build_must_with(enc: &Encoded, weights: Weights, algo: &IndexAlgorithm) -> MustFramework {
    MustFramework::build(Arc::clone(&enc.corpus), weights, Metric::L2, algo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_setup_builds_everything() {
        let params = SetupParams {
            spec: DatasetSpec::weather().objects(200).concepts(10).seed(1),
            dim: 16,
            ..SetupParams::default()
        };
        let enc = encode(&params);
        assert_eq!(enc.corpus.store().len(), 200);
        assert_eq!(enc.learned.weights.arity(), 2);
        let fws = build_frameworks(&enc, &IndexAlgorithm::Flat);
        assert!(fws.build_times.iter().all(|d| d.as_nanos() > 0));
    }
}
