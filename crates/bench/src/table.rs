//! Minimal aligned-column table printer for harness output.

/// A simple text table: header row plus data rows, auto-aligned.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a much longer name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("a much longer name"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
