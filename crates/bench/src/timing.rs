//! Minimal micro-benchmark timing harness used by the `benches/` targets
//! (each built with `harness = false`). Calibrates an iteration count so a
//! sample lasts a few tens of milliseconds, then reports the fastest
//! per-iteration time over several samples — the low-noise estimator for
//! CPU-bound kernels.
//!
//! Results are not print-only: every sample's per-iteration time is also
//! recorded into the `mqa-obs` registry (histogram
//! `bench.<group>.<name>.ns`, gauge `bench.<group>.<name>.best_ns`), so a
//! bench main can close with [`write_snapshot`] to file the run's numbers
//! under `results/` as a machine-readable perf trajectory.

use std::path::Path;
use std::time::{Duration, Instant};

/// A named group of micro-benchmarks sharing sampling settings.
pub struct Bencher {
    group: String,
    sample_target: Duration,
    samples: usize,
}

impl Bencher {
    /// Creates a group with default settings (7 samples of ~40 ms each).
    #[must_use]
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            sample_target: Duration::from_millis(40),
            samples: 7,
        }
    }

    /// Overrides the per-sample time target (for slow, coarse benchmarks).
    #[must_use]
    pub fn sample_target(mut self, target: Duration) -> Self {
        self.sample_target = target;
        self
    }

    /// Overrides the number of samples taken.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, printing the fastest observed per-iteration cost.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        // Calibrate: double the batch until one batch is long enough to
        // time reliably, then scale it to the per-sample target.
        let mut iters: u64 = 1;
        let per_ns = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.sample_target / 8 || iters >= 1 << 28 {
                break (elapsed.as_nanos() / u128::from(iters)).max(1);
            }
            iters = iters.saturating_mul(2);
        };
        let target_ns = self.sample_target.as_nanos();
        iters = u64::try_from((target_ns / per_ns).max(1)).unwrap_or(u64::MAX);
        let mut best = f64::INFINITY;
        let samples_hist = self.sample_histogram(name);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let per = t0.elapsed().as_nanos() as f64 / iters as f64;
            samples_hist.record(per as u64);
            best = best.min(per);
        }
        self.report(name, best);
    }

    /// Times `f` on fresh state from `setup` each run; setup is untimed.
    /// Suited to consumable state (e.g. a scanner with interior caches).
    pub fn bench_batched<S, Setup: FnMut() -> S, F: FnMut(S)>(
        &self,
        name: &str,
        mut setup: Setup,
        mut f: F,
    ) {
        // One run per sample: state construction cost stays outside the
        // timed region, so runs must individually be long enough to time.
        let runs = self.samples.max(5) * 4;
        let mut best = f64::INFINITY;
        let samples_hist = self.sample_histogram(name);
        for _ in 0..runs {
            let state = setup();
            let t0 = Instant::now();
            f(state);
            let per = t0.elapsed().as_nanos() as f64;
            samples_hist.record(per as u64);
            best = best.min(per);
        }
        self.report(name, best);
    }

    fn sample_histogram(&self, name: &str) -> std::sync::Arc<mqa_obs::Histogram> {
        mqa_obs::histogram(&format!("bench.{}.{}.ns", self.group, name))
    }

    fn report(&self, name: &str, ns: f64) {
        mqa_obs::gauge(&format!("bench.{}.{}.best_ns", self.group, name)).set(ns);
        let label = format!("{}/{}", self.group, name);
        println!("{label:<52} {:>12}/iter", format_ns(ns));
    }
}

/// Writes the current `mqa-obs` metrics snapshot (all `bench.*` gauges and
/// sample histograms of the run, plus any pipeline metrics the benched code
/// recorded) as pretty JSON to `path`, creating parent directories.
///
/// # Errors
/// Propagates filesystem errors; serialization of a snapshot cannot fail.
pub fn write_snapshot(path: &Path) -> std::io::Result<()> {
    let snap = mqa_obs::global().snapshot();
    let body = serde_json::to_string_pretty(&snap)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, body + "\n")
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_scales() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_runs_closure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        Bencher::new("t")
            .sample_target(Duration::from_micros(200))
            .samples(2)
            .bench("noop", || {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        assert!(calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn bench_records_samples_into_obs_registry() {
        Bencher::new("timing_test")
            .sample_target(Duration::from_micros(200))
            .samples(3)
            .bench("spin", || {
                std::hint::black_box(7u64.wrapping_mul(13));
            });
        let snap = mqa_obs::global().snapshot();
        let hist = snap
            .histogram("bench.timing_test.spin.ns")
            .expect("per-sample histogram recorded");
        assert!(hist.count >= 3);
        let gauge = snap
            .gauges
            .iter()
            .find(|g| g.name == "bench.timing_test.spin.best_ns")
            .expect("best gauge recorded");
        assert!(gauge.value >= 0.0);
    }

    #[test]
    fn write_snapshot_emits_parseable_json() {
        Bencher::new("timing_snap")
            .sample_target(Duration::from_micros(100))
            .samples(1)
            .bench("noop", || {
                std::hint::black_box(1u64);
            });
        let dir = std::env::temp_dir().join(format!("mqa-bench-snap-{}", std::process::id()));
        let path = dir.join("bench_snapshot.json");
        write_snapshot(&path).expect("snapshot written");
        let body = std::fs::read_to_string(&path).expect("snapshot readable");
        let value = serde_json::parse_value_str(&body).expect("snapshot parses");
        let text = serde_json::to_string(&value).unwrap_or_default();
        assert!(text.contains("timing_snap"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
