//! Minimal micro-benchmark timing harness used by the `benches/` targets
//! (each built with `harness = false`). Calibrates an iteration count so a
//! sample lasts a few tens of milliseconds, then reports the fastest
//! per-iteration time over several samples — the low-noise estimator for
//! CPU-bound kernels.

use std::time::{Duration, Instant};

/// A named group of micro-benchmarks sharing sampling settings.
pub struct Bencher {
    group: String,
    sample_target: Duration,
    samples: usize,
}

impl Bencher {
    /// Creates a group with default settings (7 samples of ~40 ms each).
    #[must_use]
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            sample_target: Duration::from_millis(40),
            samples: 7,
        }
    }

    /// Overrides the per-sample time target (for slow, coarse benchmarks).
    #[must_use]
    pub fn sample_target(mut self, target: Duration) -> Self {
        self.sample_target = target;
        self
    }

    /// Overrides the number of samples taken.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, printing the fastest observed per-iteration cost.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        // Calibrate: double the batch until one batch is long enough to
        // time reliably, then scale it to the per-sample target.
        let mut iters: u64 = 1;
        let per_ns = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.sample_target / 8 || iters >= 1 << 28 {
                break (elapsed.as_nanos() / u128::from(iters)).max(1);
            }
            iters = iters.saturating_mul(2);
        };
        let target_ns = self.sample_target.as_nanos();
        iters = u64::try_from((target_ns / per_ns).max(1)).unwrap_or(u64::MAX);
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let per = t0.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(per);
        }
        self.report(name, best);
    }

    /// Times `f` on fresh state from `setup` each run; setup is untimed.
    /// Suited to consumable state (e.g. a scanner with interior caches).
    pub fn bench_batched<S, Setup: FnMut() -> S, F: FnMut(S)>(
        &self,
        name: &str,
        mut setup: Setup,
        mut f: F,
    ) {
        // One run per sample: state construction cost stays outside the
        // timed region, so runs must individually be long enough to time.
        let runs = self.samples.max(5) * 4;
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let state = setup();
            let t0 = Instant::now();
            f(state);
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        self.report(name, best);
    }

    fn report(&self, name: &str, ns: f64) {
        let label = format!("{}/{}", self.group, name);
        println!("{label:<52} {:>12}/iter", format_ns(ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_scales() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_runs_closure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        Bencher::new("t")
            .sample_target(Duration::from_micros(200))
            .samples(2)
            .bench("noop", || {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        assert!(calls.load(Ordering::Relaxed) > 0);
    }
}
