//! The two-round interaction protocol of Figures 4/5, as a measurable
//! procedure.
//!
//! Round 1: text-only request naming a concept. The simulated user then
//! clicks the first on-concept result (the red-marked choice of Figure 5;
//! if none is on concept the top result is clicked — a bad pick the
//! framework earned). Round 2: refinement text plus the clicked image;
//! scored against the (concept, style) sub-cluster of the click.

use crate::setup::Encoded;
use mqa_encoders::RawContent;
use mqa_kb::{recall_at_k, round2_recall_at_k, WorkloadSpec};
use mqa_retrieval::{MultiModalQuery, RetrievalFramework};
use std::time::Duration;

/// Aggregated scores of one framework over a workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundScores {
    /// Mean concept recall@k of round 1.
    pub round1: f64,
    /// Mean style recall@k of round 2 (excluding the clicked object).
    pub round2: f64,
    /// Fraction of dialogues whose click was on-concept.
    pub good_picks: f64,
    /// Total retrieval wall-clock across both rounds.
    pub elapsed: Duration,
    /// Total completed distance evaluations.
    pub evals: u64,
}

/// Runs `queries` two-round dialogues against `fw`.
pub fn two_round(
    enc: &Encoded,
    fw: &dyn RetrievalFramework,
    queries: usize,
    k: usize,
    ef: usize,
    workload_seed: u64,
) -> RoundScores {
    let workload = WorkloadSpec::new(queries, workload_seed).generate(&enc.info);
    let mut s = RoundScores::default();
    let t0 = std::time::Instant::now();
    for case in &workload.cases {
        let out1 = fw.search(&MultiModalQuery::text(&case.round1_text), k, ef);
        s.evals += out1.stats.evals;
        s.round1 += recall_at_k(&enc.gt, &out1.ids(), case.concept, k);

        let pick = out1
            .ids()
            .iter()
            .copied()
            .find(|&id| enc.gt.is_relevant(id, case.concept))
            .unwrap_or(out1.ids()[0]);
        if enc.gt.is_relevant(pick, case.concept) {
            s.good_picks += 1.0;
        }
        let style = enc.corpus.kb().get(pick).style.expect("labelled corpus");
        let img = match enc.corpus.kb().get(pick).content(1) {
            Some(RawContent::Image(i)) => i.clone(),
            _ => unreachable!("image modality present"),
        };
        let out2 = fw.search(
            &MultiModalQuery::text_and_image(&case.round2_text, img),
            k,
            ef,
        );
        s.evals += out2.stats.evals;
        s.round2 += round2_recall_at_k(&enc.gt, &out2.ids(), pick, case.concept, style, k);
    }
    s.elapsed = t0.elapsed();
    let n = queries as f64;
    s.round1 /= n;
    s.round2 /= n;
    s.good_picks /= n;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_frameworks, encode, SetupParams};
    use mqa_graph::IndexAlgorithm;
    use mqa_kb::DatasetSpec;

    #[test]
    fn protocol_produces_sane_scores() {
        let params = SetupParams {
            spec: DatasetSpec::weather()
                .objects(300)
                .concepts(15)
                .caption_noise(0.1)
                .seed(3),
            dim: 24,
            ..SetupParams::default()
        };
        let enc = encode(&params);
        let fws = build_frameworks(&enc, &IndexAlgorithm::Flat);
        let s = two_round(&enc, &fws.must, 10, 5, 32, 9);
        assert!(s.round1 > 0.5, "round1 {}", s.round1);
        assert!((0.0..=1.0).contains(&s.round2));
        assert!(s.good_picks > 0.8);
        assert!(s.evals > 0);
    }
}
