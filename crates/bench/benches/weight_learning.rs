//! Cost of the contrastive vector-weight-learning model.

use mqa_bench::Bencher;
use mqa_rng::StdRng;
use mqa_vector::{MultiVector, MultiVectorStore, Schema};
use mqa_weights::{TrainerConfig, WeightLearner};
use std::hint::black_box;
use std::time::Duration;

fn labelled_store(n: usize, classes: u32) -> (MultiVectorStore, Vec<u32>) {
    let schema = Schema::text_image(32, 32);
    let mut store = MultiVectorStore::new(schema.clone());
    let mut rng = StdRng::seed_from_u64(5);
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = (i as u32) % classes;
        let t: Vec<f32> = centers[c as usize]
            .iter()
            .map(|x| x + rng.gen_range(-0.2f32..0.2))
            .collect();
        let im: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        store.push(&MultiVector::complete(&schema, vec![t, im]));
        labels.push(c);
    }
    (store, labels)
}

fn main() {
    let (store, labels) = labelled_store(2_000, 40);
    let g = Bencher::new("weight_learning_2k_objects")
        .sample_target(Duration::from_millis(200))
        .samples(5);
    for n_triplets in [500usize, 2_000] {
        let learner = WeightLearner::new(TrainerConfig {
            n_triplets,
            ..TrainerConfig::default()
        });
        g.bench(&format!("{n_triplets}_triplets_20_epochs"), || {
            black_box(learner.learn(black_box(&store), black_box(&labels)));
        });
    }
    if let Err(e) =
        mqa_bench::write_snapshot(std::path::Path::new("results/bench_weight_learning.json"))
    {
        eprintln!("warning: could not write bench snapshot: {e}");
    }
}
