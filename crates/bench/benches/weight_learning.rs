//! Cost of the contrastive vector-weight-learning model.

use criterion::{criterion_group, criterion_main, Criterion};
use mqa_vector::{MultiVector, MultiVectorStore, Schema};
use mqa_weights::{TrainerConfig, WeightLearner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn labelled_store(n: usize, classes: u32) -> (MultiVectorStore, Vec<u32>) {
    let schema = Schema::text_image(32, 32);
    let mut store = MultiVectorStore::new(schema.clone());
    let mut rng = StdRng::seed_from_u64(5);
    let centers: Vec<Vec<f32>> =
        (0..classes).map(|_| (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = (i as u32) % classes;
        let t: Vec<f32> =
            centers[c as usize].iter().map(|x| x + rng.gen_range(-0.2..0.2)).collect();
        let im: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.push(&MultiVector::complete(&schema, vec![t, im]));
        labels.push(c);
    }
    (store, labels)
}

fn bench_learning(c: &mut Criterion) {
    let (store, labels) = labelled_store(2_000, 40);
    let mut g = c.benchmark_group("weight_learning_2k_objects");
    for n_triplets in [500usize, 2_000] {
        g.bench_function(format!("{n_triplets}_triplets_20_epochs"), |bch| {
            let learner = WeightLearner::new(TrainerConfig {
                n_triplets,
                ..TrainerConfig::default()
            });
            bch.iter(|| black_box(learner.learn(black_box(&store), black_box(&labels))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_learning
}
criterion_main!(benches);
