//! Micro-benchmarks of the numeric kernels: metric distances, fused
//! scanning with and without early abandonment, and top-k maintenance.

use mqa_bench::Bencher;
use mqa_rng::StdRng;
use mqa_vector::{ops, Candidate, FusedScanner, Metric, MultiVector, Schema, TopK, Weights};
use std::hint::black_box;

fn rand_vec(rng: &mut StdRng, d: usize) -> Vec<f32> {
    (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_metrics() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = rand_vec(&mut rng, 128);
    let b = rand_vec(&mut rng, 128);
    let g = Bencher::new("metric_128d");
    g.bench("l2", || {
        black_box(Metric::L2.distance(black_box(&a), black_box(&b)));
    });
    g.bench("dot", || {
        black_box(ops::dot(black_box(&a), black_box(&b)));
    });
    g.bench("cosine", || {
        black_box(Metric::Cosine.distance(black_box(&a), black_box(&b)));
    });
}

fn bench_fused_scan() {
    let mut rng = StdRng::seed_from_u64(2);
    let schema = Schema::text_image(64, 64);
    let q = MultiVector::complete(
        &schema,
        vec![rand_vec(&mut rng, 64), rand_vec(&mut rng, 64)],
    );
    let w = Weights::normalized(&[1.4, 0.6]);
    let objects: Vec<Vec<f32>> = (0..256)
        .map(|_| {
            MultiVector::complete(
                &schema,
                vec![rand_vec(&mut rng, 64), rand_vec(&mut rng, 64)],
            )
            .concat(&schema)
        })
        .collect();
    // A tight bound representative of a warm beam search.
    let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
    let bound = objects
        .iter()
        .map(|o| scanner.exact(o))
        .fold(f32::INFINITY, f32::min)
        * 1.2;

    let g = Bencher::new("fused_scan_256x128d");
    g.bench_batched(
        "full_eval",
        || FusedScanner::new(&schema, &q, &w, Metric::L2),
        |mut s| {
            for o in &objects {
                black_box(s.distance(black_box(o), f32::INFINITY));
            }
        },
    );
    g.bench_batched(
        "early_abandon",
        || FusedScanner::new(&schema, &q, &w, Metric::L2),
        |mut s| {
            for o in &objects {
                black_box(s.distance(black_box(o), bound));
            }
        },
    );
}

fn bench_pq() {
    use mqa_vector::{PqCodebook, PqParams, VectorStore};
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = VectorStore::new(128);
    for _ in 0..2_000 {
        store.push(&rand_vec(&mut rng, 128));
    }
    let cb = PqCodebook::train(
        &store,
        &PqParams {
            m: 16,
            iters: 6,
            ..Default::default()
        },
    );
    let codes = cb.encode_store(&store);
    let query = rand_vec(&mut rng, 128);
    let table = cb.table(&query);

    let g = Bencher::new("pq_128d_m16");
    g.bench("table_distance_2000", || {
        let mut acc = 0.0f32;
        for id in 0..2_000u32 {
            acc += table.distance(black_box(codes.code(id)));
        }
        black_box(acc);
    });
    g.bench("exact_distance_2000", || {
        let mut acc = 0.0f32;
        for id in 0..2_000u32 {
            acc += Metric::L2.distance(black_box(&query), store.get(id));
        }
        black_box(acc);
    });
    g.bench("encode_one", || {
        black_box(cb.encode(black_box(&query)));
    });
}

fn bench_topk() {
    let mut rng = StdRng::seed_from_u64(3);
    let stream: Vec<Candidate> = (0..4096)
        .map(|i| Candidate::new(i, rng.gen_range(0.0f32..100.0)))
        .collect();
    Bencher::new("topk").bench("64_of_4096", || {
        let mut t = TopK::new(64);
        for &cand in &stream {
            t.offer(black_box(cand));
        }
        black_box(t.bound());
    });
}

fn main() {
    bench_metrics();
    bench_fused_scan();
    bench_pq();
    bench_topk();
    if let Err(e) = mqa_bench::write_snapshot(std::path::Path::new("results/bench_kernels.json")) {
        eprintln!("warning: could not write bench snapshot: {e}");
    }
}
