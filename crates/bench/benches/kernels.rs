//! Micro-benchmarks of the numeric kernels: metric distances, fused
//! scanning with and without early abandonment, and top-k maintenance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mqa_vector::{ops, Candidate, FusedScanner, Metric, MultiVector, Schema, TopK, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn rand_vec(rng: &mut StdRng, d: usize) -> Vec<f32> {
    (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = rand_vec(&mut rng, 128);
    let b = rand_vec(&mut rng, 128);
    let mut g = c.benchmark_group("metric_128d");
    g.bench_function("l2", |bch| bch.iter(|| Metric::L2.distance(black_box(&a), black_box(&b))));
    g.bench_function("dot", |bch| bch.iter(|| ops::dot(black_box(&a), black_box(&b))));
    g.bench_function("cosine", |bch| {
        bch.iter(|| Metric::Cosine.distance(black_box(&a), black_box(&b)))
    });
    g.finish();
}

fn bench_fused_scan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let schema = Schema::text_image(64, 64);
    let q = MultiVector::complete(&schema, vec![rand_vec(&mut rng, 64), rand_vec(&mut rng, 64)]);
    let w = Weights::normalized(&[1.4, 0.6]);
    let objects: Vec<Vec<f32>> = (0..256)
        .map(|_| {
            MultiVector::complete(&schema, vec![rand_vec(&mut rng, 64), rand_vec(&mut rng, 64)])
                .concat(&schema)
        })
        .collect();
    // A tight bound representative of a warm beam search.
    let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
    let bound = objects.iter().map(|o| scanner.exact(o)).fold(f32::INFINITY, f32::min) * 1.2;

    let mut g = c.benchmark_group("fused_scan_256x128d");
    g.bench_function("full_eval", |bch| {
        bch.iter_batched(
            || FusedScanner::new(&schema, &q, &w, Metric::L2),
            |mut s| {
                for o in &objects {
                    black_box(s.distance(black_box(o), f32::INFINITY));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("early_abandon", |bch| {
        bch.iter_batched(
            || FusedScanner::new(&schema, &q, &w, Metric::L2),
            |mut s| {
                for o in &objects {
                    black_box(s.distance(black_box(o), bound));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pq(c: &mut Criterion) {
    use mqa_vector::{PqCodebook, PqParams, VectorStore};
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = VectorStore::new(128);
    for _ in 0..2_000 {
        store.push(&rand_vec(&mut rng, 128));
    }
    let cb = PqCodebook::train(&store, &PqParams { m: 16, iters: 6, ..Default::default() });
    let codes = cb.encode_store(&store);
    let query = rand_vec(&mut rng, 128);
    let table = cb.table(&query);

    let mut g = c.benchmark_group("pq_128d_m16");
    g.bench_function("table_distance_2000", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for id in 0..2_000u32 {
                acc += table.distance(black_box(codes.code(id)));
            }
            black_box(acc)
        })
    });
    g.bench_function("exact_distance_2000", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for id in 0..2_000u32 {
                acc += Metric::L2.distance(black_box(&query), store.get(id));
            }
            black_box(acc)
        })
    });
    g.bench_function("encode_one", |bch| {
        bch.iter(|| black_box(cb.encode(black_box(&query))))
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let stream: Vec<Candidate> =
        (0..4096).map(|i| Candidate::new(i, rng.gen_range(0.0..100.0))).collect();
    c.bench_function("topk_64_of_4096", |bch| {
        bch.iter(|| {
            let mut t = TopK::new(64);
            for &cand in &stream {
                t.offer(black_box(cand));
            }
            black_box(t.bound())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_metrics, bench_fused_scan, bench_pq, bench_topk
}
criterion_main!(benches);
