//! End-to-end turn latency through the coordinator, and raw framework
//! search latency for MUST / MR / JE over one corpus.

use mqa_bench::{build_frameworks, encode, Bencher, SetupParams};
use mqa_core::{Config, MqaSystem, Turn};
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_retrieval::{MultiModalQuery, RetrievalFramework};
use std::hint::black_box;
use std::time::Duration;

fn params() -> SetupParams {
    SetupParams {
        spec: DatasetSpec::weather()
            .objects(5_000)
            .concepts(60)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    }
}

fn bench_frameworks() {
    let enc = encode(&params());
    let fws = build_frameworks(&enc, &params().algo);
    let workload = WorkloadSpec::new(64, 1).generate(&enc.info);
    let queries: Vec<MultiModalQuery> = workload
        .cases
        .iter()
        .filter_map(|case| {
            let member = enc.gt.members(case.concept)[0];
            match enc.corpus.kb().get(member).content(1) {
                Some(mqa_encoders::RawContent::Image(i)) => Some(MultiModalQuery::text_and_image(
                    &case.round2_text,
                    i.clone(),
                )),
                _ => None,
            }
        })
        .collect();
    assert!(
        !queries.is_empty(),
        "workload produced no image-bearing cases"
    );

    let g = Bencher::new("framework_search_5k_k10_ef64");
    let frameworks: [(&str, &dyn RetrievalFramework); 3] =
        [("must", &fws.must), ("mr", &fws.mr), ("je", &fws.je)];
    for (name, fw) in frameworks {
        let mut qi = 0usize;
        g.bench(name, || {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(fw.search(black_box(q), 10, 64).results.len());
        });
    }
}

fn bench_full_turn() {
    let kb = DatasetSpec::weather()
        .objects(5_000)
        .concepts(60)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(2024)
        .generate();
    let system = match MqaSystem::build(Config::default(), kb) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("skipping coordinator_full_turn_5k: build failed: {e}");
            return;
        }
    };
    let (_, info) = DatasetSpec::weather()
        .objects(5_000)
        .concepts(60)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(2024)
        .generate_with_info();
    let workload = WorkloadSpec::new(64, 2).generate(&info);
    let mut qi = 0usize;
    Bencher::new("coordinator")
        .sample_target(Duration::from_millis(100))
        .bench("full_turn_5k", || {
            let case = &workload.cases[qi % workload.cases.len()];
            qi += 1;
            let answered = system.ask_once(Turn::text(&case.round1_text));
            black_box(answered.map(|a| a.results.len()).unwrap_or(0));
        });
}

fn main() {
    bench_frameworks();
    bench_full_turn();
    if let Err(e) =
        mqa_bench::write_snapshot(std::path::Path::new("results/bench_end_to_end_query.json"))
    {
        eprintln!("warning: could not write bench snapshot: {e}");
    }
}
