//! End-to-end turn latency through the coordinator, and raw framework
//! search latency for MUST / MR / JE over one corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use mqa_bench::{build_frameworks, encode, SetupParams};
use mqa_core::{Config, MqaSystem, Turn};
use mqa_kb::{DatasetSpec, WorkloadSpec};
use mqa_retrieval::{MultiModalQuery, RetrievalFramework};
use std::hint::black_box;

fn params() -> SetupParams {
    SetupParams {
        spec: DatasetSpec::weather()
            .objects(5_000)
            .concepts(60)
            .caption_noise(0.35)
            .image_noise(0.15)
            .seed(2024),
        ..SetupParams::default()
    }
}

fn bench_frameworks(c: &mut Criterion) {
    let enc = encode(&params());
    let fws = build_frameworks(&enc, &params().algo);
    let workload = WorkloadSpec::new(64, 1).generate(&enc.info);
    let queries: Vec<MultiModalQuery> = workload
        .cases
        .iter()
        .map(|case| {
            let member = enc.gt.members(case.concept)[0];
            let img = match enc.corpus.kb().get(member).content(1) {
                Some(mqa_encoders::RawContent::Image(i)) => i.clone(),
                _ => unreachable!(),
            };
            MultiModalQuery::text_and_image(&case.round2_text, img)
        })
        .collect();

    let mut g = c.benchmark_group("framework_search_5k_k10_ef64");
    let frameworks: [(&str, &dyn RetrievalFramework); 3] =
        [("must", &fws.must), ("mr", &fws.mr), ("je", &fws.je)];
    for (name, fw) in frameworks {
        let mut qi = 0usize;
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                black_box(fw.search(black_box(q), 10, 64).results.len())
            })
        });
    }
    g.finish();
}

fn bench_full_turn(c: &mut Criterion) {
    let kb = DatasetSpec::weather()
        .objects(5_000)
        .concepts(60)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(2024)
        .generate();
    let system = MqaSystem::build(Config::default(), kb).expect("builds");
    let (_, info) = DatasetSpec::weather()
        .objects(5_000)
        .concepts(60)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(2024)
        .generate_with_info();
    let workload = WorkloadSpec::new(64, 2).generate(&info);
    let mut qi = 0usize;
    c.bench_function("coordinator_full_turn_5k", |bch| {
        bch.iter(|| {
            let case = &workload.cases[qi % workload.cases.len()];
            qi += 1;
            black_box(
                system
                    .ask_once(Turn::text(&case.round1_text))
                    .expect("answers")
                    .results
                    .len(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_frameworks, bench_full_turn
}
criterion_main!(benches);
