//! Search-time comparison of the navigation-graph family on one store.

use mqa_bench::Bencher;
use mqa_graph::{IndexAlgorithm, VectorIndex};
use mqa_rng::StdRng;
use mqa_vector::{Metric, VectorStore};
use std::hint::black_box;

const N: usize = 5_000;
const DIM: usize = 96;

fn store() -> VectorStore {
    let mut rng = StdRng::seed_from_u64(7);
    let centers: Vec<Vec<f32>> = (0..50)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
        .collect();
    let mut s = VectorStore::with_capacity(DIM, N);
    for i in 0..N {
        let c = &centers[i % centers.len()];
        let v: Vec<f32> = c.iter().map(|x| x + rng.gen_range(-0.3f32..0.3)).collect();
        s.push(&v);
    }
    s
}

fn main() {
    let store = store();
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            let id = rng.gen_range(0..N) as u32;
            store
                .get(id)
                .iter()
                .map(|x| x + rng.gen_range(-0.1f32..0.1))
                .collect()
        })
        .collect();

    let g = Bencher::new("graph_search_5k_96d_k10_ef64");
    for algo in [
        IndexAlgorithm::Flat,
        IndexAlgorithm::hnsw(),
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
        IndexAlgorithm::mqa_graph(),
    ] {
        let idx = VectorIndex::build(store.clone(), Metric::L2, &algo);
        let mut qi = 0usize;
        g.bench(algo.name(), || {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(idx.search(black_box(q), 10, 64).results.len());
        });
    }
    if let Err(e) =
        mqa_bench::write_snapshot(std::path::Path::new("results/bench_graph_search.json"))
    {
        eprintln!("warning: could not write bench snapshot: {e}");
    }
}
