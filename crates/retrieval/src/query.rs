//! The multi-modal query users submit from the QA panel.

use mqa_encoders::{ImageData, RawContent};
use mqa_kb::ContentSchema;
use mqa_vector::ModalityKind;
use serde::{Deserialize, Serialize};

/// One retrieval request: optional text, optional reference image, optional
/// user weight override — at least one content part must be present.
///
/// Text fills every text-kind field of the knowledge base's schema; the
/// reference image fills every image/video-kind field (the QA panel has one
/// text box and one upload slot regardless of how many fields the schema
/// has, exactly like the paper's frontend).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MultiModalQuery {
    /// Natural-language request text.
    pub text: Option<String>,
    /// Reference image (round-2 refinements attach the selected result).
    pub image: Option<ImageData>,
    /// Raw per-modality weight override (normalized downstream); `None`
    /// uses the framework's weights (learned for MUST, uniform otherwise).
    pub weight_override: Option<Vec<f32>>,
}

impl MultiModalQuery {
    /// A text-only query.
    pub fn text(text: impl Into<String>) -> Self {
        Self {
            text: Some(text.into()),
            image: None,
            weight_override: None,
        }
    }

    /// A voice query (the paper's "text or audio form" input). Audio is
    /// transcribed upstream of retrieval — this reproduction treats the
    /// transcript as the query text (see DESIGN.md §2).
    pub fn voice(transcript: impl Into<String>) -> Self {
        Self::text(transcript)
    }

    /// A query with text and a reference image.
    pub fn text_and_image(text: impl Into<String>, image: ImageData) -> Self {
        Self {
            text: Some(text.into()),
            image: Some(image),
            weight_override: None,
        }
    }

    /// An image-only query.
    pub fn image(image: ImageData) -> Self {
        Self {
            text: None,
            image: Some(image),
            weight_override: None,
        }
    }

    /// Attaches a user weight override.
    pub fn with_weights(mut self, raw: Vec<f32>) -> Self {
        self.weight_override = Some(raw);
        self
    }

    /// Whether the query carries any content.
    pub fn has_content(&self) -> bool {
        self.text.is_some() || self.image.is_some()
    }

    /// Expands the query into per-field raw contents under `schema`.
    ///
    /// # Panics
    /// Panics if the query is empty ([`MultiModalQuery::has_content`] is
    /// the caller's guard) or if no schema field can host any provided
    /// part (e.g. image-only query against a text-only base).
    pub fn to_contents(&self, schema: &ContentSchema) -> Vec<Option<RawContent>> {
        assert!(self.has_content(), "empty query");
        let contents: Vec<Option<RawContent>> = schema
            .fields()
            .iter()
            .map(|f| match f.kind {
                ModalityKind::Text | ModalityKind::Audio => {
                    self.text.as_ref().map(|t| RawContent::Text(t.clone()))
                }
                ModalityKind::Image | ModalityKind::Video => {
                    self.image.as_ref().map(|i| RawContent::Image(i.clone()))
                }
            })
            // ALLOC: per-query contents list, one entry per modality.
            .collect();
        assert!(
            contents.iter().any(Option::is_some),
            "query content matches no field of schema"
        );
        contents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_kb::FieldSpec;

    #[test]
    fn text_fills_text_fields_only() {
        let schema = ContentSchema::caption_image(8);
        let q = MultiModalQuery::text("foggy clouds");
        let c = q.to_contents(&schema);
        assert!(matches!(c[0], Some(RawContent::Text(_))));
        assert!(c[1].is_none());
    }

    #[test]
    fn image_fills_all_visual_fields() {
        let schema = ContentSchema::new(
            vec![
                FieldSpec {
                    name: "synopsis".into(),
                    kind: ModalityKind::Text,
                },
                FieldSpec {
                    name: "poster".into(),
                    kind: ModalityKind::Image,
                },
                FieldSpec {
                    name: "still".into(),
                    kind: ModalityKind::Video,
                },
            ],
            8,
        );
        let q = MultiModalQuery::text_and_image("western", ImageData::new(vec![0.0; 8]));
        let c = q.to_contents(&schema);
        assert!(c.iter().all(Option::is_some));
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn empty_query_panics() {
        MultiModalQuery::default().to_contents(&ContentSchema::caption_image(8));
    }

    #[test]
    #[should_panic(expected = "matches no field")]
    fn image_query_against_text_only_schema_panics() {
        let schema = ContentSchema::new(
            vec![FieldSpec {
                name: "body".into(),
                kind: ModalityKind::Text,
            }],
            0,
        );
        MultiModalQuery::image(ImageData::new(vec![0.0; 8])).to_contents(&schema);
    }

    #[test]
    fn with_weights_sets_override() {
        let q = MultiModalQuery::text("x").with_weights(vec![2.0, 0.5]);
        assert_eq!(q.weight_override, Some(vec![2.0, 0.5]));
    }

    #[test]
    fn serde_round_trip() {
        let q = MultiModalQuery::text_and_image("a", ImageData::new(vec![1.0]));
        let j = serde_json::to_string(&q).unwrap();
        let back: MultiModalQuery = serde_json::from_str(&j).unwrap();
        assert_eq!(q, back);
    }
}
