//! Result diversification: Maximal Marginal Relevance (MMR) re-ranking.
//!
//! A QA panel that shows `k` images should not show `k` near-duplicates:
//! the user refines by *clicking*, and clicks need visually distinct
//! options to be informative. MMR re-orders an over-fetched candidate list
//! by repeatedly picking the candidate that maximizes
//!
//! ```text
//! λ · relevance(c)  −  (1 − λ) · max_similarity(c, already picked)
//! ```
//!
//! with relevance and similarity both derived from the fused weighted
//! distance. `λ = 1` reduces to plain ranking; lower values trade a little
//! relevance for spread.

use mqa_vector::{Candidate, Metric, MultiVectorStore, Weights};

/// Re-ranks `candidates` (ascending distance, as produced by any
/// framework) into a diversified top-`k` under the MMR criterion.
///
/// # Panics
/// Panics if `lambda` is outside `[0, 1]` or `k == 0`.
pub fn mmr_diversify(
    store: &MultiVectorStore,
    weights: &Weights,
    metric: Metric,
    candidates: &[Candidate],
    k: usize,
    lambda: f32,
) -> Vec<Candidate> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    assert!(k > 0, "k must be >= 1");
    if candidates.is_empty() {
        return Vec::new();
    }
    let _span = mqa_obs::span("retrieval.diversify");
    // Normalize relevance to [0, 1] over the candidate pool (distances are
    // unbounded); similarity reuses the same scale.
    let d_min = candidates
        .iter()
        .map(|c| c.dist)
        .fold(f32::INFINITY, f32::min);
    let d_max = candidates
        .iter()
        .map(|c| c.dist)
        .fold(f32::NEG_INFINITY, f32::max);
    let span = (d_max - d_min).max(1e-6);
    let relevance = |c: &Candidate| 1.0 - (c.dist - d_min) / span;

    let pair_dist = |a: u32, b: u32| {
        store
            .multivector_of(a)
            .fused_distance(&store.multivector_of(b), weights, metric)
    };

    let mut remaining: Vec<Candidate> = candidates.to_vec();
    let mut picked: Vec<Candidate> = Vec::with_capacity(k);
    // Cache the pool's internal distance scale for similarity normalization.
    let mut pool_scale = 0.0f32;
    for (i, a) in candidates.iter().enumerate().take(8) {
        for b in candidates.iter().skip(i + 1).take(8) {
            pool_scale = pool_scale.max(pair_dist(a.id, b.id));
        }
    }
    let pool_scale = pool_scale.max(1e-6);

    while picked.len() < k && !remaining.is_empty() {
        let mut best_idx = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (i, c) in remaining.iter().enumerate() {
            let max_sim = picked
                .iter()
                .map(|p| 1.0 - (pair_dist(c.id, p.id) / pool_scale).min(1.0))
                .fold(0.0f32, f32::max);
            let score = lambda * relevance(c) - (1.0 - lambda) * max_sim;
            if score > best_score {
                best_score = score;
                best_idx = i;
            }
        }
        picked.push(remaining.swap_remove(best_idx));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_vector::{MultiVector, Schema};

    /// A pool with two tight duplicate groups and one singleton.
    fn setup() -> (MultiVectorStore, Vec<Candidate>) {
        let schema = Schema::text_image(2, 2);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut push = |t: [f32; 2], i: [f32; 2]| {
            store.push(&MultiVector::complete(
                &schema,
                vec![t.to_vec(), i.to_vec()],
            ))
        };
        // group A (ids 0-2): near-identical, most relevant
        push([0.0, 0.0], [0.0, 0.0]);
        push([0.01, 0.0], [0.0, 0.01]);
        push([0.0, 0.02], [0.02, 0.0]);
        // group B (ids 3-4): a different region, slightly less relevant
        push([2.0, 2.0], [2.0, 2.0]);
        push([2.02, 2.0], [2.0, 2.01]);
        // singleton (id 5): least relevant
        push([4.0, 4.0], [4.0, 4.0]);
        let candidates = vec![
            Candidate::new(0, 0.10),
            Candidate::new(1, 0.11),
            Candidate::new(2, 0.12),
            Candidate::new(3, 0.50),
            Candidate::new(4, 0.51),
            Candidate::new(5, 0.90),
        ];
        (store, candidates)
    }

    #[test]
    fn lambda_one_keeps_plain_ranking() {
        let (store, cands) = setup();
        let out = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 3, 1.0);
        let ids: Vec<u32> = out.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn moderate_lambda_spreads_over_groups() {
        let (store, cands) = setup();
        let out = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 3, 0.5);
        let ids: Vec<u32> = out.iter().map(|c| c.id).collect();
        // first pick is the most relevant; later picks leave group A
        assert_eq!(ids[0], 0);
        assert!(
            ids.iter().any(|&id| id >= 3),
            "no out-of-group pick in {ids:?}"
        );
        // and do not contain all three near-duplicates
        let dups = ids.iter().filter(|&&id| id <= 2).count();
        assert!(dups < 3, "still all duplicates: {ids:?}");
    }

    #[test]
    fn k_larger_than_pool_returns_all() {
        let (store, cands) = setup();
        let out = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 50, 0.7);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn empty_pool_is_empty() {
        let (store, _) = setup();
        assert!(mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &[], 3, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_panics() {
        let (store, cands) = setup();
        mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 3, 1.5);
    }
}
