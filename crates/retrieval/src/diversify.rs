//! Result diversification: Maximal Marginal Relevance (MMR) re-ranking.
//!
//! A QA panel that shows `k` images should not show `k` near-duplicates:
//! the user refines by *clicking*, and clicks need visually distinct
//! options to be informative. MMR re-orders an over-fetched candidate list
//! by repeatedly picking the candidate that maximizes
//!
//! ```text
//! λ · relevance(c)  −  (1 − λ) · max_similarity(c, already picked)
//! ```
//!
//! with relevance and similarity both derived from the fused weighted
//! distance. `λ = 1` reduces to plain ranking; lower values trade a little
//! relevance for spread.

use crate::error::RetrievalError;
use mqa_vector::{Candidate, Metric, MultiVectorStore, Weights};

/// Pool-scale sample size: up to this many candidates, evenly spaced
/// across the whole pool, feed the all-pairs scale estimate (16² / 2 =
/// 120 pair distances at most — O(1) regardless of pool size).
const SCALE_SAMPLE: usize = 16;

/// Re-ranks `candidates` (ascending distance, as produced by any
/// framework) into a diversified top-`k` under the MMR criterion.
///
/// # Errors
/// [`RetrievalError::BadDiversification`] if `lambda` is outside
/// `[0, 1]` (NaN included) or `k == 0`.
pub fn mmr_diversify(
    store: &MultiVectorStore,
    weights: &Weights,
    metric: Metric,
    candidates: &[Candidate],
    k: usize,
    lambda: f32,
) -> Result<Vec<Candidate>, RetrievalError> {
    if !(0.0..=1.0).contains(&lambda) || k == 0 {
        return Err(RetrievalError::BadDiversification { lambda, k });
    }
    if candidates.is_empty() {
        // ALLOC: capacity-0 Vec for the empty result; never touches the heap.
        return Ok(Vec::new());
    }
    let _span = mqa_obs::span("retrieval.diversify");
    // Normalize relevance to [0, 1] over the candidate pool (distances are
    // unbounded); similarity reuses the same scale.
    let d_min = candidates
        .iter()
        .map(|c| c.dist)
        .fold(f32::INFINITY, f32::min);
    let d_max = candidates
        .iter()
        .map(|c| c.dist)
        .fold(f32::NEG_INFINITY, f32::max);
    let span = (d_max - d_min).max(1e-6);
    // INVARIANT: f32 division with span clamped >= 1e-6; float division
    // cannot panic.
    let relevance = |c: &Candidate| 1.0 - (c.dist - d_min) / span;

    let pair_dist = |a: u32, b: u32| {
        store
            .multivector_of(a)
            .fused_distance(&store.multivector_of(b), weights, metric)
    };

    // ALLOC: MMR's per-call working copy and result list, bounded by the candidate count.
    let mut remaining: Vec<Candidate> = candidates.to_vec();
    let mut picked: Vec<Candidate> = Vec::with_capacity(k);
    // Estimate the pool's internal distance scale for similarity
    // normalization from a deterministic stratified sample: up to
    // SCALE_SAMPLE candidates evenly spaced across the *whole* pool, so
    // a far-apart pair contributes no matter where it ranks. (The old
    // first-8-only estimate collapsed for pools of near-duplicate heads:
    // every cross-group similarity clamped to zero and MMR degenerated
    // to plain ranking.)
    let stride = candidates.len().div_ceil(SCALE_SAMPLE).max(1);
    let sample: Vec<u32> = candidates
        .iter()
        .step_by(stride)
        .map(|c| c.id)
        // INVARIANT: candidates is non-empty (early return above), so the
        // last element exists.
        .chain(std::iter::once(candidates[candidates.len() - 1].id))
        // ALLOC: per-call reassembled candidate vectors for the similarity term.
        .collect();
    let mut pool_scale = 0.0f32;
    for (i, &a) in sample.iter().enumerate() {
        for &b in sample.iter().skip(i + 1) {
            pool_scale = pool_scale.max(pair_dist(a, b));
        }
    }
    let pool_scale = pool_scale.max(1e-6);

    while picked.len() < k && !remaining.is_empty() {
        let mut best_idx = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (i, c) in remaining.iter().enumerate() {
            let max_sim = picked
                .iter()
                .map(|p| 1.0 - (pair_dist(c.id, p.id) / pool_scale).min(1.0))
                .fold(0.0f32, f32::max);
            let score = lambda * relevance(c) - (1.0 - lambda) * max_sim;
            if score > best_score {
                best_score = score;
                best_idx = i;
            }
        }
        picked.push(remaining.swap_remove(best_idx));
    }
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_vector::{MultiVector, Schema};

    /// A pool with two tight duplicate groups and one singleton.
    fn setup() -> (MultiVectorStore, Vec<Candidate>) {
        let schema = Schema::text_image(2, 2);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut push = |t: [f32; 2], i: [f32; 2]| {
            store.push(&MultiVector::complete(
                &schema,
                vec![t.to_vec(), i.to_vec()],
            ))
        };
        // group A (ids 0-2): near-identical, most relevant
        push([0.0, 0.0], [0.0, 0.0]);
        push([0.01, 0.0], [0.0, 0.01]);
        push([0.0, 0.02], [0.02, 0.0]);
        // group B (ids 3-4): a different region, slightly less relevant
        push([2.0, 2.0], [2.0, 2.0]);
        push([2.02, 2.0], [2.0, 2.01]);
        // singleton (id 5): least relevant
        push([4.0, 4.0], [4.0, 4.0]);
        let candidates = vec![
            Candidate::new(0, 0.10),
            Candidate::new(1, 0.11),
            Candidate::new(2, 0.12),
            Candidate::new(3, 0.50),
            Candidate::new(4, 0.51),
            Candidate::new(5, 0.90),
        ];
        (store, candidates)
    }

    #[test]
    fn lambda_one_keeps_plain_ranking() {
        let (store, cands) = setup();
        let out = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 3, 1.0)
            .expect("valid parameters");
        let ids: Vec<u32> = out.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn moderate_lambda_spreads_over_groups() {
        let (store, cands) = setup();
        let out = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 3, 0.5)
            .expect("valid parameters");
        let ids: Vec<u32> = out.iter().map(|c| c.id).collect();
        // first pick is the most relevant; later picks leave group A
        assert_eq!(ids[0], 0);
        assert!(
            ids.iter().any(|&id| id >= 3),
            "no out-of-group pick in {ids:?}"
        );
        // and do not contain all three near-duplicates
        let dups = ids.iter().filter(|&&id| id <= 2).count();
        assert!(dups < 3, "still all duplicates: {ids:?}");
    }

    #[test]
    fn k_larger_than_pool_returns_all() {
        let (store, cands) = setup();
        let out = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 50, 0.7)
            .expect("valid parameters");
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn empty_pool_is_empty() {
        let (store, _) = setup();
        assert!(
            mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &[], 3, 0.5)
                .expect("valid parameters")
                .is_empty()
        );
    }

    /// Regression: out-of-domain parameters used to panic deep inside the
    /// answer pipeline; they must surface as a typed error instead.
    #[test]
    fn bad_parameters_return_typed_error() {
        let (store, cands) = setup();
        for lambda in [-0.1, 1.5, f32::NAN] {
            let err = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 3, lambda)
                .expect_err("lambda outside [0, 1] must be rejected");
            assert!(
                matches!(err, RetrievalError::BadDiversification { k: 3, .. }),
                "unexpected error {err:?} for lambda {lambda}"
            );
        }
        let err = mmr_diversify(&store, &Weights::uniform(2), Metric::L2, &cands, 0, 0.5)
            .expect_err("k == 0 must be rejected");
        assert_eq!(
            err,
            RetrievalError::BadDiversification { lambda: 0.5, k: 0 }
        );
    }

    /// Regression for the pool-scale estimate: with more than 8 candidates
    /// the old code sampled only the first 8×8 pairs. A pool whose head is
    /// 13 near-duplicates then produced a tiny `pool_scale`, every
    /// cross-group similarity clamped to 0, and MMR returned the
    /// duplicates unchanged. The scale must reflect the *whole* pool.
    #[test]
    fn pool_scale_covers_candidates_beyond_the_first_eight() {
        let schema = Schema::text_image(2, 2);
        let mut store = MultiVectorStore::new(schema.clone());
        let mut push = |t: [f32; 2], i: [f32; 2]| {
            store.push(&MultiVector::complete(
                &schema,
                vec![t.to_vec(), i.to_vec()],
            ))
        };
        // ids 0-12: thirteen near-duplicates, ranked most relevant.
        for j in 0..13 {
            let eps = j as f32 * 0.001;
            push([eps, 0.0], [0.0, eps]);
        }
        // ids 13-14: a far-away group, ranked after the duplicates.
        push([10.0, 10.0], [10.0, 10.0]);
        push([10.0, 10.1], [10.1, 10.0]);
        let mut candidates: Vec<Candidate> = (0..13)
            .map(|id| Candidate::new(id, 0.10 + id as f32 * 0.001))
            .collect();
        candidates.push(Candidate::new(13, 0.60));
        candidates.push(Candidate::new(14, 0.61));

        let out = mmr_diversify(
            &store,
            &Weights::uniform(2),
            Metric::L2,
            &candidates,
            5,
            0.5,
        )
        .expect("valid parameters");
        let ids: Vec<u32> = out.iter().map(|c| c.id).collect();
        assert!(
            ids.iter().any(|&id| id >= 13),
            "diversification never escaped the duplicate head: {ids:?}"
        );
    }
}
