//! JE — Joint Embedding (the ARTEMIS-style baseline).
//!
//! Every object is encoded into **one** vector: the concatenation of its
//! modality embeddings, each block scaled `1/sqrt(M)`, unit-normalized.
//! One single-vector index serves all queries; queries are jointly encoded
//! the same way, with missing modalities filled per [`JePartialPolicy`].
//!
//! JE's structural limitations (demonstrated in Figure 5): fixed equal
//! modality weighting (the normalization bakes it in — user weight
//! overrides cannot apply, matching the paper's "lacking multi-modal
//! retrieval configurations" note for single-channel systems), and no
//! native notion of a *missing* modality — a joint encoder must be fed
//! something in every slot (see [`JePartialPolicy`]).

use crate::encoding::EncodedCorpus;
use crate::framework::{FrameworkKind, RetrievalFramework};
use crate::query::MultiModalQuery;
use crate::result::RetrievalOutput;
use mqa_encoders::ImageData;
use mqa_graph::{IndexAlgorithm, VectorIndex};
use mqa_vector::{ops, Metric, ModalityKind, MultiVector, VectorStore};
use std::sync::Arc;

/// How JE handles query modalities the user did not supply.
///
/// Joint-embedding models (ARTEMIS/TIRG-style) encode *all* modalities in
/// one pass and have no "absent" input token: a text-only request must be
/// submitted with some stand-in image. The faithful behaviour — and the
/// cause of Figure 5's irrelevant round-1 JE result — is
/// [`JePartialPolicy::Placeholder`]: a blank frame is encoded and its
/// (meaningless) embedding pollutes the joint query. The idealized
/// [`JePartialPolicy::ZeroFill`] (skip the modality entirely) is kept as an
/// ablation upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JePartialPolicy {
    /// Feed a blank placeholder (faithful to real joint encoders).
    #[default]
    Placeholder,
    /// Leave a zero block (idealized; not achievable with a real joint
    /// encoder, but useful to isolate how much the placeholder costs).
    ZeroFill,
}

/// The JE framework instance over one corpus.
pub struct JeFramework {
    corpus: Arc<EncodedCorpus>,
    index: VectorIndex,
    policy: JePartialPolicy,
}

fn joint_vector(corpus: &EncodedCorpus, mv: &MultiVector) -> Vec<f32> {
    let schema = corpus.store().schema();
    let scale = 1.0 / mqa_vector::cast::count_f32(schema.arity()).sqrt();
    let mut flat = mv.concat(schema);
    ops::scale(scale, &mut flat);
    ops::normalize(&mut flat);
    flat
}

impl JeFramework {
    /// Jointly encodes every object and builds one index (with the
    /// faithful [`JePartialPolicy::Placeholder`]).
    pub fn build(corpus: Arc<EncodedCorpus>, metric: Metric, algorithm: &IndexAlgorithm) -> Self {
        Self::build_with_policy(corpus, metric, algorithm, JePartialPolicy::default())
    }

    /// [`JeFramework::build`] with an explicit partial-query policy.
    pub fn build_with_policy(
        corpus: Arc<EncodedCorpus>,
        metric: Metric,
        algorithm: &IndexAlgorithm,
        policy: JePartialPolicy,
    ) -> Self {
        let schema = corpus.store().schema().clone();
        let mut joint = VectorStore::with_capacity(schema.total_dim(), corpus.store().len());
        for id in 0..mqa_vector::cast::vec_id(corpus.store().len()) {
            let mv = corpus.store().multivector_of(id);
            joint.push(&joint_vector(&corpus, &mv));
        }
        let index = VectorIndex::build(joint, metric, algorithm);
        Self {
            corpus,
            index,
            policy,
        }
    }

    /// The joint index.
    pub fn index(&self) -> &VectorIndex {
        &self.index
    }

    /// The partial-query policy in force.
    pub fn policy(&self) -> JePartialPolicy {
        self.policy
    }

    /// Fills the query's missing slots according to the policy: blank
    /// grey-frame descriptors for visual fields, empty text for textual
    /// ones.
    fn complete_query(&self, query: &MultiModalQuery) -> MultiModalQuery {
        let mut q = query.clone();
        if self.policy == JePartialPolicy::Placeholder {
            let schema = self.corpus.encoders().content_schema();
            let has_visual = schema
                .fields()
                .iter()
                .any(|f| matches!(f.kind, ModalityKind::Image | ModalityKind::Video));
            if q.image.is_none() && has_visual {
                // ALLOC: joint-embedding completion synthesizes the missing modality once per query.
                q.image = Some(ImageData::new(vec![0.5; schema.raw_image_dim()]));
            }
            let has_text = schema
                .fields()
                .iter()
                .any(|f| matches!(f.kind, ModalityKind::Text | ModalityKind::Audio));
            if q.text.is_none() && has_text {
                // ALLOC: capacity-0 String placeholder; never touches the heap.
                q.text = Some(String::new());
            }
        }
        q
    }
}

impl RetrievalFramework for JeFramework {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Je
    }

    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        assert!(query.has_content(), "empty query");
        assert!(k > 0, "k must be >= 1");
        mqa_obs::trace::note_framework("je");
        let outer = mqa_obs::span("retrieval.je.search");
        // Note: query.weight_override is deliberately ignored — joint
        // embedding has no per-modality weighting hook.
        let joint = {
            let _stage = mqa_obs::span("retrieval.je.encode");
            let completed = self.complete_query(query);
            let qv = self.corpus.encoders().encode_query(&completed);
            joint_vector(&self.corpus, &qv)
        };
        let out = {
            let _stage = mqa_obs::span("retrieval.je.index_search");
            self.index.search(&joint, k, ef)
        };
        RetrievalOutput {
            results: out.results,
            stats: out.stats,
            scan: None,
            latency: outer.finish(),
        }
    }

    fn describe(&self) -> String {
        format!(
            "JE: joint {}-dim embedding, single {} index, fixed equal weighting",
            self.index.store().dim(),
            self.index.algorithm().name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncoderSet;
    use mqa_encoders::EncoderRegistry;
    use mqa_kb::{DatasetSpec, GroundTruth};

    fn corpus() -> Arc<EncodedCorpus> {
        let kb = DatasetSpec::weather()
            .objects(240)
            .concepts(8)
            .caption_noise(0.05)
            .seed(1)
            .generate();
        let registry = EncoderRegistry::new(7);
        let schema = kb.schema().clone();
        let encoders = EncoderSet::default_for(&registry, &schema, 32);
        Arc::new(EncodedCorpus::encode(kb, encoders))
    }

    fn framework() -> JeFramework {
        JeFramework::build(corpus(), Metric::L2, &IndexAlgorithm::mqa_graph())
    }

    #[test]
    fn complete_query_identical_to_object_finds_it() {
        let f = framework();
        let rec = f.corpus.kb().get(0);
        let img = match rec.content(1).unwrap() {
            mqa_encoders::RawContent::Image(i) => i.clone(),
            _ => panic!(),
        };
        let caption = match rec.content(0).unwrap() {
            mqa_encoders::RawContent::Text(t) => t.clone(),
            _ => panic!(),
        };
        let out = f.search(&MultiModalQuery::text_and_image(caption, img), 1, 64);
        assert_eq!(out.ids()[0], 0);
    }

    #[test]
    fn text_only_query_still_retrieves_concept() {
        // JE degrades on partial queries but should not collapse entirely.
        let f = framework();
        let gt = GroundTruth::build(f.corpus.kb());
        let member = gt.members(1)[0];
        let title = f.corpus.kb().get(member).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let out = f.search(&MultiModalQuery::text(phrase), 10, 64);
        let hits = out
            .ids()
            .iter()
            .filter(|&&id| gt.is_relevant(id, 1))
            .count();
        assert!(hits >= 3, "JE text-only hit {hits}/10");
    }

    #[test]
    fn weight_override_is_ignored() {
        let f = framework();
        let title = f.corpus.kb().get(2).title.clone();
        let plain = f.search(&MultiModalQuery::text(title.clone()), 5, 64);
        let weighted = f.search(
            &MultiModalQuery::text(title).with_weights(vec![0.0, 5.0]),
            5,
            64,
        );
        assert_eq!(plain.ids(), weighted.ids());
    }

    #[test]
    fn joint_vectors_are_unit_norm() {
        let f = framework();
        for id in (0..f.index.store().len() as u32).step_by(60) {
            let n = ops::norm(f.index.store().get(id));
            assert!((n - 1.0).abs() < 1e-4, "joint vector {id} norm {n}");
        }
    }

    #[test]
    fn describe_mentions_joint() {
        assert!(framework().describe().contains("joint"));
        assert_eq!(framework().kind(), FrameworkKind::Je);
    }
}
